//! Bit-identity properties pinning the hot-path optimizations.
//!
//! Every speed-path rewrite in this repo (allocation-free Algorithm 3,
//! fused Eq. 10 kernels, shared Pareto tables, trace-free controllers)
//! ships with a proof obligation: the optimized code must produce the
//! *same bits* as the straightforward formulation, not merely close
//! floats. These properties encode that obligation against randomized
//! inputs; the reference implementations live in
//! `dpm_core::runtime::update_reference` and the unfused series pipeline.

use dpm_core::alloc::{AllocationProblem, InitialAllocator};
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::ParetoTable;
use dpm_core::platform::{BatteryLimits, Platform};
use dpm_core::runtime::{redistribute, update_reference, DpmController};
use dpm_core::series::PowerSeries;
use dpm_core::units::{joules, seconds, watts, Joules, Seconds};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a power series of `n` slots with values in `[0, hi]`,
/// slot width 4.8 s (the paper's τ).
fn power_series(n: usize, hi: f64) -> impl Strategy<Value = PowerSeries> {
    prop::collection::vec(0.0..hi, n..=n).prop_map(|v| PowerSeries::new(seconds(4.8), v).unwrap())
}

/// Strategy: a signed net-power series on the same 4.8 s grid.
fn net_series(n: usize, amp: f64) -> impl Strategy<Value = PowerSeries> {
    prop::collection::vec(-amp..amp, n..=n).prop_map(|v| PowerSeries::new(seconds(4.8), v).unwrap())
}

/// The scenario-I-shaped problem used to seed controllers.
fn pama_problem(platform: &Platform) -> AllocationProblem {
    let charging = PowerSeries::new(
        seconds(4.8),
        vec![
            2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
        ],
    )
    .unwrap();
    let demand = PowerSeries::new(
        seconds(4.8),
        vec![1.6, 1.0, 0.3, 0.3, 1.0, 1.7, 1.6, 1.0, 0.3, 0.3, 1.0, 1.7],
    )
    .unwrap();
    AllocationProblem {
        charging,
        demand,
        initial_charge: joules(8.0),
        limits: platform.battery,
        p_floor: platform.power.all_standby(),
        p_ceiling: platform.board_power(platform.workers(), platform.f_max()),
    }
}

proptest! {
    /// The allocation-free Algorithm 3 (in-place shrinking-bracket
    /// `scale_window`) produces the exact bits of the original
    /// gather-based implementation: same plan, same horizon, same
    /// applied energy.
    #[test]
    fn redistribute_matches_reference_bitwise(
        slots in prop::collection::vec((0.1f64..4.0, 0.0f64..3.0), 6..24),
        e_diff in -10.0f64..10.0,
        battery in 1.0f64..15.0,
    ) {
        let (plan0, charging): (Vec<f64>, Vec<f64>) = slots.into_iter().unzip();
        let limits = BatteryLimits::new(joules(0.5), joules(16.0)).unwrap();
        let bounds = (watts(0.05), watts(4.4));

        let mut plan_opt = plan0.clone();
        let out_opt = redistribute(
            &mut plan_opt,
            &charging,
            seconds(4.8),
            joules(battery),
            limits,
            joules(e_diff),
            bounds,
        )
        .unwrap();

        let mut plan_ref = plan0;
        let out_ref = update_reference::redistribute(
            &mut plan_ref,
            &charging,
            seconds(4.8),
            joules(battery),
            limits,
            joules(e_diff),
            bounds,
        )
        .unwrap();

        prop_assert_eq!(out_opt.horizon_slots, out_ref.horizon_slots);
        prop_assert_eq!(
            out_opt.applied.value().to_bits(),
            out_ref.applied.value().to_bits(),
            "applied {} vs {}", out_opt.applied.value(), out_ref.applied.value()
        );
        for (i, (a, b)) in plan_opt.iter().zip(&plan_ref).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "slot {}: {} vs {}", i, a, b);
        }
    }

    /// The fused Eq. 10 kernel (`net_cumulative_into`) writes the exact
    /// bits of the unfused `pointwise_sub` → `cumulative` pipeline.
    #[test]
    fn fused_net_cumulative_matches_unfused_bitwise(
        charging in power_series(16, 5.0),
        alloc in power_series(16, 5.0),
        start in -4.0f64..12.0,
    ) {
        let mut out = vec![42.0; 3]; // stale garbage the kernel must clear
        charging.net_cumulative_into(&alloc, joules(start), &mut out);
        let reference = charging.pointwise_sub(&alloc).cumulative(joules(start));
        prop_assert_eq!(out.len(), reference.points().len());
        for (i, (a, b)) in out.iter().zip(reference.points()).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "breakpoint {}: {} vs {}", i, a, b);
        }
    }

    /// The fused Algorithm 1 back-substitution (`residual_allocation_into`)
    /// writes the exact bits of the unfused derivative/subtract/clamp
    /// pipeline.
    #[test]
    fn fused_residual_allocation_matches_unfused_bitwise(
        net in net_series(16, 4.0),
        charging in power_series(16, 5.0),
        start in -4.0f64..12.0,
    ) {
        let traj = net.cumulative(joules(start));
        let (floor, ceil) = (0.05, 4.4);
        let mut out = vec![7.0; 5];
        traj.residual_allocation_into(&charging, floor, ceil, &mut out);
        let reference = charging
            .pointwise_sub(&traj.derivative())
            .map(|v| v.clamp(floor, ceil));
        prop_assert_eq!(out.len(), reference.len());
        for (i, (a, b)) in out.iter().zip(reference.values()).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "slot {}: {} vs {}", i, a, b);
        }
    }

    /// A controller sharing a prebuilt [`ParetoTable`] (and skipping trace
    /// accumulation) decides bit-identically to one that builds its own
    /// table — across arbitrary observation streams, including the
    /// scratch-buffer replan path on every slot after the first.
    #[test]
    fn shared_table_controller_decides_bitwise_like_fresh_build(
        stream in prop::collection::vec(
            (0.6f64..15.4, 0.0f64..2.0, 0.0f64..12.0, 0usize..5),
            1..40,
        ),
    ) {
        let platform = Platform::pama();
        let problem = pama_problem(&platform);
        let charging = problem.charging.clone();
        let alloc = InitialAllocator::new(problem).unwrap().compute().unwrap();

        let mut fresh =
            DpmController::new(platform.clone(), &alloc, charging.clone()).unwrap();
        let shared_platform = Arc::new(platform.clone());
        let table = Arc::new(ParetoTable::build(&platform).unwrap());
        let mut shared = DpmController::with_table(
            Arc::clone(&shared_platform),
            &alloc,
            charging.clone(),
            Arc::clone(&table),
        )
        .unwrap();
        let mut traceless =
            DpmController::with_table(shared_platform, &alloc, charging, table)
                .unwrap()
                .without_trace();

        for (i, &(battery, used, supplied, backlog)) in stream.iter().enumerate() {
            let obs = SlotObservation {
                slot: i as u64,
                time: Seconds(i as f64 * 4.8),
                battery: joules(battery),
                used_last: if i == 0 { Joules::ZERO } else { joules(used) },
                supplied_last: if i == 0 { Joules::ZERO } else { joules(supplied) },
                backlog,
            };
            let a = fresh.decide(&obs);
            let b = shared.decide(&obs);
            let c = traceless.decide(&obs);
            match (a, b, c) {
                (Ok(pa), Ok(pb), Ok(pc)) => {
                    for p in [&pb, &pc] {
                        prop_assert_eq!(pa.workers, p.workers, "slot {}", i);
                        prop_assert_eq!(
                            pa.frequency.value().to_bits(),
                            p.frequency.value().to_bits(),
                            "slot {}", i
                        );
                        prop_assert_eq!(
                            pa.voltage.value().to_bits(),
                            p.voltage.value().to_bits(),
                            "slot {}", i
                        );
                    }
                }
                (Err(_), Err(_), Err(_)) => {}
                (a, b, c) => {
                    prop_assert!(false, "slot {}: divergent outcomes {:?} / {:?} / {:?}", i, a, b, c);
                }
            }
        }
        prop_assert_eq!(fresh.trace().len(), shared.trace().len());
        prop_assert!(traceless.trace().is_empty());
    }
}
