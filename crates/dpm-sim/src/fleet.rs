//! Struct-of-arrays fleet core: the population-scale face of the
//! simulator.
//!
//! One [`crate::sim::Simulation`] owns one board behind several layers of
//! boxed traits — fine for studying a governor, hopeless for the
//! ROADMAP's "thousands-to-millions of boards per run". [`FleetState`]
//! flattens the per-board state (battery charge, allocation index,
//! arrival carry, degradation level, fault flags) into contiguous
//! `f64`/`u32` slices and advances *all* boards one τ slot at a time with
//! [`FleetState::step_slot`], so the hot loop is a cache-friendly sweep
//! over arrays instead of a pointer chase per board.
//!
//! The arithmetic is **not** re-implemented here: every step calls the
//! pure kernels extracted from the scalar models
//! ([`crate::battery::kernel`], [`crate::board::kernel`],
//! [`crate::processor::chip_power`], [`crate::events::accumulate_arrivals`]),
//! so a 1-board fleet is bit-identical to `Simulation::run` with a pinned
//! governor on the same inputs — a property the equivalence proptest in
//! `dpm-workloads` enforces. The scope is correspondingly the scalar
//! simulator's *open-loop* regime:
//!
//! * boards follow a fixed [`FleetConfig::allocation`] table cycled per
//!   slot (a single entry behaves exactly like a pinned governor), with
//!   an optional hysteretic [`ShedGuard`] degrading the worker count —
//!   there is no per-board closed-loop governor;
//! * the battery is the paper's ideal model (unit efficiency, no
//!   self-discharge, no Peukert rate dependence), matching what
//!   `Simulation::new` builds;
//! * work is inelastic (no background-science soak) and job latency is
//!   not tracked (only completion/drop counts);
//! * sensor disturbances are accepted and ignored — with no governor in
//!   the loop a lying gauge changes nothing, exactly as in a pinned
//!   scalar run.

use crate::battery::kernel as battery_kernel;
use crate::board::kernel as board_kernel;
use crate::error::SimError;
use crate::events::accumulate_arrivals;
use crate::processor::{chip_power, Mode, TransitionLatency};
use crate::sim::Disturbance;
use crate::source::{ChargingSource, TraceSource};
use dpm_core::model::ModePower;
use dpm_core::params::OperatingPoint;
use dpm_core::platform::Platform;
use dpm_core::series::PowerSeries;
use dpm_core::units::{seconds, Hertz, Joules, Seconds};
use std::sync::Arc;

/// Survival tolerances shared with
/// [`crate::stats::SurvivalReport::from_report`]: a board survived when
/// its cumulative undersupply stays within `UNDERSUPPLY_TOL` and its
/// battery floor stays strictly above `C_min + FLOOR_TOL`.
const UNDERSUPPLY_TOL: f64 = 1e-9;
/// See [`UNDERSUPPLY_TOL`].
const FLOOR_TOL: f64 = 1e-9;

/// Per-board inputs to a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardSpec {
    /// Initial battery charge (clamped into the platform window, exactly
    /// as [`crate::battery::Battery::new`] does).
    pub initial_charge: Joules,
    /// Event-rate phase offset in whole slots: this board sees the rate
    /// schedule rotated so its slot `s` carries the base schedule's slot
    /// `s + phase_slots` (mod the schedule length). Phase 0 is
    /// bit-identical to the scalar generator.
    pub phase_slots: usize,
    /// Time-sorted fault schedule for this board (ties keep list order,
    /// matching the scalar disturbance queue's insertion-order
    /// tie-break).
    pub faults: Vec<(Seconds, Disturbance)>,
}

impl BoardSpec {
    /// A quiescent board: `initial` charge, phase 0, no faults.
    pub fn quiescent(initial: Joules) -> Self {
        Self {
            initial_charge: initial,
            phase_slots: 0,
            faults: Vec::new(),
        }
    }
}

/// Optional hysteretic load-shed guard applied at each slot boundary,
/// before the allocation point is applied. Sheds raise the degradation
/// level (each level removes one worker from the commanded point);
/// recovery relaxes one level per slot. The guard reads the *ground
/// truth* charge — it models a board-local hardware comparator, not the
/// gauge-fed `SafetyGovernor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedGuard {
    /// Shed one worker when the charge is below this at a slot boundary.
    pub shed_below: Joules,
    /// Recover one level when the charge is above this (hysteresis band).
    pub recover_above: Joules,
    /// Ceiling on the degradation level.
    pub max_degradation: u32,
}

/// Configuration shared by every board of a fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Platform description (validated in [`FleetState::new`]), shared
    /// across every board and shard of the fleet.
    pub platform: Arc<Platform>,
    /// Charging schedule, shared (and unphased) across the fleet: a
    /// satellite constellation sees one sun.
    pub charging: PowerSeries,
    /// Base event-rate schedule; boards apply their own phase offsets.
    pub event_rates: PowerSeries,
    /// Operating-point table cycled one entry per slot. A single entry
    /// pins every board to that point.
    pub allocation: Vec<OperatingPoint>,
    /// Charging periods to simulate.
    pub periods: usize,
    /// Governor slots per period (the paper: 12).
    pub slots_per_period: usize,
    /// Integration sub-steps per slot.
    pub substeps: usize,
    /// Optional load-shed guard.
    pub guard: Option<ShedGuard>,
    /// Keep the per-board per-slot trace in the report (memory scales
    /// with boards × slots; leave off for large fleets).
    pub trace: bool,
}

impl FleetConfig {
    /// Fleet equivalent of [`crate::sim::SimConfig::default`]: 2 periods
    /// of 12 slots at 8 sub-steps, no guard, no trace.
    pub fn new(
        platform: impl Into<Arc<Platform>>,
        charging: PowerSeries,
        event_rates: PowerSeries,
        allocation: Vec<OperatingPoint>,
    ) -> Self {
        Self {
            platform: platform.into(),
            charging,
            event_rates,
            allocation,
            periods: 2,
            slots_per_period: 12,
            substeps: 8,
            guard: None,
            trace: false,
        }
    }
}

/// Per-board per-slot trajectories, slot-major: entry `slot * boards +
/// board`. Only recorded when [`FleetConfig::trace`] is set.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTrace {
    /// Boards per slot row.
    pub boards: usize,
    /// Battery level at each slot end (J).
    pub battery: Vec<f64>,
    /// Cumulative undersupplied energy at each slot end (J).
    pub undersupplied: Vec<f64>,
    /// Jobs completed in each slot.
    pub jobs: Vec<u64>,
}

impl FleetTrace {
    /// Flat index of `(slot, board)`.
    #[inline]
    pub fn index(&self, slot: usize, board: usize) -> usize {
        slot * self.boards + board
    }
}

/// Outcome of a fleet run: per-board totals as parallel vectors (index =
/// board), plus the optional trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Boards simulated.
    pub boards: usize,
    /// Slots simulated per board.
    pub slots: usize,
    /// `boards × slots` — the campaign's throughput denominator.
    pub board_slots: u64,
    /// The platform's reserve floor the survival verdicts are against (J).
    pub c_min: f64,
    /// Deepest charge observed per board: the initial level and every
    /// slot-end level (J).
    pub min_battery: Vec<f64>,
    /// Final charge per board (J).
    pub final_battery: Vec<f64>,
    /// Cumulative undersupplied energy per board (J).
    pub undersupplied: Vec<f64>,
    /// Cumulative wasted (overflow + fade spill) energy per board (J).
    pub wasted: Vec<f64>,
    /// Total energy offered per board (J).
    pub offered: Vec<f64>,
    /// Total energy delivered per board (J).
    pub delivered: Vec<f64>,
    /// Jobs completed per board.
    pub jobs_done: Vec<u64>,
    /// Events dropped at the backlog cap per board.
    pub dropped: Vec<u64>,
    /// Shed events (guard degradations) per board.
    pub sheds: Vec<u32>,
    /// Survival verdict per board (the [`crate::stats::SurvivalReport`]
    /// criterion: no undersupply, floor strictly above `C_min`).
    pub survived: Vec<bool>,
    /// Per-slot trajectories when tracing was requested.
    pub trace: Option<FleetTrace>,
}

impl FleetReport {
    /// Boards that survived.
    pub fn survived_count(&self) -> usize {
        self.survived.iter().filter(|&&s| s).count()
    }

    /// Population survival fraction (1.0 for an empty fleet).
    pub fn survival_fraction(&self) -> f64 {
        if self.boards == 0 {
            1.0
        } else {
            self.survived_count() as f64 / self.boards as f64
        }
    }

    /// Total shed events across the fleet.
    pub fn total_sheds(&self) -> u64 {
        self.sheds.iter().map(|&s| u64::from(s)).sum()
    }
}

/// The struct-of-arrays fleet stepper. Build with [`FleetState::new`],
/// advance with [`FleetState::step_slot`] (or drain with
/// [`FleetState::run`]), harvest with [`FleetState::into_report`].
pub struct FleetState {
    // ---- shared, immutable over the run --------------------------------
    platform: Arc<Platform>,
    allocation: Vec<OperatingPoint>,
    guard: Option<ShedGuard>,
    latency: TransitionLatency,
    modes: ModePower,
    chips: usize,
    total_slots: usize,
    substeps: usize,
    tau: f64,
    dt: f64,
    c_min: f64,
    p_idle: f64,
    max_backlog: u32,
    trace_enabled: bool,
    /// Offered energy per global sub-step (`mean_power · dt`, J), shared
    /// by every board: the charging schedule is unphased.
    supply_j: Vec<f64>,
    /// Expected arrivals per global sub-step, one table per distinct
    /// phase offset in use.
    expected: Vec<Vec<f64>>,
    /// Flattened per-board fault schedules (`offsets[b]..offsets[b+1]`).
    fault_at: Vec<f64>,
    fault_what: Vec<Disturbance>,
    offsets: Vec<usize>,

    // ---- struct-of-arrays per-board state ------------------------------
    table_of: Vec<u32>,
    charge: Vec<f64>,
    c_max: Vec<f64>,
    min_battery: Vec<f64>,
    undersupplied: Vec<f64>,
    wasted: Vec<f64>,
    offered: Vec<f64>,
    delivered: Vec<f64>,
    carry: Vec<f64>,
    progress: Vec<f64>,
    backlog: Vec<u32>,
    supply_scale: Vec<f64>,
    scale_until: Vec<f64>,
    dropout_until: Vec<f64>,
    alloc_index: Vec<u32>,
    degradation: Vec<u32>,
    sheds: Vec<u32>,
    jobs_done: Vec<u64>,
    dropped: Vec<u64>,
    cursor: Vec<usize>,
    /// Active-mode bits, one per chip (bit `c` of board `b`'s word).
    chip_active: Vec<u32>,
    /// Fail-stop fault bits, same layout.
    chip_faulted: Vec<u32>,
    /// Per-chip clock setting, `boards × chips`, Hz.
    chip_freq: Vec<f64>,
    /// Operating point applied at the last slot boundary.
    current: Vec<OperatingPoint>,
    /// Cached board power with the active set running (W).
    p_on: Vec<f64>,
    /// Cached service rate of the applied point (jobs/s).
    rate: Vec<f64>,
    /// Chip or fault state changed since the last full apply: the next
    /// slot boundary must re-run the activation sweep even if the
    /// commanded point is unchanged (a recovery can reshuffle which
    /// chips run, with wake latency — exactly as the scalar board does).
    apply_dirty: Vec<bool>,

    // ---- run position ---------------------------------------------------
    slot: usize,
    trace_battery: Vec<f64>,
    trace_undersupplied: Vec<f64>,
    trace_jobs: Vec<u64>,
}

impl FleetState {
    /// Assemble a fleet of `specs.len()` boards.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] on a degenerate run configuration, an
    /// empty allocation table, or a platform with more than 32 chips
    /// (the fault/active words are `u32`); [`SimError::Core`] on an
    /// invalid platform or rate schedule.
    pub fn new(config: FleetConfig, specs: &[BoardSpec]) -> Result<Self, SimError> {
        if config.periods < 1 || config.slots_per_period < 1 || config.substeps < 1 {
            return Err(SimError::InvalidConfig(format!(
                "periods, slots_per_period and substeps must all be >= 1, \
                 got {} / {} / {}",
                config.periods, config.slots_per_period, config.substeps
            )));
        }
        if config.allocation.is_empty() {
            return Err(SimError::InvalidConfig(
                "fleet allocation table must have at least one operating point".into(),
            ));
        }
        config.platform.validate()?;
        let chips = config.platform.processors;
        if chips > 32 {
            return Err(SimError::InvalidConfig(format!(
                "fleet supports at most 32 chips per board, platform has {chips}"
            )));
        }

        let platform = config.platform;
        let tau = platform.tau.value();
        let total_slots = config.periods * config.slots_per_period;
        let substeps = config.substeps;
        // Same expression as the scalar run loop: τ / substeps.
        let dt = tau / substeps as f64;
        let boards = specs.len();

        // Shared supply table: `mean_power(t, dt) · dt` at the exact `t`
        // values the scalar sub-step loop visits.
        let source = TraceSource::new(config.charging);
        let mut supply_j = Vec::with_capacity(total_slots * substeps);
        for slot in 0..total_slots {
            let t_slot = slot as f64 * tau;
            for sub in 0..substeps {
                let t = seconds(t_slot + sub as f64 * dt);
                supply_j.push((source.mean_power(t, seconds(dt)) * seconds(dt)).value());
            }
        }

        // Expected-arrival tables, one per distinct phase offset.
        let rates_len = config.event_rates.len();
        let mut phase_table: Vec<Option<u32>> = vec![None; rates_len];
        let mut expected: Vec<Vec<f64>> = Vec::new();
        let mut table_of = Vec::with_capacity(boards);
        for spec in specs {
            let phase = if rates_len == 0 {
                0
            } else {
                spec.phase_slots % rates_len
            };
            let ti = if let Some(ti) = phase_table.get(phase).copied().flatten() {
                ti
            } else {
                let series = rotate_series(&config.event_rates, phase)?;
                expected.push(expected_arrivals(&series, total_slots, substeps, tau, dt));
                let ti = (expected.len() - 1) as u32;
                if let Some(slot) = phase_table.get_mut(phase) {
                    *slot = Some(ti);
                }
                ti
            };
            table_of.push(ti);
        }

        // Flatten the fault schedules; a stable time sort reproduces the
        // scalar disturbance queue's order (time, then insertion).
        let mut fault_at = Vec::new();
        let mut fault_what = Vec::new();
        let mut offsets = Vec::with_capacity(boards + 1);
        offsets.push(0);
        for spec in specs {
            let mut events: Vec<(Seconds, Disturbance)> = spec.faults.clone();
            events.sort_by(|a, b| a.0.value().total_cmp(&b.0.value()));
            for (at, d) in events {
                fault_at.push(at.value());
                fault_what.push(d);
            }
            offsets.push(fault_at.len());
        }

        let limits = platform.battery;
        let c_min = limits.c_min.value();
        let charge: Vec<f64> = specs
            .iter()
            .map(|s| limits.clamp(s.initial_charge).value())
            .collect();
        let f_min = platform.f_min().value();

        Ok(Self {
            allocation: config.allocation,
            guard: config.guard,
            latency: TransitionLatency::pama(),
            modes: platform.power.modes,
            chips,
            total_slots,
            substeps,
            tau,
            dt,
            c_min,
            p_idle: platform.power.all_standby().value(),
            max_backlog: 256,
            trace_enabled: config.trace,
            supply_j,
            expected,
            fault_at,
            fault_what,
            offsets,
            table_of,
            min_battery: charge.clone(),
            c_max: vec![limits.c_max.value(); boards],
            undersupplied: vec![0.0; boards],
            wasted: vec![0.0; boards],
            offered: vec![0.0; boards],
            delivered: vec![0.0; boards],
            carry: vec![0.0; boards],
            progress: vec![0.0; boards],
            backlog: vec![0; boards],
            supply_scale: vec![1.0; boards],
            scale_until: vec![0.0; boards],
            dropout_until: vec![0.0; boards],
            alloc_index: vec![0; boards],
            degradation: vec![0; boards],
            sheds: vec![0; boards],
            jobs_done: vec![0; boards],
            dropped: vec![0; boards],
            cursor: offsets_cursor(boards),
            chip_active: vec![0; boards],
            chip_faulted: vec![0; boards],
            chip_freq: vec![f_min; boards * chips],
            current: vec![OperatingPoint::OFF; boards],
            p_on: vec![0.0; boards],
            rate: vec![0.0; boards],
            apply_dirty: vec![true; boards],
            slot: 0,
            trace_battery: Vec::new(),
            trace_undersupplied: Vec::new(),
            trace_jobs: Vec::new(),
            charge,
            platform,
        })
    }

    /// Boards in the fleet.
    #[inline]
    pub fn boards(&self) -> usize {
        self.charge.len()
    }

    /// Slots each board runs for.
    #[inline]
    pub fn total_slots(&self) -> usize {
        self.total_slots
    }

    /// Slots stepped so far.
    #[inline]
    pub fn slots_done(&self) -> usize {
        self.slot
    }

    /// Advance every board by one τ slot. A no-op once the configured
    /// horizon has been reached.
    pub fn step_slot(&mut self) {
        if self.slot >= self.total_slots {
            return;
        }
        let slot = self.slot;
        let t_slot = slot as f64 * self.tau;
        let dt = self.dt;
        let substeps = self.substeps;
        let boards = self.boards();

        for b in 0..boards {
            // Slot-boundary decision: guard, then the allocation table.
            if let Some(g) = self.guard {
                if self.charge[b] < g.shed_below.value() && self.degradation[b] < g.max_degradation
                {
                    self.degradation[b] += 1;
                    self.sheds[b] += 1;
                } else if self.charge[b] > g.recover_above.value() && self.degradation[b] > 0 {
                    self.degradation[b] -= 1;
                }
            }
            let base = self.allocation[self.alloc_index[b] as usize % self.allocation.len()];
            let point = if self.degradation[b] == 0 {
                base
            } else {
                OperatingPoint::new(
                    base.workers.saturating_sub(self.degradation[b] as usize),
                    base.frequency,
                    base.voltage,
                )
            };
            let transition = self.apply_board(b, point);

            let mut slot_jobs = 0u64;
            for sub in 0..substeps {
                let g = slot * substeps + sub;
                let t = t_slot + sub as f64 * dt;

                // --- disturbances (strictly before t + dt, as the scalar
                //     queue pops them) --------------------------------------
                let bound = t + dt;
                while self.cursor[b] < self.offsets[b + 1] {
                    let at = self.fault_at[self.cursor[b]];
                    if !(at < bound) {
                        break;
                    }
                    let d = self.fault_what[self.cursor[b]];
                    self.cursor[b] += 1;
                    self.apply_fault(b, at, d);
                }

                // --- supply ------------------------------------------------
                let scale = if t < self.dropout_until[b] {
                    0.0
                } else if t < self.scale_until[b] {
                    self.supply_scale[b]
                } else {
                    1.0
                };
                let offered = (self.supply_j[g] * scale).max(0.0);
                battery_kernel::charge(
                    &mut self.charge[b],
                    &mut self.offered[b],
                    &mut self.wasted[b],
                    self.c_max[b],
                    1.0,
                    offered,
                );

                // --- arrivals ----------------------------------------------
                let expected = self.expected[self.table_of[b] as usize][g];
                let arrivals = accumulate_arrivals(expected, &mut self.carry[b]);
                self.enqueue(b, arrivals);

                // --- demand & brown-out ------------------------------------
                let compute_fraction = if sub == 0 {
                    (1.0 - transition / dt).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let pending =
                    board_kernel::pending_work(self.backlog[b] as usize, self.progress[b]);
                let busy_target = board_kernel::work_fraction(self.rate[b], dt, pending, false)
                    * compute_fraction;
                let demand = (self.p_on[b] * busy_target + self.p_idle * (1.0 - busy_target)) * dt;
                let delivered = battery_kernel::draw(
                    &mut self.charge[b],
                    &mut self.undersupplied[b],
                    &mut self.delivered[b],
                    self.c_min,
                    demand,
                );
                let availability = if demand > 1e-15 {
                    (delivered / demand).clamp(0.0, 1.0)
                } else {
                    1.0
                };

                // --- computation -------------------------------------------
                let idle = self.backlog[b] == 0 && self.progress[b] == 0.0;
                if !(self.current[b].is_off() || idle || self.rate[b] <= 0.0) {
                    let capacity = self.rate[b] * dt * (availability * compute_fraction);
                    let (completed, _remaining) = board_kernel::drain_queue(
                        capacity,
                        &mut self.progress[b],
                        self.backlog[b] as usize,
                        |_| {},
                    );
                    self.backlog[b] -= completed as u32;
                    self.jobs_done[b] += completed;
                    slot_jobs += completed;
                }
                // The ideal battery has no self-discharge: the scalar
                // `battery.tick(dt)` is a no-op and is elided here.
            }

            self.min_battery[b] = self.min_battery[b].min(self.charge[b]);
            self.alloc_index[b] = self.alloc_index[b].wrapping_add(1);
            if self.trace_enabled {
                self.trace_battery.push(self.charge[b]);
                self.trace_undersupplied.push(self.undersupplied[b]);
                self.trace_jobs.push(slot_jobs);
            }
        }
        self.slot += 1;
    }

    /// Run the remaining slots and produce the report.
    pub fn run(mut self) -> FleetReport {
        while self.slot < self.total_slots {
            self.step_slot();
        }
        self.into_report()
    }

    /// Harvest the report for the slots stepped so far.
    pub fn into_report(self) -> FleetReport {
        let boards = self.boards();
        let survived = (0..boards)
            .map(|b| {
                self.undersupplied[b] <= UNDERSUPPLY_TOL
                    && self.min_battery[b] > self.c_min + FLOOR_TOL
            })
            .collect();
        let trace = if self.trace_enabled {
            Some(FleetTrace {
                boards,
                battery: self.trace_battery,
                undersupplied: self.trace_undersupplied,
                jobs: self.trace_jobs,
            })
        } else {
            None
        };
        FleetReport {
            boards,
            slots: self.slot,
            board_slots: boards as u64 * self.slot as u64,
            c_min: self.c_min,
            min_battery: self.min_battery,
            final_battery: self.charge,
            undersupplied: self.undersupplied,
            wasted: self.wasted,
            offered: self.offered,
            delivered: self.delivered,
            jobs_done: self.jobs_done,
            dropped: self.dropped,
            sheds: self.sheds,
            survived,
            trace,
        }
    }

    /// The scalar [`crate::board::PamaBoard::apply`] activation sweep on
    /// the packed chip state. Returns the worst-case transition latency
    /// in seconds. Skipped entirely (latency 0) when the point is
    /// unchanged and no fault event has touched the board since the last
    /// sweep — in that case every per-chip command would be a no-op.
    fn apply_board(&mut self, b: usize, point: OperatingPoint) -> f64 {
        if point == self.current[b] && !self.apply_dirty[b] {
            return 0.0;
        }
        let workers = point.workers.min(self.platform.workers());
        let mut activated = 0usize;
        let mut worst = 0.0f64;
        for c in 0..self.chips {
            let is_controller = c < self.platform.reserved;
            let faulted = self.chip_faulted[b] >> c & 1 == 1;
            let should_run =
                board_kernel::chip_should_run(&point, faulted, is_controller, activated, workers);
            let idx = b * self.chips + c;
            if should_run {
                if !is_controller {
                    activated += 1;
                }
                // `Processor::set_frequency` then `set_mode(Active)`,
                // with the same no-op guards.
                if point.frequency.value() > 0.0
                    && (point.frequency.value() - self.chip_freq[idx]).abs() >= 1e-6
                {
                    worst = worst.max(self.latency.frequency_change(point.frequency).value());
                    self.chip_freq[idx] = point.frequency.value();
                }
                if self.chip_active[b] >> c & 1 == 0 {
                    worst = worst.max(self.latency.wake.value());
                    self.chip_active[b] |= 1 << c;
                }
            } else if !faulted {
                // `set_mode(Standby)`: free, and a no-op on faulted chips
                // (they are already pinned at standby).
                self.chip_active[b] &= !(1 << c);
            }
        }
        self.current[b] = point;
        self.apply_dirty[b] = false;
        self.refresh_caches(b);
        worst
    }

    /// Recompute the cached board power and service rate. The scalar
    /// simulator recomputes both every sub-step; they only actually
    /// change at an apply or a processor fault/recovery, which is when
    /// this is called.
    fn refresh_caches(&mut self, b: usize) {
        let cal = self.platform.f_max();
        let mut p = 0.0;
        for c in 0..self.chips {
            let mode = if self.chip_active[b] >> c & 1 == 1 {
                Mode::Active
            } else {
                Mode::Standby
            };
            p += chip_power(
                mode,
                Hertz(self.chip_freq[b * self.chips + c]),
                &self.modes,
                cal,
            )
            .value();
        }
        self.p_on[b] = p;
        let healthy = self.healthy_workers(b);
        self.rate[b] = board_kernel::service_rate(&self.platform, &self.current[b], healthy);
    }

    /// Worker chips (controller excluded) currently healthy.
    fn healthy_workers(&self, b: usize) -> usize {
        let reserved = self.platform.reserved.min(self.chips);
        let worker_bits = (self.chip_faulted[b] >> reserved) & mask(self.chips - reserved);
        (self.chips - reserved) - worker_bits.count_ones() as usize
    }

    /// `PamaBoard::enqueue` on the counting backlog.
    fn enqueue(&mut self, b: usize, n: usize) {
        for _ in 0..n {
            if self.backlog[b] >= self.max_backlog {
                self.dropped[b] += 1;
            } else {
                self.backlog[b] += 1;
            }
        }
    }

    /// `Simulation::apply_disturbances`'s match arm on the packed state.
    fn apply_fault(&mut self, b: usize, at: f64, d: Disturbance) {
        match d {
            Disturbance::SupplyScale { factor, duration } => {
                self.supply_scale[b] = factor.max(0.0);
                self.scale_until[b] = at + duration.value();
            }
            Disturbance::EventBurst { count } => self.enqueue(b, count),
            Disturbance::ChargingDropout { duration } => {
                self.dropout_until[b] = self.dropout_until[b].max(at + duration.value());
            }
            Disturbance::ProcessorFault { index } => {
                if index < self.chips && self.chip_faulted[b] >> index & 1 == 0 {
                    self.chip_faulted[b] |= 1 << index;
                    // The watchdog clock-gates the chip to standby.
                    self.chip_active[b] &= !(1 << index);
                    self.apply_dirty[b] = true;
                    self.refresh_caches(b);
                }
            }
            Disturbance::ProcessorRecover { index } => {
                if index < self.chips && self.chip_faulted[b] >> index & 1 == 1 {
                    self.chip_faulted[b] &= !(1 << index);
                    // The chip rejoins in standby but already counts as
                    // healthy for the service rate, as in the scalar model.
                    self.apply_dirty[b] = true;
                    self.refresh_caches(b);
                }
            }
            Disturbance::BatteryFade { factor } => {
                battery_kernel::fade(
                    &mut self.charge[b],
                    &mut self.wasted[b],
                    &mut self.c_max[b],
                    self.c_min,
                    factor,
                );
            }
            // Sensor faults corrupt only governor observations; a fleet
            // board is open-loop, so they change nothing — the same
            // physics-untouched outcome a pinned scalar run has.
            Disturbance::SensorNoise { .. } | Disturbance::SensorStuck { .. } => {}
            // Fleet boards carry no power-element topology (the same
            // no-op a scalar run without `with_topology` performs).
            Disturbance::ElementFault { .. } | Disturbance::ElementRecover { .. } => {}
        }
    }
}

/// `n` low bits set (`n ≤ 32`).
#[inline]
fn mask(n: usize) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

fn offsets_cursor(boards: usize) -> Vec<usize> {
    vec![0; boards]
}

/// The rate schedule as seen by a board with a `phase` slot offset: slot
/// `i` of the result carries slot `i + phase` of the base schedule.
fn rotate_series(series: &PowerSeries, phase: usize) -> Result<PowerSeries, SimError> {
    if phase == 0 {
        return Ok(series.clone());
    }
    let vals = series.values();
    let n = vals.len();
    let rotated = (0..n).map(|i| vals[(i + phase) % n]).collect();
    Ok(PowerSeries::new(series.slot_width(), rotated)?)
}

/// Expected arrivals per global sub-step — exactly the integral the
/// scalar [`crate::events::ScheduleGenerator`] evaluates at the same `t`.
fn expected_arrivals(
    rates: &PowerSeries,
    total_slots: usize,
    substeps: usize,
    tau: f64,
    dt: f64,
) -> Vec<f64> {
    let period = rates.period().value();
    let mut out = Vec::with_capacity(total_slots * substeps);
    for slot in 0..total_slots {
        let t_slot = slot as f64 * tau;
        for sub in 0..substeps {
            let t = t_slot + sub as f64 * dt;
            let a = t.rem_euclid(period);
            out.push(rates.integral_wrapping(seconds(a), seconds(a + dt)).value());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventGenerator, ScheduleGenerator};
    use dpm_core::units::{joules, volts};

    fn charging() -> PowerSeries {
        PowerSeries::new(
            seconds(4.8),
            vec![
                2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap()
    }

    fn rates() -> PowerSeries {
        PowerSeries::new(
            seconds(4.8),
            vec![0.5, 0.1, 0.0, 0.3, 0.5, 0.2, 0.5, 0.1, 0.0, 0.3, 0.5, 0.2],
        )
        .unwrap()
    }

    fn point(workers: usize, mhz: f64) -> OperatingPoint {
        OperatingPoint::new(workers, Hertz::from_mhz(mhz), volts(3.3))
    }

    fn config(allocation: Vec<OperatingPoint>) -> FleetConfig {
        FleetConfig::new(Platform::pama(), charging(), rates(), allocation)
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut cfg = config(vec![point(3, 40.0)]);
        cfg.periods = 0;
        assert!(matches!(
            FleetState::new(cfg, &[BoardSpec::quiescent(joules(8.0))]),
            Err(SimError::InvalidConfig(_))
        ));
        let empty_alloc = config(Vec::new());
        assert!(matches!(
            FleetState::new(empty_alloc, &[BoardSpec::quiescent(joules(8.0))]),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_fleet_runs_and_reports() {
        let report = FleetState::new(config(vec![point(3, 40.0)]), &[])
            .unwrap()
            .run();
        assert_eq!(report.boards, 0);
        assert_eq!(report.board_slots, 0);
        assert_eq!(report.survival_fraction(), 1.0);
    }

    #[test]
    fn off_fleet_charges_and_survives() {
        let mut cfg = config(vec![OperatingPoint::OFF]);
        cfg.trace = true;
        let specs = vec![BoardSpec::quiescent(joules(8.0)); 3];
        let report = FleetState::new(cfg, &specs).unwrap().run();
        assert_eq!(report.boards, 3);
        assert_eq!(report.slots, 24);
        assert_eq!(report.board_slots, 72);
        assert_eq!(report.survived_count(), 3);
        for b in 0..3 {
            assert_eq!(report.jobs_done[b], 0);
            assert!(report.final_battery[b] > 8.0, "off boards only charge");
            assert_eq!(report.undersupplied[b], 0.0);
        }
        let trace = report.trace.as_ref().unwrap();
        assert_eq!(trace.battery.len(), 72);
        // Identical boards trace identically.
        for slot in 0..24 {
            let a = trace.battery[trace.index(slot, 0)];
            let b = trace.battery[trace.index(slot, 1)];
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn phase_offset_shifts_arrivals_but_preserves_totals() {
        let mut cfg = config(vec![point(7, 80.0)]);
        cfg.periods = 4;
        let specs = vec![
            BoardSpec {
                phase_slots: 0,
                ..BoardSpec::quiescent(joules(8.0))
            },
            BoardSpec {
                phase_slots: 3,
                ..BoardSpec::quiescent(joules(8.0))
            },
        ];
        let report = FleetState::new(cfg, &specs).unwrap().run();
        // Whole periods of the same schedule: same long-run event count.
        let a = report.jobs_done[0] + report.dropped[0];
        let b = report.jobs_done[1] + report.dropped[1];
        assert!(
            (a as i64 - b as i64).abs() <= 1,
            "phase must not change the long-run event count: {a} vs {b}"
        );
    }

    #[test]
    fn rotated_rates_match_the_scalar_generator_on_the_rotated_series() {
        // The phase table must agree with a ScheduleGenerator driven by
        // the rotated series — the proptest then pins phase 0 to the
        // scalar simulation as a whole.
        let rotated = rotate_series(&rates(), 5).unwrap();
        let mut gen = ScheduleGenerator::new(rotated.clone());
        let table = expected_arrivals(&rotated, 4, 8, 4.8, 0.6);
        let mut carry = 0.0;
        for slot in 0..4usize {
            for sub in 0..8usize {
                let t = slot as f64 * 4.8 + sub as f64 * 0.6;
                let direct = gen.arrivals(seconds(t), seconds(0.6));
                let ours = accumulate_arrivals(table[slot * 8 + sub], &mut carry);
                assert_eq!(direct, ours, "slot {slot} sub {sub}");
            }
        }
    }

    #[test]
    fn shed_guard_degrades_and_counts() {
        // Drain-heavy fleet with a guard: sheds fire and are counted.
        let mut cfg = config(vec![point(7, 80.0)]);
        cfg.periods = 4;
        cfg.guard = Some(ShedGuard {
            shed_below: joules(10.0),
            recover_above: joules(15.0),
            max_degradation: 7,
        });
        let specs = vec![BoardSpec::quiescent(joules(6.5))];
        let report = FleetState::new(cfg.clone(), &specs).unwrap().run();
        assert!(report.total_sheds() > 0, "guard never fired");
        // Without the guard the same board draws more energy.
        cfg.guard = None;
        let unguarded = FleetState::new(cfg, &specs).unwrap().run();
        assert!(unguarded.delivered[0] >= report.delivered[0]);
        assert_eq!(unguarded.sheds[0], 0);
    }

    #[test]
    fn processor_fault_mid_run_cuts_throughput_and_power() {
        let mut cfg = config(vec![point(7, 80.0)]);
        cfg.periods = 2;
        let mut stormy = BoardSpec::quiescent(joules(16.0));
        stormy
            .faults
            .push((seconds(0.0), Disturbance::EventBurst { count: 200 }));
        let healthy = FleetState::new(cfg.clone(), &[stormy.clone()])
            .unwrap()
            .run();
        for index in 1..8 {
            stormy
                .faults
                .push((seconds(0.1), Disturbance::ProcessorFault { index }));
        }
        let faulted = FleetState::new(cfg, &[stormy]).unwrap().run();
        assert!(healthy.jobs_done[0] > 0);
        assert!(
            faulted.jobs_done[0] < healthy.jobs_done[0],
            "{} vs {}",
            faulted.jobs_done[0],
            healthy.jobs_done[0]
        );
        assert!(faulted.delivered[0] < healthy.delivered[0]);
    }

    #[test]
    fn dropout_fade_and_sensor_faults_apply() {
        let mut cfg = config(vec![OperatingPoint::OFF]);
        cfg.periods = 2;
        let mut spec = BoardSpec::quiescent(joules(8.0));
        spec.faults = vec![
            (
                seconds(0.0),
                Disturbance::ChargingDropout {
                    duration: seconds(28.8),
                },
            ),
            (seconds(1.0), Disturbance::BatteryFade { factor: 0.25 }),
            (
                seconds(2.0),
                Disturbance::SensorStuck {
                    duration: seconds(1e9),
                },
            ),
        ];
        let report = FleetState::new(cfg.clone(), &[spec]).unwrap().run();
        let clean = FleetState::new(cfg, &[BoardSpec::quiescent(joules(8.0))])
            .unwrap()
            .run();
        assert!(report.offered[0] < clean.offered[0], "dropout cut supply");
        let limits = Platform::pama().battery;
        let faded_cmax = limits.c_min.value() + 0.25 * limits.window().value();
        assert!(report.final_battery[0] <= faded_cmax + 1e-9);
        assert!(report.wasted[0] > 0.0, "fade spilled charge");
    }

    #[test]
    fn step_slot_is_incremental_and_idempotent_at_the_end() {
        let mut fleet = FleetState::new(
            config(vec![point(3, 40.0)]),
            &[BoardSpec::quiescent(joules(8.0))],
        )
        .unwrap();
        assert_eq!(fleet.total_slots(), 24);
        for expect in 1..=24 {
            fleet.step_slot();
            assert_eq!(fleet.slots_done(), expect);
        }
        fleet.step_slot(); // past the horizon: no-op
        assert_eq!(fleet.slots_done(), 24);
        let report = fleet.into_report();
        assert_eq!(report.slots, 24);
    }
}
