//! Performance baselines from wall-clock profile documents.
//!
//! A `.profile` document (see [`dpm_telemetry::ProfileLine`]) is
//! non-reproducible by design — wall clock varies run to run — but its
//! *shape* is stable: the same spans run the same number of times, and
//! their mean durations drift only when the code regresses. This module
//! condenses a profile into a committed `BENCH_<name>.json` baseline and
//! checks fresh profiles against it within a tolerance band, giving CI a
//! cheap perf-regression gate without a benchmarking framework.

use crate::error::TraceError;
use dpm_telemetry::ProfileLine;
use serde::{Deserialize, Serialize};

/// Version stamp of the baseline document format.
pub const BENCH_SCHEMA: u32 = 1;

/// One span's condensed timing in a baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSpan {
    /// Scope-qualified span name.
    pub name: String,
    /// Completed executions.
    pub count: u64,
    /// Total wall-clock seconds.
    pub total_s: f64,
    /// Mean wall-clock seconds per execution.
    pub mean_s: f64,
    /// Longest single execution (s).
    pub max_s: f64,
}

/// A committed performance baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchBaseline {
    /// [`BENCH_SCHEMA`] at write time.
    pub schema: u32,
    /// Baseline name (`"repro"`, …).
    pub name: String,
    /// Spans sorted by name.
    pub spans: Vec<BenchSpan>,
}

/// One span that regressed against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The offending span.
    pub span: String,
    /// What regressed and by how much.
    pub message: String,
}

impl BenchBaseline {
    /// Condense a parsed profile into a named baseline, spans sorted by
    /// name so the JSON is deterministic up to the timing values.
    pub fn from_profile(name: &str, profile: &[ProfileLine]) -> Self {
        let mut spans: Vec<BenchSpan> = profile
            .iter()
            .map(|p| BenchSpan {
                name: p.name.clone(),
                count: p.count,
                total_s: p.total_s,
                mean_s: p.mean_s,
                max_s: p.max_s,
            })
            .collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        Self {
            schema: BENCH_SCHEMA,
            name: name.to_string(),
            spans,
        }
    }

    /// Serialize to the committed JSON form (pretty, trailing newline).
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).unwrap_or_default();
        json.push('\n');
        json
    }

    /// Parse a committed baseline document.
    ///
    /// # Errors
    /// [`TraceError::InvalidBaseline`] when the document does not
    /// deserialize or advertises an unknown schema.
    pub fn parse(input: &str) -> Result<Self, TraceError> {
        let baseline: Self =
            serde_json::from_str(input).map_err(|e| TraceError::InvalidBaseline(e.to_string()))?;
        if baseline.schema != BENCH_SCHEMA {
            return Err(TraceError::InvalidBaseline(format!(
                "baseline schema v{} is not the v{BENCH_SCHEMA} this analyzer understands",
                baseline.schema
            )));
        }
        Ok(baseline)
    }

    /// Look up a span by name.
    fn span(&self, name: &str) -> Option<&BenchSpan> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Check a fresh profile against a committed baseline.
///
/// A span regresses when it vanished, its deterministic call count
/// changed (that is a behavior change, not noise), or its mean duration
/// exceeds the baseline's by more than `tolerance_pct` percent. Spans
/// present in the candidate but not the baseline are reported too — new
/// hot paths should enter the baseline deliberately. Returns the empty
/// vector when the profile is within the band.
pub fn check(
    baseline: &BenchBaseline,
    candidate: &[ProfileLine],
    tolerance_pct: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let factor = 1.0 + tolerance_pct / 100.0;
    for base in &baseline.spans {
        let Some(cur) = candidate.iter().find(|p| p.name == base.name) else {
            regressions.push(Regression {
                span: base.name.clone(),
                message: "span missing from the candidate profile".into(),
            });
            continue;
        };
        if cur.count != base.count {
            regressions.push(Regression {
                span: base.name.clone(),
                message: format!(
                    "call count changed: baseline {}, candidate {} (deterministic counts must match)",
                    base.count, cur.count
                ),
            });
        }
        // Allow an absolute noise floor so short spans do not flap on
        // scheduler noise. Two components: 1 µs of timer jitter per
        // measurement, plus a 100 µs preemption budget amortized over
        // the call count — a one-shot 50 µs span doubles when the
        // scheduler steals its core once, but the same spike divided
        // across thousands of calls is invisible in the mean, so the
        // slack shrinks as 1/count and stays negligible on hot paths.
        let noise_floor = 1e-6 + 1e-4 / base.count.max(1) as f64;
        let limit = base.mean_s * factor + noise_floor;
        if cur.mean_s > limit {
            regressions.push(Regression {
                span: base.name.clone(),
                message: format!(
                    "mean {:.6}s exceeds baseline {:.6}s by more than {tolerance_pct}%",
                    cur.mean_s, base.mean_s
                ),
            });
        }
    }
    for cur in candidate {
        if baseline.span(&cur.name).is_none() {
            regressions.push(Regression {
                span: cur.name.clone(),
                message: "span absent from the baseline (re-generate it to admit new spans)".into(),
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Vec<ProfileLine> {
        vec![
            ProfileLine {
                name: "table1.job".into(),
                count: 12,
                total_s: 0.24,
                mean_s: 0.02,
                max_s: 0.05,
            },
            ProfileLine {
                name: "campaign.cell".into(),
                count: 3,
                total_s: 0.3,
                mean_s: 0.1,
                max_s: 0.12,
            },
        ]
    }

    #[test]
    fn baseline_round_trips_and_sorts_spans() {
        let base = BenchBaseline::from_profile("repro", &profile());
        assert_eq!(base.schema, BENCH_SCHEMA);
        assert_eq!(base.spans[0].name, "campaign.cell");
        assert_eq!(base.spans[1].name, "table1.job");
        let json = base.to_json();
        assert!(json.ends_with('\n'));
        let back = BenchBaseline::parse(&json).expect("parses");
        assert_eq!(back, base);
    }

    #[test]
    fn malformed_and_future_baselines_are_rejected() {
        assert!(matches!(
            BenchBaseline::parse("not json"),
            Err(TraceError::InvalidBaseline(_))
        ));
        let base = BenchBaseline::from_profile("repro", &profile());
        let bumped = base.to_json().replacen("1", "9", 1);
        assert!(matches!(
            BenchBaseline::parse(&bumped),
            Err(TraceError::InvalidBaseline(_))
        ));
    }

    #[test]
    fn identical_profile_is_within_band() {
        let base = BenchBaseline::from_profile("repro", &profile());
        assert!(check(&base, &profile(), 10.0).is_empty());
    }

    #[test]
    fn slow_span_regresses_but_tolerance_absorbs_noise() {
        let base = BenchBaseline::from_profile("repro", &profile());
        let mut cur = profile();
        cur[0].mean_s = 0.021; // +5% on table1.job
        assert!(check(&base, &cur, 10.0).is_empty());
        cur[0].mean_s = 0.03; // +50%
        let regs = check(&base, &cur, 10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].span, "table1.job");
        assert!(regs[0].message.contains("exceeds baseline"));
    }

    #[test]
    fn count_changes_and_missing_or_new_spans_are_regressions() {
        let base = BenchBaseline::from_profile("repro", &profile());
        let mut cur = profile();
        cur[1].count = 99;
        let regs = check(&base, &cur, 50.0);
        assert!(regs.iter().any(|r| r.message.contains("call count")));

        let removed: Vec<ProfileLine> = profile().into_iter().skip(1).collect();
        let regs = check(&base, &removed, 50.0);
        assert!(regs.iter().any(|r| r.message.contains("missing")));

        let mut added = profile();
        added.push(ProfileLine {
            name: "new.span".into(),
            count: 1,
            total_s: 0.0,
            mean_s: 0.0,
            max_s: 0.0,
        });
        let regs = check(&base, &added, 50.0);
        assert!(regs.iter().any(|r| r.span == "new.span"));
    }
}
