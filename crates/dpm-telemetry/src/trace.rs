//! The serialized trace schema: one [`TraceLine`] per JSONL line.
//!
//! Schema stability matters more here than ergonomics — CI compares
//! traces byte-for-byte — so every type is a plain non-generic struct
//! with explicit field names, and the deterministic trace and the
//! wall-clock profile are **separate documents**: [`TraceLine`] never
//! carries a wall-clock field, [`ProfileLine`] carries nothing else.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Version stamp written into [`TraceMeta`]; bump on any schema change.
pub const SCHEMA_VERSION: u32 = 1;

/// One structured event, stamped with simulated time and a sequence
/// number that is monotonic within its scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotonic sequence number within `scope` (assigned at record time
    /// by the recorder that first saw the event).
    pub seq: u64,
    /// Absorption path of the recorder that recorded the event (empty for
    /// the root recorder; `"sweep/load/3/proposed"`-style after
    /// [`crate::Recorder::absorb`]).
    pub scope: String,
    /// Event name (`"sim.slot"`, `"core.replan"`, `"safety.shed"`, …).
    pub name: String,
    /// Governor slot the event belongs to, when it has one.
    pub slot: Option<u64>,
    /// Simulated time of the event (s) — never wall clock.
    pub time: f64,
    /// Numeric payload, in the order the instrumentation site listed it.
    pub fields: Vec<(String, f64)>,
    /// Free-form annotation (a disturbance kind, an error message).
    pub detail: Option<String>,
}

/// The header line of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema: u32,
    /// The root recorder's source label (`"repro"`, `"sweep"`, …).
    pub source: String,
    /// Events retained in the trace.
    pub events: u64,
    /// Events dropped at the ring-buffer capacity (oldest first).
    pub dropped: u64,
}

/// A named monotonic counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterLine {
    /// Scope-qualified counter name.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// A named last-write-wins gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeLine {
    /// Scope-qualified gauge name.
    pub name: String,
    /// Final value.
    pub value: f64,
}

/// A histogram snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramLine {
    /// Scope-qualified histogram name.
    pub name: String,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1`; last is overflow).
    pub counts: Vec<u64>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`0.0` when empty).
    pub min: f64,
    /// Largest observation (`0.0` when empty).
    pub max: f64,
}

/// The deterministic face of a span timer: how many times it ran. The
/// wall-clock side lives in [`ProfileLine`], outside the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanLine {
    /// Scope-qualified span name.
    pub name: String,
    /// Number of completed span executions.
    pub count: u64,
}

/// One line of the deterministic JSONL trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceLine {
    /// Trace header (always the first line).
    Meta(TraceMeta),
    /// A structured event.
    Event(Event),
    /// A counter's final value.
    Counter(CounterLine),
    /// A gauge's final value.
    Gauge(GaugeLine),
    /// A histogram snapshot.
    Histogram(HistogramLine),
    /// A span's deterministic call count.
    Span(SpanLine),
}

/// One line of the **wall-clock profile** — the explicitly separate,
/// non-reproducible document written next to the trace (`<path>.profile`)
/// and rendered in the stderr summary. Never part of the trace itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileLine {
    /// Scope-qualified span name.
    pub name: String,
    /// Completed span executions.
    pub count: u64,
    /// Total wall-clock seconds across executions.
    pub total_s: f64,
    /// Mean wall-clock seconds per execution.
    pub mean_s: f64,
    /// Longest single execution (s).
    pub max_s: f64,
}

/// One node of the **hierarchical wall-clock span tree** — the second
/// line kind of the profile document. `path` is a collapsed-stack path
/// (`;`-separated frames, root first), so the document doubles as
/// flamegraph input. Like [`ProfileLine`], never part of the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNodeLine {
    /// Collapsed-stack path: `;`-joined span names from the root frame
    /// down (`"sim.run;core.decide;core.replan"`). Absorption prefixes
    /// the root frame with its scope (`"table1/proposed/0/sim.run;…"`).
    pub path: String,
    /// Completed executions of exactly this path.
    pub count: u64,
    /// Total wall-clock seconds across executions (children included).
    pub total_s: f64,
    /// Longest single execution (s).
    pub max_s: f64,
}

/// Failure to parse one line of a JSONL trace or profile document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong, from the serde layer.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSONL document where each non-blank line deserializes to `L`.
fn parse_jsonl<L: Deserialize>(input: &str) -> Result<Vec<L>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<L>(line) {
            Ok(parsed) => out.push(parsed),
            Err(e) => {
                return Err(ParseError {
                    line: i + 1,
                    message: e.to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// Parse a deterministic trace document (one [`TraceLine`] per non-blank
/// line) — the inverse of [`crate::Recorder::to_jsonl`]. Blank lines are
/// skipped; the first malformed line aborts with its 1-based line number.
///
/// # Errors
/// [`ParseError`] naming the first line that does not deserialize.
pub fn parse_trace_jsonl(input: &str) -> Result<Vec<TraceLine>, ParseError> {
    parse_jsonl(input)
}

/// Parse a wall-clock profile document (one [`ProfileLine`] per non-blank
/// line) — the inverse of [`crate::Recorder::profile_jsonl`].
///
/// # Errors
/// [`ParseError`] naming the first line that does not deserialize.
pub fn parse_profile_jsonl(input: &str) -> Result<Vec<ProfileLine>, ParseError> {
    parse_jsonl(input)
}

/// Parse a complete profile document, which since the hierarchical
/// profiler holds **two** line kinds: flat per-name aggregates
/// ([`ProfileLine`], requires `name`) and span-tree nodes
/// ([`SpanNodeLine`], requires `path`). Each line is tried as a flat
/// line first; the required fields are disjoint, so the fallback is
/// unambiguous. Blank lines are skipped.
///
/// # Errors
/// [`ParseError`] naming the first line that parses as neither kind.
pub fn parse_profile_doc(input: &str) -> Result<(Vec<ProfileLine>, Vec<SpanNodeLine>), ParseError> {
    let mut flat = Vec::new();
    let mut tree = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<ProfileLine>(line) {
            Ok(parsed) => flat.push(parsed),
            Err(flat_err) => match serde_json::from_str::<SpanNodeLine>(line) {
                Ok(parsed) => tree.push(parsed),
                Err(tree_err) => {
                    return Err(ParseError {
                        line: i + 1,
                        message: format!(
                            "neither a flat profile line ({flat_err}) nor a span-tree line ({tree_err})"
                        ),
                    })
                }
            },
        }
    }
    Ok((flat, tree))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> Event {
        Event {
            seq: 7,
            scope: "sweep/load/3/proposed".into(),
            name: "sim.slot".into(),
            slot: Some(11),
            time: 52.8,
            fields: vec![("battery_j".into(), 7.25), ("used_j".into(), 0.5)],
            detail: None,
        }
    }

    #[test]
    fn every_variant_round_trips() {
        let lines = vec![
            TraceLine::Meta(TraceMeta {
                schema: SCHEMA_VERSION,
                source: "repro".into(),
                events: 2,
                dropped: 0,
            }),
            TraceLine::Event(event()),
            TraceLine::Event(Event {
                slot: None,
                detail: Some("ChargingDropout".into()),
                ..event()
            }),
            TraceLine::Counter(CounterLine {
                name: "core.replan.count".into(),
                value: 42,
            }),
            TraceLine::Gauge(GaugeLine {
                name: "sim.battery_j".into(),
                value: 6.125,
            }),
            TraceLine::Histogram(HistogramLine {
                name: "alloc.iterations".into(),
                bounds: vec![1.0, 2.0, 4.0],
                counts: vec![0, 1, 2, 0],
                count: 3,
                sum: 9.0,
                min: 2.0,
                max: 4.0,
            }),
            TraceLine::Span(SpanLine {
                name: "core.decide".into(),
                count: 24,
            }),
        ];
        for line in lines {
            let json = serde_json::to_string(&line).unwrap();
            let back: TraceLine = serde_json::from_str(&json).unwrap();
            assert_eq!(back, line, "{json}");
            // Re-serialization is byte-stable (the determinism contract).
            assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }
    }

    #[test]
    fn parse_trace_jsonl_round_trips_and_skips_blanks() {
        let lines = vec![
            TraceLine::Meta(TraceMeta {
                schema: SCHEMA_VERSION,
                source: "t".into(),
                events: 1,
                dropped: 0,
            }),
            TraceLine::Event(event()),
        ];
        let mut doc = String::new();
        for l in &lines {
            doc.push_str(&serde_json::to_string(l).unwrap());
            doc.push('\n');
        }
        doc.push('\n'); // trailing blank line is tolerated
        let parsed = parse_trace_jsonl(&doc).unwrap();
        assert_eq!(parsed, lines);
        assert!(parse_trace_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn parse_errors_carry_the_line_number() {
        let meta = serde_json::to_string(&TraceLine::Meta(TraceMeta {
            schema: SCHEMA_VERSION,
            source: "t".into(),
            events: 0,
            dropped: 0,
        }))
        .unwrap();
        let doc = format!("{meta}\nnot json\n");
        let err = parse_trace_jsonl(&doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(!err.to_string().is_empty());
        // A profile document is not a trace document.
        let profile = serde_json::to_string(&ProfileLine {
            name: "job".into(),
            count: 1,
            total_s: 0.5,
            mean_s: 0.5,
            max_s: 0.5,
        })
        .unwrap();
        assert!(parse_trace_jsonl(&profile).is_err());
        let parsed = parse_profile_jsonl(&profile).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "job");
    }

    #[test]
    fn span_node_lines_round_trip_and_stay_out_of_the_trace() {
        let node = SpanNodeLine {
            path: "table1/proposed/0/sim.run;core.decide;core.replan".into(),
            count: 7,
            total_s: 0.25,
            max_s: 0.1,
        };
        let json = serde_json::to_string(&node).unwrap();
        let back: SpanNodeLine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, node);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        // A span-tree line is neither a trace line nor a flat profile
        // line — the three documents stay mutually unambiguous.
        assert!(serde_json::from_str::<TraceLine>(&json).is_err());
        assert!(serde_json::from_str::<ProfileLine>(&json).is_err());
    }

    #[test]
    fn parse_profile_doc_splits_flat_and_tree_lines() {
        let flat = ProfileLine {
            name: "core.decide".into(),
            count: 24,
            total_s: 1.0,
            mean_s: 1.0 / 24.0,
            max_s: 0.25,
        };
        let node = SpanNodeLine {
            path: "sim.run;core.decide".into(),
            count: 24,
            total_s: 1.0,
            max_s: 0.25,
        };
        let doc = format!(
            "{}\n\n{}\n",
            serde_json::to_string(&flat).unwrap(),
            serde_json::to_string(&node).unwrap(),
        );
        let (flats, nodes) = parse_profile_doc(&doc).unwrap();
        assert_eq!(flats, vec![flat]);
        assert_eq!(nodes, vec![node]);
        let (flats, nodes) = parse_profile_doc("").unwrap();
        assert!(flats.is_empty() && nodes.is_empty());
        let err = parse_profile_doc("{\"count\":1}\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("span-tree"), "{err}");
    }

    #[test]
    fn profile_lines_round_trip_but_stay_separate() {
        let p = ProfileLine {
            name: "table1.job".into(),
            count: 12,
            total_s: 0.5,
            mean_s: 0.5 / 12.0,
            max_s: 0.1,
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: ProfileLine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        // A ProfileLine is not a TraceLine: parsing it as one must fail.
        assert!(serde_json::from_str::<TraceLine>(&json).is_err());
    }
}
