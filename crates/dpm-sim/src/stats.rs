//! Simulation reports: the paper's Table 1 metrics plus the supporting
//! detail a downstream user needs (throughput, latency, drops).

use serde::{Deserialize, Serialize};

/// Per-slot record of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: u64,
    /// Slot start time (s).
    pub time: f64,
    /// Worker count commanded.
    pub workers: usize,
    /// Frequency commanded (MHz).
    pub freq_mhz: f64,
    /// Energy the board drew this slot (J).
    pub used: f64,
    /// Energy offered by the source this slot (J).
    pub supplied: f64,
    /// Battery level at slot end (J).
    pub battery: f64,
    /// Cumulative undersupplied energy at slot end (J) — monotone
    /// non-decreasing across slots; the last slot's value equals
    /// [`SimReport::undersupplied`].
    pub undersupplied: f64,
    /// Jobs completed this slot.
    pub jobs: u64,
    /// Backlog at slot end.
    pub backlog: usize,
}

/// Census of power-topology governance activity during a run, present
/// when the simulation had a topology attached
/// ([`crate::sim::Simulation::with_topology`]). Counter semantics follow
/// `dpm_broker::BrokerCounts`; flat-mode runs fill the same fields from
/// the strawman's bookkeeping so the campaign arms stay comparable.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerStats {
    /// Governance mode: `"broker"` or `"flat"`.
    pub mode: String,
    /// Element level decreases applied.
    pub revocations: u64,
    /// Element level increases applied.
    pub restores: u64,
    /// Provider faults processed.
    pub cascades: u64,
    /// Terminal shutdowns executed (0 or 1).
    pub terminal_shutdowns: u64,
    /// Syncs in which demanded power could not be served.
    pub retries: u64,
    /// Elements that exhausted their retry budget.
    pub abandoned: u64,
}

/// Aggregate outcome of a run — Table 1's rows come from here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Governor under test.
    pub governor: String,
    /// Simulated duration (s).
    pub duration: f64,
    /// Energy offered by the source (J).
    pub offered: f64,
    /// Energy wasted because the battery was full (J) — Table 1 metric 1.
    pub wasted: f64,
    /// Energy demanded but unavailable (J) — Table 1 metric 2.
    pub undersupplied: f64,
    /// Energy delivered to the board (J).
    pub delivered: f64,
    /// Energy delivered while the workers were computing (J).
    pub compute_energy: f64,
    /// Jobs completed.
    pub jobs_done: u64,
    /// Events dropped at the backlog cap.
    pub dropped: u64,
    /// Mean job latency (s).
    pub mean_latency: f64,
    /// Worst job latency (s).
    pub max_latency: f64,
    /// Battery level at the start (J).
    pub initial_battery: f64,
    /// Battery level at the end (J).
    pub final_battery: f64,
    /// Per-slot trace.
    pub slots: Vec<SlotRecord>,
    /// Power-topology governance census; `None` when no topology was
    /// attached (absent in older serialized reports too).
    #[serde(default)]
    pub broker: Option<BrokerStats>,
}

impl SimReport {
    /// The paper's energy-utilization metric:
    /// (energy used for computation) / (energy available). Available
    /// energy is everything the run could have spent: the supply offered
    /// plus any net drawdown of the initial battery charge.
    pub fn utilization(&self) -> f64 {
        let drawdown = (self.initial_battery - self.final_battery).max(0.0);
        let available = self.offered + drawdown;
        if available <= 0.0 {
            0.0
        } else {
            self.compute_energy / available
        }
    }

    /// Jobs per joule delivered — an efficiency summary for the benches.
    pub fn jobs_per_joule(&self) -> f64 {
        if self.delivered <= 0.0 {
            0.0
        } else {
            self.jobs_done as f64 / self.delivered
        }
    }

    /// Throughput in jobs/s.
    pub fn throughput(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.jobs_done as f64 / self.duration
        }
    }

    /// Per-slot trace as CSV (header + one row per slot) for external
    /// plotting tools.
    pub fn slots_csv(&self) -> String {
        let mut out = String::from(
            "slot,time_s,workers,freq_mhz,used_j,supplied_j,battery_j,undersupplied_j,jobs,backlog\n",
        );
        for s in &self.slots {
            out.push_str(&format!(
                "{},{:.3},{},{:.1},{:.6},{:.6},{:.6},{:.6},{},{}\n",
                s.slot,
                s.time,
                s.workers,
                s.freq_mhz,
                s.used,
                s.supplied,
                s.battery,
                s.undersupplied,
                s.jobs,
                s.backlog
            ));
        }
        out
    }

    /// One-line summary for console reports.
    pub fn summary(&self) -> String {
        format!(
            "{:<14} wasted {:>8.2} J  undersupplied {:>8.2} J  jobs {:>5}  util {:>5.1}%",
            self.governor,
            self.wasted,
            self.undersupplied,
            self.jobs_done,
            100.0 * self.utilization()
        )
    }
}

/// Survival metrics of one run under fault injection — the fault-campaign
/// CSV rows are built from this (DESIGN.md §9 defines each metric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurvivalReport {
    /// Governor under test.
    pub governor: String,
    /// Guard band above `C_min` (J) the metrics are computed against.
    pub guard_band: f64,
    /// `true` when the run never browned out: zero undersupplied energy
    /// and the battery trace stayed strictly above `C_min`.
    pub survived: bool,
    /// Deepest battery charge observed at any slot boundary (J).
    pub deepest_charge: f64,
    /// Total simulated time spent at or below `C_min + guard_band` (s),
    /// counted in whole slots from the trace.
    pub time_below_guard: f64,
    /// Total undersupplied energy (J).
    pub undersupplied: f64,
    /// Events dropped at the backlog cap.
    pub missed_events: u64,
    /// Duration of the *first* excursion below the guard threshold (s):
    /// from the slot that first dips below it to the slot that climbs back
    /// above, or to the end of the run when it never recovers. `0` when
    /// the trajectory never enters the guard band.
    pub recovery_latency: f64,
    /// Degradation/recovery transitions the governor recorded (0 for a
    /// bare governor with no safety wrapper).
    pub degradations: u64,
    /// Jobs completed despite the faults.
    pub jobs_done: u64,
}

impl SurvivalReport {
    /// Derive the survival metrics from a traced run. `c_min` and
    /// `guard_band` are in joules; `degradations` comes from the governor
    /// (a [`SafetyGovernor`](dpm_core::runtime) trace length, or 0).
    ///
    /// Requires a run with `SimConfig::trace = true`; with an empty trace
    /// the time-resolved metrics fall back to the endpoint levels only.
    pub fn from_report(r: &SimReport, c_min: f64, guard_band: f64, degradations: u64) -> Self {
        let threshold = c_min + guard_band;
        let slot_dt = if r.slots.is_empty() {
            0.0
        } else {
            r.duration / r.slots.len() as f64
        };
        let mut deepest = r.initial_battery.min(r.final_battery);
        let mut time_below = 0.0;
        let mut first_dip: Option<f64> = None;
        let mut recovery: Option<f64> = None;
        for s in &r.slots {
            deepest = deepest.min(s.battery);
            if s.battery <= threshold {
                time_below += slot_dt;
                if first_dip.is_none() {
                    first_dip = Some(s.time);
                }
            } else if let (Some(dip), None) = (first_dip, recovery) {
                recovery = Some(s.time - dip);
            }
        }
        let recovery_latency = match (first_dip, recovery) {
            (Some(dip), None) => r.duration - dip,
            (_, Some(lat)) => lat,
            (None, None) => 0.0,
        };
        Self {
            governor: r.governor.clone(),
            guard_band,
            survived: r.undersupplied <= 1e-9 && deepest > c_min + 1e-9,
            deepest_charge: deepest,
            time_below_guard: time_below,
            undersupplied: r.undersupplied,
            missed_events: r.dropped,
            recovery_latency,
            degradations,
            jobs_done: r.jobs_done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            governor: "test".into(),
            duration: 100.0,
            offered: 200.0,
            wasted: 10.0,
            undersupplied: 5.0,
            delivered: 150.0,
            compute_energy: 120.0,
            jobs_done: 30,
            dropped: 2,
            mean_latency: 6.0,
            max_latency: 12.0,
            initial_battery: 8.0,
            final_battery: 8.0,
            slots: Vec::new(),
            broker: None,
        }
    }

    #[test]
    fn utilization_ratio() {
        assert!((report().utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_offered_is_zero_utilization() {
        let mut r = report();
        r.offered = 0.0;
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn throughput_and_efficiency() {
        let r = report();
        assert!((r.throughput() - 0.3).abs() < 1e-12);
        assert!((r.jobs_per_joule() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = report();
        r.slots.push(SlotRecord {
            slot: 0,
            time: 0.0,
            workers: 3,
            freq_mhz: 40.0,
            used: 5.0,
            supplied: 6.0,
            battery: 8.0,
            undersupplied: 0.25,
            jobs: 2,
            backlog: 1,
        });
        let csv = r.slots_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("slot,time_s"));
        assert!(lines[0].contains("undersupplied_j"));
        assert!(lines[1].starts_with("0,0.000,3,40.0"));
        assert!(lines[1].contains(",0.250000,"));
    }

    fn slot(slot: u64, time: f64, battery: f64) -> SlotRecord {
        SlotRecord {
            slot,
            time,
            workers: 1,
            freq_mhz: 20.0,
            used: 0.0,
            supplied: 0.0,
            battery,
            undersupplied: 0.0,
            jobs: 0,
            backlog: 0,
        }
    }

    #[test]
    fn survival_metrics_track_the_guard_band_excursion() {
        let mut r = report();
        r.undersupplied = 0.0;
        r.duration = 40.0; // 4 slots of 10 s
        r.slots = vec![
            slot(0, 0.0, 8.0),
            slot(1, 10.0, 2.0), // dips below 0.5 + 2.0
            slot(2, 20.0, 2.4),
            slot(3, 30.0, 6.0), // recovered
        ];
        let s = SurvivalReport::from_report(&r, 0.5, 2.0, 3);
        assert!(s.survived);
        assert!((s.deepest_charge - 2.0).abs() < 1e-12);
        assert!((s.time_below_guard - 20.0).abs() < 1e-12);
        // First dip at the slot starting t = 10, back above at the slot
        // starting t = 30: a 20 s excursion.
        assert!(
            (s.recovery_latency - 20.0).abs() < 1e-12,
            "{}",
            s.recovery_latency
        );
        assert_eq!(s.degradations, 3);
    }

    #[test]
    fn survival_flags_a_breach_and_an_unrecovered_dip() {
        let mut r = report();
        r.undersupplied = 1.5;
        r.duration = 20.0;
        r.slots = vec![slot(0, 0.0, 4.0), slot(1, 10.0, 0.5)];
        let s = SurvivalReport::from_report(&r, 0.5, 1.0, 0);
        assert!(!s.survived, "undersupply and a floor touch are a breach");
        assert!((s.deepest_charge - 0.5).abs() < 1e-12);
        // Dips at t = 10 and never recovers: latency runs to the end.
        assert!((s.recovery_latency - 10.0).abs() < 1e-12);
    }

    #[test]
    fn survival_with_no_dip_has_zero_latency() {
        let mut r = report();
        r.undersupplied = 0.0;
        r.duration = 20.0;
        r.slots = vec![slot(0, 0.0, 8.0), slot(1, 10.0, 9.0)];
        let s = SurvivalReport::from_report(&r, 0.5, 1.0, 0);
        assert!(s.survived);
        assert_eq!(s.recovery_latency, 0.0);
        assert_eq!(s.time_below_guard, 0.0);
    }

    #[test]
    fn summary_mentions_the_metrics() {
        let s = report().summary();
        assert!(s.contains("wasted"));
        assert!(s.contains("undersupplied"));
        assert!(s.contains("test"));
    }
}
