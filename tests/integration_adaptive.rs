//! The adaptive controller in full simulation: learning a systematically
//! wrong charging forecast must recover the plain controller's margins.

use dpm_bench::experiments;
use dpm_core::forecast::ForecastMethod;
use dpm_core::platform::Platform;
use dpm_core::prelude::*;
use dpm_sim::prelude::*;
use dpm_workloads::scenarios;

/// Reality: scenario I's supply. Prior: a flat (very wrong) forecast.
fn wrong_prior() -> PowerSeries {
    PowerSeries::constant(dpm_core::units::seconds(4.8), 12, 1.18).unwrap()
}

fn run(governor: &mut dyn Governor, periods: usize) -> SimReport {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(s.charging.clone())),
        Box::new(ScheduleGenerator::new(s.event_rates(&platform))),
        s.initial_charge,
        SimConfig {
            periods,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run(governor)
    .unwrap()
}

#[test]
fn adaptive_recovers_from_a_wrong_prior() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();

    // Plain controller stuck with the wrong prior forever.
    let wrong_problem = dpm_core::alloc::AllocationProblem {
        charging: wrong_prior(),
        demand: s.use_power.clone(),
        initial_charge: s.initial_charge,
        limits: platform.battery,
        p_floor: platform.power.all_standby(),
        p_ceiling: platform.board_power(platform.workers(), platform.f_max()),
    };
    let wrong_alloc = dpm_core::alloc::InitialAllocator::new(wrong_problem)
        .unwrap()
        .compute()
        .unwrap();
    let mut stuck = DpmController::new(platform.clone(), &wrong_alloc, wrong_prior()).unwrap();
    let r_stuck = run(&mut stuck, 8);

    // Adaptive controller starting from the same wrong prior.
    let mut adaptive = AdaptiveDpmController::new(
        platform.clone(),
        wrong_prior(),
        s.use_power.clone(),
        ForecastMethod::ExponentialSmoothing { alpha: 0.6 },
        s.initial_charge,
    )
    .unwrap();
    let r_adapt = run(&mut adaptive, 8);

    // Reference: plain controller with the exact forecast.
    let exact_alloc = experiments::initial_allocation(&platform, &s).unwrap();
    let mut exact = DpmController::new(platform.clone(), &exact_alloc, s.charging.clone()).unwrap();
    let r_exact = run(&mut exact, 8);

    let loss = |r: &SimReport| r.wasted + r.undersupplied;
    assert!(
        loss(&r_adapt) < loss(&r_stuck),
        "adaptive {} vs stuck {}",
        loss(&r_adapt),
        loss(&r_stuck)
    );
    // After learning, the adaptive run sits close to the exact-forecast
    // reference (within 2x of its combined loss plus a small constant for
    // the learning transient).
    assert!(
        loss(&r_adapt) < 2.0 * loss(&r_exact) + 8.0,
        "adaptive {} vs exact {}",
        loss(&r_adapt),
        loss(&r_exact)
    );
    // 6 of the 7 period boundaries re-plan: at the first boundary the
    // half-learned estimate poses a non-convergent §4.1 problem, which the
    // allocator rejects and the controller keeps flying the prior plan.
    assert_eq!(adaptive.replans(), 6);
}

#[test]
fn adaptive_learns_a_changed_orbit_shape() {
    // The orbit precesses: the eclipse lengthens by two slots. A
    // *proportional* supply guard cannot model a shape change (the last
    // informative slot's supplied/forecast ratio says nothing about which
    // future slots are dark), so the stuck controller keeps planning
    // against sunlight that never comes; the adaptive one relearns the
    // shape within a few periods.
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let new_reality = PowerSeries::new(
        dpm_core::units::seconds(4.8),
        vec![
            3.54, 3.54, 3.54, 3.54, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
        ],
    )
    .unwrap();

    let run_real = |gov: &mut dyn Governor| -> SimReport {
        Simulation::new(
            platform.clone(),
            Box::new(TraceSource::new(new_reality.clone())),
            Box::new(ScheduleGenerator::new(s.event_rates(&platform))),
            s.initial_charge,
            SimConfig {
                periods: 10,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .run(gov)
        .unwrap()
    };

    // Stuck controller planning on the *old* orbit.
    let exact_alloc = experiments::initial_allocation(&platform, &s).unwrap();
    let mut stuck = DpmController::new(platform.clone(), &exact_alloc, s.charging.clone()).unwrap();
    let r_stuck = run_real(&mut stuck);

    let mut adaptive = AdaptiveDpmController::new(
        platform.clone(),
        s.charging.clone(), // same stale prior
        s.use_power.clone(),
        ForecastMethod::ExponentialSmoothing { alpha: 0.6 },
        s.initial_charge,
    )
    .unwrap();
    let r_adapt = run_real(&mut adaptive);

    let loss = |r: &SimReport| r.wasted + r.undersupplied;
    assert!(
        loss(&r_adapt) < loss(&r_stuck),
        "adaptive {} vs stuck {}",
        loss(&r_adapt),
        loss(&r_stuck)
    );
}

#[test]
fn adaptive_equals_plain_when_prior_is_exact() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut adaptive = AdaptiveDpmController::new(
        platform.clone(),
        s.charging.clone(),
        s.use_power.clone(),
        ForecastMethod::ExponentialSmoothing { alpha: 0.3 },
        s.initial_charge,
    )
    .unwrap();
    let r = run(&mut adaptive, 4);
    assert_eq!(r.undersupplied, 0.0, "{}", r.summary());
    assert!(r.wasted < 0.1 * r.offered, "{}", r.summary());
}
