//! Precomputed Q15 twiddle-factor tables.
//!
//! `W_N^k = e^{−2πik/N}` for the forward transform; tables are computed in
//! double precision once and quantized to Q15, matching what embedded DSP
//! code keeps in ROM. Only the first half (`k < N/2`) is stored — the
//! radix-2 butterflies never index beyond it.

use crate::fixed::CQ15;

/// Twiddle table for a transform of size `n` (power of two).
#[derive(Debug, Clone)]
pub struct TwiddleTable {
    n: usize,
    /// `W_N^k` for `k ∈ [0, N/2)`.
    forward: Vec<CQ15>,
}

impl TwiddleTable {
    /// Build the table.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two ≥ 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "FFT size must be 2^k ≥ 2");
        let forward = (0..n / 2)
            .map(|k| {
                let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                CQ15::from_f64(theta.cos(), theta.sin())
            })
            .collect();
        Self { n, forward }
    }

    /// The transform size this table serves.
    #[inline]
    pub fn size(&self) -> usize {
        self.n
    }

    /// Forward twiddle `W_N^k`, `k < N/2`.
    #[inline]
    pub fn forward(&self, k: usize) -> CQ15 {
        self.forward[k]
    }

    /// Inverse twiddle `W_N^{−k} = conj(W_N^k)`.
    #[inline]
    pub fn inverse(&self, k: usize) -> CQ15 {
        self.forward[k].conj()
    }
}

/// Bit-reverse permutation index table for size `n`.
pub fn bit_reverse_indices(n: usize) -> Vec<usize> {
    assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1))
        .collect()
}

/// Apply the bit-reverse permutation in place.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    let idx = bit_reverse_indices(n);
    for (i, &j) in idx.iter().enumerate() {
        if j > i {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_half_size() {
        let t = TwiddleTable::new(8);
        assert_eq!(t.size(), 8);
        assert_eq!(t.forward.len(), 4);
    }

    #[test]
    fn w0_is_one() {
        let t = TwiddleTable::new(16);
        let (re, im) = t.forward(0).to_f64();
        assert!((re - (1.0 - 1.0 / 32768.0)).abs() < 2.0 / 32768.0);
        assert!(im.abs() < 1.0 / 32768.0);
    }

    #[test]
    fn quarter_turn_is_minus_i() {
        let t = TwiddleTable::new(8);
        // W_8^2 = e^{−iπ/2} = −i
        let (re, im) = t.forward(2).to_f64();
        assert!(re.abs() < 1e-4);
        assert!((im + 1.0).abs() < 1e-3);
    }

    #[test]
    fn inverse_is_conjugate() {
        let t = TwiddleTable::new(8);
        for k in 0..4 {
            let f = t.forward(k);
            let i = t.inverse(k);
            assert_eq!(f.re, i.re);
            // Saturating negation maps −1 to 1−2⁻¹⁵, so allow one LSB.
            assert!((f.im.raw() as i32 + i.im.raw() as i32).abs() <= 1, "k={k}");
        }
    }

    #[test]
    fn twiddles_lie_on_unit_circle() {
        let t = TwiddleTable::new(64);
        for k in 0..32 {
            let m = t.forward(k).mag_sq();
            assert!((m - 1.0).abs() < 5e-3, "k={k}: {m}");
        }
    }

    #[test]
    fn bit_reverse_size_8() {
        assert_eq!(bit_reverse_indices(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn bit_reverse_is_involution() {
        let mut data: Vec<usize> = (0..64).collect();
        bit_reverse_permute(&mut data);
        bit_reverse_permute(&mut data);
        assert_eq!(data, (0..64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "FFT size must be 2^k")]
    fn rejects_non_power_of_two() {
        TwiddleTable::new(12);
    }
}
