//! Offline stand-in for `proptest`.
//!
//! Same macro/trait names, deterministic uniform sampling instead of the
//! real shrinking engine: each `proptest!` test runs its body over a fixed
//! number of pseudo-random cases (seeded per test run constant, so
//! failures reproduce). `prop_assert!`/`prop_assert_eq!` panic like their
//! originals ultimately do on failure; `prop_assume!` skips the case.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Cases run per property (the real default is 256; trimmed for CI time).
pub const CASES: usize = 64;

/// A source of sampled values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Map sampled values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

/// A constant strategy (`Just(x)` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Full-range sampling for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Sample from the type's full range.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i16 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i16
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite full-range doubles: random sign/exponent/mantissa with
        // non-finite values rejected.
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Sample any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Collection size specification: a count or a count range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end.saturating_sub(1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy combinators over collections.
pub mod collection {
    use super::*;

    /// A `Vec` of values drawn from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of real proptest's `prop::` re-exports.
pub mod prop {
    pub use super::collection;
}

/// One-stop imports for property tests.
pub mod prelude {
    pub use super::{any, collection, prop, Arbitrary, Just, SizeRange, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Define property tests: each `fn name(binding in strategy, ...)` body is
/// run over [`CASES`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __proptest_rng =
                    <$crate::prelude::StdRng as $crate::prelude::SeedableRng>::seed_from_u64(
                        0x9E37_79B9u64 ^ stringify!($name).len() as u64,
                    );
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property (panics on failure, like a failed case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}
