//! The paper's two evaluation scenarios (Figures 3–4, Tables 2–5),
//! digitized.
//!
//! The charging schedules are pinned exactly by the "Supplied Charging
//! Power" columns of Tables 3 and 5; the use-schedule shapes are read off
//! Figures 3–4 (they equal the tables' "Used Power" columns for the first
//! period). Values are watts per `τ = 4.8 s` slot, `T = 57.6 s`, 12 slots.

use crate::Scenario;
use dpm_core::series::PowerSeries;
use dpm_core::units::{joules, seconds};

/// Scenario I: constant sun for half the orbit, then eclipse; twin-peaked
/// use schedule (Figure 3).
pub fn scenario_one() -> Scenario {
    let tau = seconds(4.8);
    let charging = PowerSeries::new(
        tau,
        vec![
            2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
        ],
    )
    .expect("paper scenario constants are valid");
    let use_power = PowerSeries::new(
        tau,
        vec![
            2.36, 2.36, 1.18, 1.38, 2.36, 1.18, 1.18, 0.79, 0.49, 0.49, 0.79, 0.98,
        ],
    )
    .expect("paper scenario constants are valid");
    Scenario::new("scenario-1", charging, use_power, joules(8.0))
        .expect("paper scenario constants are valid")
}

/// Scenario II: ramped sunrise, long eclipse, partial re-illumination;
/// use schedule shifted against the supply (Figure 4).
pub fn scenario_two() -> Scenario {
    let tau = seconds(4.8);
    let charging = PowerSeries::new(
        tau,
        vec![
            3.24, 3.54, 3.54, 3.54, 0.88, 0.0, 0.0, 0.0, 0.88, 0.88, 1.77, 2.36,
        ],
    )
    .expect("paper scenario constants are valid");
    let use_power = PowerSeries::new(
        tau,
        vec![
            2.36, 2.95, 2.95, 2.36, 1.57, 1.38, 1.18, 0.0, 0.29, 0.79, 1.38, 2.06,
        ],
    )
    .expect("paper scenario constants are valid");
    Scenario::new("scenario-2", charging, use_power, joules(8.0))
        .expect("paper scenario constants are valid")
}

/// Both scenarios, for sweep harnesses.
pub fn all() -> Vec<Scenario> {
    vec![scenario_one(), scenario_two()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_one_matches_table3_supply_column() {
        let s = scenario_one();
        assert_eq!(s.charging.len(), 12);
        assert_eq!(s.charging.get(0), 2.36);
        assert_eq!(s.charging.get(5), 2.36);
        assert_eq!(s.charging.get(6), 0.0);
        assert!((s.charging.integral().value() - 2.36 * 6.0 * 4.8).abs() < 1e-9);
    }

    #[test]
    fn scenario_two_matches_table5_supply_column() {
        let s = scenario_two();
        let expect = [
            3.24, 3.54, 3.54, 3.54, 0.88, 0.0, 0.0, 0.0, 0.88, 0.88, 1.77, 2.36,
        ];
        assert_eq!(s.charging.values(), &expect);
    }

    #[test]
    fn both_scenarios_have_57_6s_periods() {
        for s in all() {
            assert!((s.charging.period().value() - 57.6).abs() < 1e-9);
            assert_eq!(s.use_power.len(), 12);
        }
    }

    #[test]
    fn use_schedules_are_positive_where_figures_show_work() {
        let s1 = scenario_one();
        assert!(s1.use_power.values().iter().all(|&v| v >= 0.0));
        // Scenario II has its quiet slot (index 7) at zero.
        let s2 = scenario_two();
        assert_eq!(s2.use_power.get(7), 0.0);
    }

    #[test]
    fn scenario_one_supply_exceeds_mean_demand_in_sun() {
        let s = scenario_one();
        let mean_use = s.use_power.mean().value();
        assert!(2.36 > mean_use, "supply plateau must exceed mean demand");
    }
}
