//! End-to-end telemetry contract: the trace a harness run records must be
//! (a) byte-identical for any worker count and across repeated runs,
//! (b) valid JSONL that round-trips through serde, and (c) actually carry
//! the signals the paper's experiments care about — replan counters from
//! the Algorithm 3 path, per-slot battery gauges from the simulator, and
//! `safety.*` degradation events from the fault campaigns. A disabled
//! recorder must record nothing at all.

use dpm_bench::{campaign, experiments, sweeps};
use dpm_core::platform::Platform;
use dpm_telemetry::{Recorder, TraceLine};
use dpm_workloads::scenarios;

/// Record one Table 1 matrix run into a fresh recorder.
fn table1_trace(jobs: usize) -> String {
    let telemetry = Recorder::enabled("repro");
    let platform = Platform::pama();
    let scenarios = [scenarios::scenario_one(), scenarios::scenario_two()];
    experiments::table1_jobs_with(&platform, &scenarios, 2, jobs, &telemetry).unwrap();
    telemetry.to_jsonl()
}

#[test]
fn table1_trace_is_byte_identical_across_worker_counts() {
    let serial = table1_trace(1);
    let parallel = table1_trace(4);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel);
    // And across repeated runs at the same worker count.
    assert_eq!(parallel, table1_trace(4));
}

#[test]
fn sweep_trace_is_byte_identical_across_worker_counts() {
    let trace = |jobs: usize| {
        let telemetry = Recorder::enabled("sweep");
        sweeps::run_with(&["load".to_string()], jobs, 1, &telemetry).unwrap();
        telemetry.to_jsonl()
    };
    let serial = trace(1);
    let parallel = trace(4);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel);
}

#[test]
fn profiler_activity_never_leaks_into_the_trace() {
    // The hierarchical profiler is live during these runs — the span-tree
    // lines below prove it — yet the deterministic trace must stay
    // byte-identical across worker counts: wall clock is confined to the
    // `.profile` document.
    let run = |jobs: usize| {
        let telemetry = Recorder::enabled("repro");
        let platform = Platform::pama();
        let scenarios = [scenarios::scenario_one(), scenarios::scenario_two()];
        experiments::table1_jobs_with(&platform, &scenarios, 2, jobs, &telemetry).unwrap();
        (telemetry.to_jsonl(), telemetry.profile_jsonl())
    };
    let (trace_1, profile_1) = run(1);
    let (trace_4, profile_4) = run(4);
    assert_eq!(trace_1, trace_4);

    let (_, tree_1) = dpm_telemetry::parse_profile_doc(&profile_1).unwrap();
    let (_, tree_4) = dpm_telemetry::parse_profile_doc(&profile_4).unwrap();
    assert!(!tree_1.is_empty(), "profiler recorded no span-tree nodes");
    assert!(
        tree_1.iter().any(|n| n.path.contains("params.plan")),
        "§4.2 parameter scheduler span missing from the tree"
    );
    assert!(
        tree_1.iter().any(|n| n.path.contains("sim.run")),
        "whole-run span missing from the tree"
    );
    // The tree's *structure* (paths and counts) is deterministic even
    // though its wall-clock payload is not.
    let shape = |tree: &[dpm_telemetry::SpanNodeLine]| {
        tree.iter()
            .map(|n| (n.path.clone(), n.count))
            .collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(shape(&tree_1), shape(&tree_4));

    // Every profile line — flat or tree — round-trips through serde
    // untouched.
    for (i, line) in profile_1.lines().enumerate() {
        let again = match serde_json::from_str::<dpm_telemetry::ProfileLine>(line) {
            Ok(flat) => serde_json::to_string(&flat).unwrap(),
            Err(_) => {
                let node: dpm_telemetry::SpanNodeLine = serde_json::from_str(line).unwrap();
                serde_json::to_string(&node).unwrap()
            }
        };
        assert_eq!(line, again, "profile line {i} did not round-trip");
    }
}

#[test]
fn trace_round_trips_through_serde_line_by_line() {
    let jsonl = table1_trace(2);
    let mut lines = 0usize;
    for line in jsonl.lines() {
        let parsed: TraceLine = serde_json::from_str(line).unwrap();
        let again = serde_json::to_string(&parsed).unwrap();
        assert_eq!(line, again, "line {lines} did not round-trip");
        lines += 1;
    }
    assert!(lines > 10, "suspiciously small trace: {lines} lines");
    // The first line is the meta header with the schema version.
    match serde_json::from_str::<TraceLine>(jsonl.lines().next().unwrap()).unwrap() {
        TraceLine::Meta(meta) => {
            assert_eq!(meta.schema, dpm_telemetry::SCHEMA_VERSION);
            assert_eq!(meta.source, "repro");
        }
        other => panic!("first line is not meta: {other:?}"),
    }
}

#[test]
fn table3_trace_carries_controller_and_simulator_signals() {
    let telemetry = Recorder::enabled("test");
    let platform = Platform::pama();
    let s1 = scenarios::scenario_one();
    experiments::table3_5_with(&platform, &s1, experiments::DEFAULT_PERIODS, &telemetry).unwrap();

    assert!(telemetry.counter("core.decide.calls") > 0);
    assert!(telemetry.counter("core.replan.count") > 0);
    assert!(telemetry.counter("alloc.compute.calls") >= 1);
    assert!(telemetry.counter("sim.slots") > 0);

    let jsonl = telemetry.to_jsonl();
    let mut slot_events = 0usize;
    let mut battery_hist = false;
    for line in jsonl.lines() {
        match serde_json::from_str::<TraceLine>(line).unwrap() {
            TraceLine::Event(e) if e.name == "sim.slot" => {
                assert!(e.slot.is_some());
                assert!(e.fields.iter().any(|(k, _)| k == "battery_j"));
                slot_events += 1;
            }
            TraceLine::Histogram(h) if h.name == "sim.battery_j" => {
                assert!(h.count > 0);
                battery_hist = true;
            }
            _ => {}
        }
    }
    assert!(slot_events > 0, "no per-slot simulator events in trace");
    assert!(battery_hist, "no sim.battery_j histogram in trace");
}

#[test]
fn campaign_trace_carries_safety_degradation_events() {
    let telemetry = Recorder::enabled("campaign");
    campaign::run_with(3, 2, 4, &telemetry).unwrap();
    // Point recorders are absorbed under `campaign/{governor}/{seed}`
    // scopes, so campaign counters carry prefixed names in the trace.
    let lines: Vec<TraceLine> = telemetry
        .to_jsonl()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    let counter_sum = |suffix: &str| -> u64 {
        lines
            .iter()
            .filter_map(|l| match l {
                TraceLine::Counter(c) if c.name.ends_with(suffix) => Some(c.value),
                _ => None,
            })
            .sum()
    };
    assert!(
        counter_sum("safety.degradations") > 0,
        "standard fault mix should trigger the safety wrapper"
    );
    assert!(counter_sum("sim.disturbances") > 0);
    let safety_events = lines
        .iter()
        .filter(|l| matches!(l, TraceLine::Event(e) if e.name.starts_with("safety.")))
        .count();
    assert!(safety_events > 0, "no safety.* events in campaign trace");
}

#[test]
fn disabled_recorder_records_nothing() {
    let telemetry = Recorder::disabled();
    let platform = Platform::pama();
    let s1 = scenarios::scenario_one();
    experiments::table3_5_with(&platform, &s1, 4, &telemetry).unwrap();
    assert!(!telemetry.is_enabled());
    assert_eq!(telemetry.event_count(), 0);
    assert_eq!(telemetry.counter("core.decide.calls"), 0);
    assert!(telemetry.to_jsonl().is_empty());
    assert!(telemetry.profile_jsonl().is_empty());
}
