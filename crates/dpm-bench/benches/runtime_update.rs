//! Tables 3/5 bench: Algorithm 3's redistribution and the full controller
//! decision step — the code that runs on the controller PIM every τ, so
//! its cost bounds how small τ could be made.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_bench::experiments;
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::ParetoTable;
use dpm_core::platform::Platform;
use dpm_core::runtime::{redistribute, update_reference, DpmController};
use dpm_core::units::{joules, seconds, watts, Seconds};
use dpm_workloads::scenarios;
use std::hint::black_box;
use std::sync::Arc;

fn bench_tables_3_5(c: &mut Criterion) {
    let platform = Platform::pama();
    for s in scenarios::all() {
        let (trace, report) =
            experiments::table3_5(&platform, &s, experiments::DEFAULT_PERIODS).unwrap();
        println!(
            "[table3/5] {}: {} slots, {}",
            s.name,
            trace.len(),
            report.summary()
        );
    }

    let mut group = c.benchmark_group("runtime/full_trace");
    for s in scenarios::all() {
        group.bench_with_input(BenchmarkId::from_parameter(&s.name), &s, |b, s| {
            b.iter(|| {
                black_box(experiments::table3_5(
                    &platform,
                    s,
                    experiments::DEFAULT_PERIODS,
                ))
            })
        });
    }
    group.finish();
}

fn bench_redistribute(c: &mut Criterion) {
    let limits = Platform::pama().battery;
    let bounds = (watts(0.0528), watts(4.368));
    let mut group = c.benchmark_group("runtime/algorithm3");
    for slots in [12usize, 96, 768] {
        let plan: Vec<f64> = (0..slots).map(|i| 0.5 + (i % 5) as f64 * 0.4).collect();
        // Supply tracks demand exactly, so the battery level never pins:
        // the full window stays in play and the bench exercises the
        // scaling passes rather than `pin_horizon`'s early exit. The plan
        // is restored into a preallocated buffer per iteration so the
        // numbers measure Algorithm 3, not the allocator.
        let charging = plan.clone();
        let mut buf = vec![0.0; slots];
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, _| {
            b.iter(|| {
                buf.copy_from_slice(&plan);
                black_box(redistribute(
                    &mut buf,
                    &charging,
                    seconds(4.8),
                    joules(8.0),
                    limits,
                    joules(-2.4),
                    bounds,
                ))
            })
        });
        // The original gather-based scale_window, kept as the bit-identity
        // oracle — benched side by side so the optimized/reference ratio is
        // visible in the same report.
        let mut buf_ref = vec![0.0; slots];
        group.bench_with_input(BenchmarkId::new("reference", slots), &slots, |b, _| {
            b.iter(|| {
                buf_ref.copy_from_slice(&plan);
                black_box(update_reference::redistribute(
                    &mut buf_ref,
                    &charging,
                    seconds(4.8),
                    joules(8.0),
                    limits,
                    joules(-2.4),
                    bounds,
                ))
            })
        });
    }
    group.finish();
}

fn bench_controller_step(c: &mut Criterion) {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let alloc = experiments::initial_allocation(&platform, &s).unwrap();
    c.bench_function("runtime/controller_decide", |b| {
        let mut governor =
            DpmController::new(platform.clone(), &alloc, s.charging.clone()).unwrap();
        let mut slot = 0u64;
        b.iter(|| {
            let obs = SlotObservation {
                slot,
                time: Seconds(slot as f64 * 4.8),
                battery: joules(8.0),
                used_last: joules(5.0),
                supplied_last: joules(6.0),
                backlog: 2,
            };
            slot += 1;
            black_box(governor.decide(&obs))
        })
    });

    // Construction cost with and without table sharing: `new` rates the
    // full operating-point grid per controller; `with_table` reuses one
    // frontier, which is what every matrix/campaign/fleet cell now does.
    let shared_platform = Arc::new(platform.clone());
    let table = Arc::new(ParetoTable::build(&platform).unwrap());
    c.bench_function("runtime/controller_build_fresh", |b| {
        b.iter(|| {
            black_box(DpmController::new(platform.clone(), &alloc, s.charging.clone()).unwrap())
        })
    });
    c.bench_function("runtime/controller_build_shared", |b| {
        b.iter(|| {
            black_box(
                DpmController::with_table(
                    Arc::clone(&shared_platform),
                    &alloc,
                    s.charging.clone(),
                    Arc::clone(&table),
                )
                .unwrap()
                .without_trace(),
            )
        })
    });
}

/// Short measurement windows: these benches exist to track regressions and
/// print experiment logs, not to resolve microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_tables_3_5, bench_redistribute, bench_controller_step
}
criterion_main!(benches);
