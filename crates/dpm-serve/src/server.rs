//! The session registry and the two transports (stdio, TCP).
//!
//! One [`Server`] owns a root [`Recorder`] and a mutex-guarded registry
//! of open sessions. Request handling is transport-agnostic:
//! [`Server::handle`] maps one request to one response, and both the
//! NDJSON-over-stdio loop and the thread-per-connection TCP loop are
//! thin shells around it.
//!
//! ## Determinism across transports
//!
//! Each session records into its own recorder and is absorbed into the
//! root under `serve/<name>` only at close (a reused name gets an
//! `@<n>` incarnation suffix, so every absorbed scope holds exactly one
//! run's stream), so a session's trace depends only on its own request
//! sequence — never on what other connections are doing. The root trace
//! aggregates counters (commutative sums) and absorbed per-session
//! scopes; it audits green but its cross-scope line order is not a
//! determinism surface.

use dpm_sim::prelude::Recorder;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::error::ServeError;
use crate::metrics::{self, ServerMetrics};
use crate::protocol::{decode_request, encode_response, QueryKind, Request, Response};
use crate::session::Session;

/// Server-wide switches.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Feed every session's stream through an incremental auditor and
    /// kill sessions whose stream breaks an invariant.
    pub audit: bool,
}

/// The session host: registry, root telemetry, shutdown latch.
pub struct Server {
    config: ServerConfig,
    root: Recorder,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    /// Retirements per session name, for incarnation-suffixed absorb
    /// scopes: a reused name must not merge two runs' streams into one
    /// scope, or the aggregate trace stops being a set of single-run
    /// streams and fails its own audit.
    retired: Mutex<HashMap<String, u64>>,
    shutdown: AtomicBool,
    any_killed: AtomicBool,
}

/// A poisoned registry or session mutex only means a peer thread
/// panicked mid-request; the data is still coherent, so serving
/// continues (the same policy as the telemetry recorder).
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// A server with no sessions and an enabled root recorder.
    pub fn new(config: ServerConfig) -> Self {
        Self {
            config,
            root: Recorder::enabled("serve"),
            sessions: Mutex::new(HashMap::new()),
            retired: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            any_killed: AtomicBool::new(false),
        }
    }

    /// Whether any session was killed by the auditor over the server's
    /// lifetime — the stdio exit-code signal.
    pub fn any_killed(&self) -> bool {
        self.any_killed.load(Ordering::SeqCst)
    }

    /// The root trace (absorbed sessions + census counters) as JSONL.
    pub fn trace_jsonl(&self) -> String {
        self.root.to_jsonl()
    }

    /// Snapshot the metrics plane as Prometheus-style text exposition.
    ///
    /// Lock discipline: the registry lock is held only long enough to
    /// clone the session handles; sessions are then locked **one at a
    /// time, in name order**, never while holding the registry — the
    /// same registry-then-single-session order every request path uses,
    /// so a scrape can never deadlock against concurrent session
    /// traffic.
    pub fn metrics_text(&self) -> String {
        let mut handles: Vec<(String, Arc<Mutex<Session>>)> = relock(&self.sessions)
            .iter()
            .map(|(name, cell)| (name.clone(), Arc::clone(cell)))
            .collect();
        handles.sort_by(|a, b| a.0.cmp(&b.0));
        let sessions = handles
            .iter()
            .map(|(_, cell)| relock(cell).metrics())
            .collect();
        metrics::render(&ServerMetrics {
            requests: self.root.counter("serve.requests"),
            sessions_opened: self.root.counter("serve.sessions_opened"),
            sessions_closed: self.root.counter("serve.sessions_closed"),
            sessions_killed: self.root.counter("serve.sessions_killed"),
            sessions_open: handles.len() as u64,
            sessions,
        })
    }

    fn session(&self, name: &str) -> Result<Arc<Mutex<Session>>, ServeError> {
        relock(&self.sessions)
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownSession(name.to_string()))
    }

    /// Remove a session from the registry and absorb its trace into the
    /// root under `serve/<name>` — or `serve/<name>@<n>` when the name
    /// has been retired before, so every absorbed scope holds exactly
    /// one run's stream and the aggregate stays auditable.
    fn retire(&self, name: &str, session: &Session, killed: bool) {
        relock(&self.sessions).remove(name);
        let incarnation = {
            let mut retired = relock(&self.retired);
            let n = retired.entry(name.to_string()).or_insert(0);
            *n += 1;
            *n
        };
        let scope = if incarnation == 1 {
            format!("serve/{name}")
        } else {
            format!("serve/{name}@{incarnation}")
        };
        self.root.absorb(&scope, session.recorder());
        if killed {
            self.root.incr("serve.sessions_killed", 1);
            self.any_killed.store(true, Ordering::SeqCst);
        } else {
            self.root.incr("serve.sessions_closed", 1);
        }
    }

    /// Map one request to one response. Never panics; failures become
    /// [`Response::Error`].
    pub fn handle(&self, req: &Request) -> Response {
        self.root.incr("serve.requests", 1);
        match req {
            Request::Open { session, spec } => {
                if relock(&self.sessions).contains_key(session) {
                    return Response::error(&ServeError::DuplicateSession(session.clone()));
                }
                match Session::open(session, spec, self.config.audit) {
                    Ok(s) => {
                        let total_slots = s.total_slots();
                        let tau_s = s.tau_s();
                        let telemetry = s.gauge_telemetry();
                        // Re-check under the lock: a racing open of the
                        // same name keeps the first registration.
                        let mut registry = relock(&self.sessions);
                        if registry.contains_key(session) {
                            return Response::error(&ServeError::DuplicateSession(session.clone()));
                        }
                        registry.insert(session.clone(), Arc::new(Mutex::new(s)));
                        drop(registry);
                        self.root.incr("serve.sessions_opened", 1);
                        Response::Opened {
                            session: session.clone(),
                            total_slots,
                            tau_s,
                            telemetry,
                        }
                    }
                    Err(e) => Response::error(&e),
                }
            }
            Request::Advance { session, slots } => match self.session(session) {
                Ok(cell) => {
                    let mut s = relock(&cell);
                    match s.advance(*slots) {
                        Ok(out) if out.violations.is_empty() => Response::Advanced {
                            session: session.clone(),
                            slot: out.slot,
                            done: out.done,
                            telemetry: out.telemetry,
                            violations: out.violations,
                        },
                        Ok(out) => {
                            self.retire(session, &s, true);
                            Response::Killed {
                                session: session.clone(),
                                violations: out.violations,
                            }
                        }
                        Err(e) => Response::error(&e),
                    }
                }
                Err(e) => Response::error(&e),
            },
            Request::SetRates { session, rates } => match self.session(session) {
                Ok(cell) => match relock(&cell).set_rates(rates.clone()) {
                    Ok(()) => Response::RatesSet {
                        session: session.clone(),
                    },
                    Err(e) => Response::error(&e),
                },
                Err(e) => Response::error(&e),
            },
            Request::Disturb {
                session,
                at_s,
                disturbance,
            } => match self.session(session) {
                Ok(cell) => {
                    relock(&cell).disturb(*at_s, *disturbance);
                    Response::Disturbed {
                        session: session.clone(),
                    }
                }
                Err(e) => Response::error(&e),
            },
            Request::Query { session, what } => match self.session(session) {
                Ok(cell) => {
                    let s = relock(&cell);
                    match what {
                        QueryKind::Plan => {
                            let (slot, workers, freq_mhz, backlog) = s.plan();
                            Response::Plan {
                                session: session.clone(),
                                slot,
                                workers,
                                freq_mhz,
                                backlog,
                            }
                        }
                        QueryKind::Battery => {
                            let (level_j, c_min_j, c_max_j, forecast_j) = s.battery();
                            Response::Battery {
                                session: session.clone(),
                                level_j,
                                c_min_j,
                                c_max_j,
                                forecast_j,
                            }
                        }
                        QueryKind::Degradation => {
                            let (degradations, shed_level, fallback_engaged) = s.degradation();
                            Response::Degradation {
                                session: session.clone(),
                                degradations,
                                shed_level: shed_level as u64,
                                fallback_engaged,
                            }
                        }
                    }
                }
                Err(e) => Response::error(&e),
            },
            Request::InjectLine { session, line } => match self.session(session) {
                Ok(cell) => {
                    let mut s = relock(&cell);
                    match s.inject(line) {
                        Ok(fresh) if fresh.is_empty() => Response::Injected {
                            session: session.clone(),
                        },
                        Ok(fresh) => {
                            self.retire(session, &s, true);
                            Response::Killed {
                                session: session.clone(),
                                violations: fresh,
                            }
                        }
                        Err(e) => Response::error(&e),
                    }
                }
                Err(e) => Response::error(&e),
            },
            Request::Close { session } => match self.session(session) {
                Ok(cell) => {
                    let mut s = relock(&cell);
                    let out = s.close();
                    self.retire(session, &s, false);
                    Response::Closed {
                        session: session.clone(),
                        audit_ok: out.audit_ok,
                        violations: out.violations,
                        checks: out.checks,
                        jobs_done: out.jobs_done,
                        undersupplied_j: out.undersupplied_j,
                        trace: out.trace,
                    }
                }
                Err(e) => Response::error(&e),
            },
            Request::Metrics => Response::Metrics {
                text: self.metrics_text(),
            },
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
        }
    }

    /// Serve NDJSON request/response over arbitrary reader/writer pairs
    /// — the `--stdio` mode, and the deterministic harness for tests.
    /// Returns the process exit code: 0 clean, 1 when any session was
    /// killed by the auditor or the transport failed.
    pub fn run_stdio<R: BufRead, W: Write>(&self, reader: R, mut writer: W) -> i32 {
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("dpm-serve: stdin read failed: {e}");
                    return 1;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let resp = match decode_request(&line) {
                Ok(req) => self.handle(&req),
                Err(e) => Response::error(&e),
            };
            let stop = matches!(resp, Response::ShuttingDown);
            if let Err(e) = writeln!(writer, "{}", encode_response(&resp)) {
                eprintln!("dpm-serve: write failed: {e}");
                return 1;
            }
            if stop {
                break;
            }
        }
        let _ = writer.flush();
        i32::from(self.any_killed())
    }

    /// One TCP connection: NDJSON request/response until EOF or
    /// shutdown. `addr` is the listener's own address, used to unblock
    /// the accept loop when this connection requests shutdown.
    fn serve_conn(&self, stream: TcpStream, addr: SocketAddr) {
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(e) => {
                eprintln!("dpm-serve: connection clone failed: {e}");
                return;
            }
        };
        let mut writer = stream;
        for line in reader.lines() {
            let Ok(line) = line else { return };
            if line.trim().is_empty() {
                continue;
            }
            let resp = match decode_request(&line) {
                Ok(req) => self.handle(&req),
                Err(e) => Response::error(&e),
            };
            let stop = matches!(resp, Response::ShuttingDown);
            if writeln!(writer, "{}", encode_response(&resp)).is_err() {
                return;
            }
            let _ = writer.flush();
            if stop {
                // Unblock the accept loop so the server can exit.
                let _ = TcpStream::connect(addr);
                return;
            }
        }
    }

    /// Accept connections until a client sends `Shutdown`, serving each
    /// on its own scoped thread.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the listener's address cannot be read or
    /// a connection thread panicked.
    pub fn serve_tcp(&self, listener: TcpListener) -> Result<(), ServeError> {
        let addr = listener.local_addr()?;
        let outcome = crossbeam::scope(|scope| {
            for stream in listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        scope.spawn(move |_| self.serve_conn(stream, addr));
                    }
                    Err(e) => {
                        eprintln!("dpm-serve: accept failed: {e}");
                    }
                }
            }
        });
        outcome.map_err(|_| ServeError::Io("a connection thread panicked".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SessionSpec;
    use std::io::Cursor;

    fn open_req(name: &str) -> Request {
        Request::Open {
            session: name.to_string(),
            spec: SessionSpec::plain("scenario-1", "proposed+safe", 1),
        }
    }

    #[test]
    fn server_and_session_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Server>();
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
    }

    #[test]
    fn the_full_session_lifecycle_works_through_handle() {
        let server = Server::new(ServerConfig { audit: true });
        let Response::Opened { total_slots, .. } = server.handle(&open_req("a")) else {
            panic!("open failed");
        };
        let Response::Advanced { done, .. } = server.handle(&Request::Advance {
            session: "a".into(),
            slots: total_slots,
        }) else {
            panic!("advance failed");
        };
        assert!(done);
        let Response::Closed {
            audit_ok, trace, ..
        } = server.handle(&Request::Close {
            session: "a".into(),
        })
        else {
            panic!("close failed");
        };
        assert!(audit_ok);
        assert!(trace.first().is_some_and(|l| l.contains("Meta")));
        assert!(!server.any_killed());
    }

    #[test]
    fn a_reused_session_name_keeps_the_aggregate_trace_auditable() {
        use dpm_trace::{audit, AuditConfig, Trace};
        let server = Server::new(ServerConfig { audit: true });
        for _ in 0..3 {
            let Response::Opened { total_slots, .. } = server.handle(&open_req("a")) else {
                panic!("open failed");
            };
            assert!(matches!(
                server.handle(&Request::Advance {
                    session: "a".into(),
                    slots: total_slots,
                }),
                Response::Advanced { .. }
            ));
            assert!(matches!(
                server.handle(&Request::Close {
                    session: "a".into(),
                }),
                Response::Closed { .. }
            ));
        }
        let doc = server.trace_jsonl();
        // Each incarnation landed in its own scope...
        for scope in ["serve/a/", "serve/a@2/", "serve/a@3/"] {
            assert!(doc.contains(scope), "missing scope {scope}");
        }
        // ...so every scope is a single run's stream and the aggregate
        // passes the same audit a batch trace would.
        let trace = Trace::parse(&doc).expect("aggregate parses");
        let report = audit(&trace, &AuditConfig::default());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn duplicate_opens_and_unknown_sessions_are_refused() {
        let server = Server::new(ServerConfig::default());
        assert!(matches!(
            server.handle(&open_req("a")),
            Response::Opened { .. }
        ));
        assert!(matches!(
            server.handle(&open_req("a")),
            Response::Error { .. }
        ));
        let resp = server.handle(&Request::Advance {
            session: "ghost".into(),
            slots: 1,
        });
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn corrupt_injection_kills_the_session_and_sets_the_exit_signal() {
        let server = Server::new(ServerConfig { audit: true });
        assert!(matches!(
            server.handle(&open_req("a")),
            Response::Opened { .. }
        ));
        assert!(matches!(
            server.handle(&Request::Advance {
                session: "a".into(),
                slots: 2
            }),
            Response::Advanced { .. }
        ));
        let bad = "{\"Event\":{\"seq\":0,\"scope\":\"\",\"name\":\"inject.corrupt\",\
                   \"slot\":null,\"time\":0.0,\"fields\":[],\"detail\":null}}";
        let resp = server.handle(&Request::InjectLine {
            session: "a".into(),
            line: bad.to_string(),
        });
        assert!(matches!(resp, Response::Killed { .. }), "{resp:?}");
        assert!(server.any_killed());
        // The killed session is gone.
        let resp = server.handle(&Request::Advance {
            session: "a".into(),
            slots: 1,
        });
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn metrics_snapshots_validate_and_track_the_registry() {
        let server = Server::new(ServerConfig { audit: true });
        // An empty server scrapes clean.
        let text = server.metrics_text();
        crate::metrics::validate(&text).expect("empty snapshot validates");
        assert_eq!(
            crate::metrics::sample(&text, "dpm_serve_sessions_open", &[]),
            Some(0.0)
        );

        for name in ["b", "a"] {
            assert!(matches!(
                server.handle(&open_req(name)),
                Response::Opened { .. }
            ));
            assert!(matches!(
                server.handle(&Request::Advance {
                    session: name.into(),
                    slots: 6,
                }),
                Response::Advanced { .. }
            ));
        }
        let Response::Metrics { text } = server.handle(&Request::Metrics) else {
            panic!("metrics failed");
        };
        crate::metrics::validate(&text).expect("snapshot validates");
        assert_eq!(
            crate::metrics::sample(&text, "dpm_serve_sessions_open", &[]),
            Some(2.0)
        );
        for name in ["a", "b"] {
            assert_eq!(
                crate::metrics::sample(
                    &text,
                    "dpm_session_slots_stepped_total",
                    &[("session", name)]
                ),
                Some(6.0),
                "{name}"
            );
        }
        // Sessions render in name order regardless of registry order.
        let a_pos = text.find("session=\"a\"").expect("a row");
        let b_pos = text.find("session=\"b\"").expect("b row");
        assert!(a_pos < b_pos);
        // Battery slack quantiles exist and are ordered.
        let slack = |q: &str| {
            crate::metrics::sample(
                &text,
                "dpm_session_battery_slack_joules",
                &[("session", "a"), ("quantile", q)],
            )
            .expect("slack quantile")
        };
        assert!(slack("0.1") <= slack("0.5") && slack("0.5") <= slack("0.9"));

        // A scrape mutates nothing: back-to-back snapshots are
        // byte-identical (modulo the request counter the first scrape
        // itself bumped — compare via metrics_text, which doesn't count).
        assert_eq!(server.metrics_text(), server.metrics_text());

        assert!(matches!(
            server.handle(&Request::Close {
                session: "a".into()
            }),
            Response::Closed { .. }
        ));
        let text = server.metrics_text();
        assert_eq!(
            crate::metrics::sample(&text, "dpm_serve_sessions_open", &[]),
            Some(1.0)
        );
        assert_eq!(
            crate::metrics::sample(&text, "dpm_serve_sessions_closed_total", &[]),
            Some(1.0)
        );
        assert!(!text.contains("session=\"a\""), "closed sessions drop out");
    }

    #[test]
    fn stdio_scripts_produce_one_response_per_request() {
        let server = Server::new(ServerConfig { audit: true });
        let script = [
            encode_request_line(&open_req("s0")),
            encode_request_line(&Request::Advance {
                session: "s0".into(),
                slots: 3,
            }),
            encode_request_line(&Request::Query {
                session: "s0".into(),
                what: QueryKind::Battery,
            }),
            encode_request_line(&Request::Close {
                session: "s0".into(),
            }),
            "\"Shutdown\"".to_string(),
        ]
        .join("\n");
        let mut out = Vec::new();
        let code = server.run_stdio(Cursor::new(script), &mut out);
        assert_eq!(code, 0);
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.lines().count(), 5);
        assert!(text
            .lines()
            .last()
            .is_some_and(|l| l.contains("ShuttingDown")));
    }

    fn encode_request_line(req: &Request) -> String {
        serde_json::to_string(req).expect("encode request")
    }
}
