//! Power models: Eq. 4–6, extended with the PAMA mode powers.
//!
//! The paper's dynamic-power law is `Power ∝ f·v²` per processor (Eq. 4),
//! summed over active processors (Eq. 5), giving `c2·n·f·v²` for the
//! homogeneous case (Eq. 6). The evaluation platform additionally has a
//! *standby* floor (6.6 mW/chip: only the interrupt monitor runs) and a
//! *sleep* mode (393 mW: DRAM retained); inactive processors sit in standby
//! during the simulations ("the sleep mode is not used"), so total board
//! power is
//!
//! ```text
//! P(n, f, v) = n · (c2·f·v² + P_leak) + (N − n) · P_standby
//! ```
//!
//! where `P_leak` is the frequency-independent share of active power. We
//! calibrate `c2` and `P_leak` from the M32R/D datasheet point the paper
//! quotes: 546 mW typical in active mode at 80 MHz / 3.3 V.

use crate::error::DpmError;
use crate::units::{watts, Hertz, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Power drawn in each processor mode (datasheet constants).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModePower {
    /// Full-circuit active power at the calibration point.
    pub active: Watts,
    /// Sleep mode: only on-chip memory refreshed.
    pub sleep: Watts,
    /// Standby mode: everything stopped but the interrupt monitor.
    pub standby: Watts,
}

impl ModePower {
    /// The M32R/D numbers quoted in §5.
    pub const M32RD: Self = Self {
        active: Watts(0.546),
        sleep: Watts(0.393),
        standby: Watts(0.0066),
    };
}

/// Eq. 5/6 power model with a standby floor for inactive processors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Switching-capacitance constant `c2` (W per Hz·V²).
    pub c2: f64,
    /// Frequency-independent active power per chip (leakage, I/O, DRAM
    /// refresh while active). Zero in the paper's idealized Eq. 6; non-zero
    /// when calibrated against the real datasheet floor.
    pub active_floor: Watts,
    /// Per-chip mode powers.
    pub modes: ModePower,
    /// Total processors on the board (active + inactive), `N`.
    pub total_processors: usize,
}

impl PowerModel {
    /// Pure Eq. 6 model: `P = c2·n·f·v²`, no floors, inactive chips draw
    /// nothing. Used by the analytic §4.2 derivations and their tests.
    pub fn ideal(c2: f64, total_processors: usize) -> Self {
        Self {
            c2,
            active_floor: Watts::ZERO,
            modes: ModePower {
                active: Watts::ZERO,
                sleep: Watts::ZERO,
                standby: Watts::ZERO,
            },
            total_processors,
        }
    }

    /// Calibrate `c2` so that one chip at `(f_cal, v_cal)` draws exactly
    /// `modes.active`, splitting `floor_fraction` of that draw into the
    /// frequency-independent floor.
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] unless `0 ≤ floor_fraction < 1` and
    /// the calibration point is positive.
    pub fn calibrated(
        modes: ModePower,
        f_cal: Hertz,
        v_cal: Volts,
        floor_fraction: f64,
        total_processors: usize,
    ) -> Result<Self, DpmError> {
        if !(0.0..1.0).contains(&floor_fraction) {
            return Err(DpmError::InvalidParameter {
                name: "floor_fraction",
                reason: format!("must lie in [0, 1), got {floor_fraction}"),
            });
        }
        if !(f_cal.value() > 0.0) || !(v_cal.value() > 0.0) {
            return Err(DpmError::InvalidParameter {
                name: "calibration point",
                reason: format!("needs positive f and v, got ({f_cal}, {v_cal})"),
            });
        }
        Ok(Self::calibrated_unchecked(
            modes,
            f_cal,
            v_cal,
            floor_fraction,
            total_processors,
        ))
    }

    /// The calibration arithmetic without the input checks, for constructing
    /// platforms from compile-time constants (e.g. [`crate::platform::Platform::pama`]).
    pub(crate) fn calibrated_unchecked(
        modes: ModePower,
        f_cal: Hertz,
        v_cal: Volts,
        floor_fraction: f64,
        total_processors: usize,
    ) -> Self {
        debug_assert!((0.0..1.0).contains(&floor_fraction));
        debug_assert!(f_cal.value() > 0.0 && v_cal.value() > 0.0);
        let dynamic = modes.active.value() * (1.0 - floor_fraction);
        let c2 = dynamic / (f_cal.value() * v_cal.value() * v_cal.value());
        Self {
            c2,
            active_floor: watts(modes.active.value() * floor_fraction),
            modes,
            total_processors,
        }
    }

    /// Dynamic power of one active chip at `(f, v)`: `c2·f·v² + floor`
    /// (Eq. 4 plus the calibrated floor).
    pub fn chip_active_power(&self, f: Hertz, v: Volts) -> Watts {
        watts(self.c2 * f.value() * v.value() * v.value()) + self.active_floor
    }

    /// Eq. 6 board power: `n` chips active at a common `(f, v)`, the
    /// remaining `N − n` in standby. Asking for more chips than the board
    /// has is a scheduler bug (`debug_assert!`); release builds clamp `n`
    /// to the processor count.
    pub fn board_power(&self, n: usize, f: Hertz, v: Volts) -> Watts {
        debug_assert!(
            n <= self.total_processors,
            "cannot activate {n} of {} processors",
            self.total_processors
        );
        let n = n.min(self.total_processors);
        let idle = (self.total_processors - n) as f64 * self.modes.standby.value();
        watts(n as f64 * self.chip_active_power(f, v).value() + idle)
    }

    /// Eq. 5 heterogeneous board power: per-chip `(fᵢ, vᵢ)` pairs; a chip
    /// with `f = 0` is counted as standby. Chips beyond the supplied list
    /// (up to `N`) are standby too; a list longer than the board clamps,
    /// like [`PowerModel::board_power`].
    pub fn board_power_hetero(&self, points: &[(Hertz, Volts)]) -> Watts {
        debug_assert!(points.len() <= self.total_processors);
        let mut total = 0.0;
        let mut active = 0usize;
        for &(f, v) in points {
            if f.value() > 0.0 {
                total += self.chip_active_power(f, v).value();
                active += 1;
            }
        }
        let standby = self.total_processors.saturating_sub(active);
        watts(total + standby as f64 * self.modes.standby.value())
    }

    /// Power with every chip in standby (the "system off" floor the static
    /// baseline pays while idle).
    pub fn all_standby(&self) -> Watts {
        watts(self.total_processors as f64 * self.modes.standby.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{volts, Hertz};

    fn pama_model() -> PowerModel {
        PowerModel::calibrated(ModePower::M32RD, Hertz::from_mhz(80.0), volts(3.3), 0.0, 8).unwrap()
    }

    #[test]
    fn calibration_point_reproduces_active_power() {
        let m = pama_model();
        let p = m.chip_active_power(Hertz::from_mhz(80.0), volts(3.3));
        assert!((p.value() - 0.546).abs() < 1e-12);
    }

    #[test]
    fn power_scales_linearly_with_frequency() {
        let m = pama_model();
        let p80 = m.chip_active_power(Hertz::from_mhz(80.0), volts(3.3));
        let p20 = m.chip_active_power(Hertz::from_mhz(20.0), volts(3.3));
        assert!((p80.value() / p20.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn power_scales_quadratically_with_voltage() {
        let m = PowerModel::ideal(1e-9, 4);
        let p2 = m.chip_active_power(Hertz::from_mhz(10.0), volts(2.0));
        let p1 = m.chip_active_power(Hertz::from_mhz(10.0), volts(1.0));
        assert!((p2.value() / p1.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn board_power_adds_standby_floor() {
        let m = pama_model();
        let p = m.board_power(3, Hertz::from_mhz(40.0), volts(3.3));
        let expected = 3.0 * 0.546 / 2.0 + 5.0 * 0.0066;
        assert!((p.value() - expected).abs() < 1e-9, "{p}");
    }

    #[test]
    fn zero_active_is_all_standby() {
        let m = pama_model();
        assert!(m
            .board_power(0, Hertz::ZERO, volts(3.3))
            .approx_eq(m.all_standby(), 1e-12));
        assert!((m.all_standby().value() - 8.0 * 0.0066).abs() < 1e-12);
    }

    #[test]
    fn hetero_matches_homogeneous_when_uniform() {
        let m = pama_model();
        let pts = vec![(Hertz::from_mhz(40.0), volts(3.3)); 5];
        let hetero = m.board_power_hetero(&pts);
        let homo = m.board_power(5, Hertz::from_mhz(40.0), volts(3.3));
        assert!(hetero.approx_eq(homo, 1e-12));
    }

    #[test]
    fn hetero_counts_zero_frequency_as_standby() {
        let m = pama_model();
        let pts = vec![
            (Hertz::from_mhz(80.0), volts(3.3)),
            (Hertz::ZERO, volts(3.3)),
        ];
        let p = m.board_power_hetero(&pts);
        let expected = 0.546 + 7.0 * 0.0066;
        assert!((p.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn floor_fraction_splits_active_power() {
        let m =
            PowerModel::calibrated(ModePower::M32RD, Hertz::from_mhz(80.0), volts(3.3), 0.25, 8)
                .unwrap();
        // At the calibration point, total is still 546 mW...
        let p = m.chip_active_power(Hertz::from_mhz(80.0), volts(3.3));
        assert!((p.value() - 0.546).abs() < 1e-12);
        // ...but at zero frequency the floor remains.
        let p0 = m.chip_active_power(Hertz::ZERO, volts(3.3));
        assert!((p0.value() - 0.25 * 0.546).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot activate")]
    fn board_power_rejects_too_many_processors() {
        pama_model().board_power(9, Hertz::from_mhz(20.0), volts(3.3));
    }

    #[test]
    fn calibration_rejects_bad_inputs() {
        assert!(matches!(
            PowerModel::calibrated(ModePower::M32RD, Hertz::from_mhz(80.0), volts(3.3), 1.5, 8),
            Err(DpmError::InvalidParameter { .. })
        ));
        assert!(matches!(
            PowerModel::calibrated(ModePower::M32RD, Hertz::ZERO, volts(3.3), 0.0, 8),
            Err(DpmError::InvalidParameter { .. })
        ));
    }
}
