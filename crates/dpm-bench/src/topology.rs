//! Topology-governance campaigns: flat vs broker power trees under
//! provider faults.
//!
//! The `campaign --topology` mode is a thin shell over this module.
//! Every point runs the *same* safety-wrapped proposed governor through
//! scenario I with a seeded provider-targeting fault plan
//! ([`FaultPlanConfig::topology`]); the only difference between the two
//! arms is how the power tree is managed:
//!
//! - **flat** — the strawman: topology-blind positional activation. A
//!   provider fault takes only the provider dark; its dependents stay
//!   powered, draw active energy, and deliver nothing. The emitted
//!   `broker.level` stream is deliberately illegal, so
//!   `dpm-analyze audit` flags the arm's trace.
//! - **broker** — the dependency-aware broker of `dpm-broker`: ordered
//!   revocations (leaves first), provider-fault cascades to a legal
//!   degraded configuration, bounded restore retries, and an orderly
//!   terminal shutdown if the governor's fallback budget ever exhausts.
//!
//! The CSV carries the survival metrics plus the broker action census
//! (revocations, restores, cascades, terminal shutdowns, retries,
//! abandoned restores) so one matrix answers "what does topology
//! awareness buy under provider faults?". Same determinism contract as
//! [`crate::campaign`]: byte-identical CSV and telemetry for any worker
//! count.

use crate::campaign::sanitize;
use crate::experiments::AllocCache;
use crate::runner::{self, RunStats};
use dpm_core::platform::Platform;
use dpm_core::runtime::{DpmController, SafetyConfig, SafetyGovernor};
use dpm_core::units::seconds;
use dpm_sim::prelude::*;
use dpm_telemetry::Recorder;
use dpm_workloads::{faults, scenarios, FaultPlanConfig, Scenario};
use std::fmt::Write as _;
use std::sync::Arc;

/// The topology arms of the matrix, in output order.
pub const ARM_NAMES: [&str; 2] = ["flat", "broker"];

/// One prepared topology point: everything a worker needs, read-only.
struct TopologyPoint {
    arm: &'static str,
    mode: TopologyMode,
    seed: u64,
    platform: Arc<Platform>,
    scenario: Arc<Scenario>,
    periods: usize,
}

/// The assembled result of a topology campaign run.
#[derive(Debug, Clone)]
pub struct TopologyOutcome {
    /// The CSV matrix, identical for every worker count.
    pub csv: String,
    /// Runner statistics (wall clock, per-job timings).
    pub stats: RunStats,
    /// Number of points that reported an error row.
    pub failures: usize,
}

/// Run a `seeds × arms` topology campaign on up to `jobs` worker
/// threads, simulating `periods` charging periods per point.
///
/// # Errors
/// Returns [`SimError`] only for *setup* failures; per-point failures
/// become error rows counted in [`TopologyOutcome::failures`].
pub fn run(seeds: u64, jobs: usize, periods: usize) -> Result<TopologyOutcome, SimError> {
    run_with(seeds, jobs, periods, &Recorder::disabled())
}

/// [`run`] with telemetry: each point records into its own sibling
/// recorder — `broker.*` element/edge declarations, level transitions,
/// cascades, and shutdown events alongside the usual `sim.*` and
/// `safety.*` streams — absorbed into `telemetry` in point order as
/// `topology/{arm}/{seed}`, byte-identical for any worker count.
///
/// # Errors
/// Same contract as [`run`].
pub fn run_with(
    seeds: u64,
    jobs: usize,
    periods: usize,
    telemetry: &Recorder,
) -> Result<TopologyOutcome, SimError> {
    run_filtered(seeds, jobs, periods, None, telemetry)
}

/// [`run_with`] restricted to one arm when `arm` is `Some` — CI audits a
/// broker-only trace this way (the flat arm's trace is *meant* to fail
/// the topology-legality audit, so it only appears in matrices the
/// acceptance test checks, never in a must-be-green audit).
///
/// # Errors
/// Same contract as [`run`]; an unknown `arm` name yields an empty
/// matrix rather than an error (the CSV still carries its header).
pub fn run_filtered(
    seeds: u64,
    jobs: usize,
    periods: usize,
    arm: Option<&str>,
    telemetry: &Recorder,
) -> Result<TopologyOutcome, SimError> {
    let platform = Arc::new(Platform::pama());
    let scenario = Arc::new(scenarios::scenario_one());
    let mut points = Vec::with_capacity(seeds as usize * ARM_NAMES.len());
    for seed in 1..=seeds {
        for (name, mode) in ARM_NAMES
            .iter()
            .zip([TopologyMode::Flat, TopologyMode::Broker])
        {
            if arm.is_some_and(|a| a != *name) {
                continue;
            }
            points.push(TopologyPoint {
                arm: name,
                mode,
                seed,
                platform: Arc::clone(&platform),
                scenario: Arc::clone(&scenario),
                periods,
            });
        }
    }

    let cache = AllocCache::new();
    let siblings: Vec<Recorder> = points.iter().map(|_| telemetry.sibling()).collect();
    let (results, stats) = runner::run_indexed(&points, jobs, |i, p| {
        run_point_with(p, &cache, &siblings[i])
    });
    for (point, sibling) in points.iter().zip(&siblings) {
        telemetry.absorb(&format!("topology/{}/{}", point.arm, point.seed), sibling);
    }
    stats.record_into(telemetry, "topology");

    let mut csv = String::from(
        "scenario,seed,arm,survived,deepest_j,below_guard_s,missed,jobs_done,\
         revocations,restores,cascades,terminal_shutdowns,retries,abandoned\n",
    );
    let mut failures = 0usize;
    for (point, slot) in points.iter().zip(results) {
        let outcome = match slot {
            Ok(r) => r,
            Err(panic) => Err(SimError::WorkerPanic(panic.to_string())),
        };
        match outcome {
            Ok((s, b)) => {
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{:.4},{:.1},{},{},{},{},{},{},{},{}",
                    point.scenario.name,
                    point.seed,
                    point.arm,
                    u8::from(s.survived),
                    s.deepest_charge,
                    s.time_below_guard,
                    s.missed_events,
                    s.jobs_done,
                    b.revocations,
                    b.restores,
                    b.cascades,
                    b.terminal_shutdowns,
                    b.retries,
                    b.abandoned,
                );
            }
            Err(e) => {
                failures += 1;
                let _ = writeln!(
                    csv,
                    "{},{},{},error,{},,,,,,,,,",
                    point.scenario.name,
                    point.seed,
                    point.arm,
                    sanitize(&e.to_string()),
                );
            }
        }
    }

    Ok(TopologyOutcome {
        csv,
        stats,
        failures,
    })
}

/// Run one arm against one seeded provider-fault plan. Both arms use the
/// identical safety-wrapped proposed governor so the matrix isolates the
/// topology policy.
fn run_point_with(
    point: &TopologyPoint,
    cache: &AllocCache,
    telemetry: &Recorder,
) -> Result<(SurvivalReport, BrokerStats), SimError> {
    let platform = point.platform.as_ref();
    let scenario = point.scenario.as_ref();
    let slots = scenario.charging.len();
    let horizon = seconds(point.periods as f64 * slots as f64 * platform.tau.value());
    let plan = faults::generate(point.seed, &FaultPlanConfig::topology(horizon));

    let mut sim = Simulation::new(
        Arc::clone(&point.platform),
        Box::new(TraceSource::new(scenario.charging.clone())),
        Box::new(ScheduleGenerator::new(scenario.event_rates(platform))),
        scenario.initial_charge,
        SimConfig {
            periods: point.periods,
            slots_per_period: slots,
            substeps: 8,
            trace: true,
        },
    )?;
    plan.schedule(&mut sim);
    let sim = sim
        .with_telemetry(telemetry.clone())
        .with_topology(point.mode)?;

    let safety = SafetyConfig::default_for(platform);
    let c_min = platform.battery.c_min.value();
    let guard = safety.guard_band.value();

    let alloc = cache.allocation(platform, scenario)?;
    let (shared, pareto) = cache.pareto(platform)?;
    let inner = DpmController::with_table(
        shared,
        &alloc,
        scenario.charging.clone(),
        Arc::clone(&pareto),
    )?
    .without_trace()
    .with_telemetry(telemetry.clone());
    let mut governor = SafetyGovernor::with_table(inner, platform, safety, pareto)?
        .with_telemetry(telemetry.clone());
    let report = sim.run(&mut governor)?;
    let degradations = governor.degradation_count();
    let broker = report.broker.clone().unwrap_or_else(|| BrokerStats {
        mode: point.mode.as_str().to_string(),
        ..BrokerStats::default()
    });
    Ok((
        SurvivalReport::from_report(&report, c_min, guard, degradations),
        broker,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matrix_is_byte_identical_across_worker_counts() {
        let serial = run(2, 1, 1).unwrap();
        let parallel = run(2, 4, 1).unwrap();
        assert_eq!(serial.csv, parallel.csv);
        assert_eq!(serial.failures, parallel.failures);
    }

    #[test]
    fn matrix_covers_both_arms_and_counts_broker_actions() {
        let out = run(2, 2, 2).unwrap();
        let lines: Vec<&str> = out.csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * ARM_NAMES.len(), "{}", out.csv);
        assert!(lines[0].starts_with("scenario,seed,arm,survived"));
        assert_eq!(out.failures, 0, "{}", out.csv);
        // The topology plan targets providers, so the broker arm must
        // record at least one cascade across the seeds.
        let cascades: u64 = out
            .csv
            .lines()
            .filter(|l| l.contains(",broker,"))
            .filter_map(|l| l.split(',').nth(10))
            .filter_map(|v| v.parse::<u64>().ok())
            .sum();
        assert!(cascades > 0, "{}", out.csv);
    }
}
