//! The incremental-audit equivalence gate: feeding a real trace through
//! [`AuditState`] line by line — in *any* chunking — must produce
//! exactly the whole-file [`audit`] verdict, on clean traces and on
//! traces that genuinely violate invariants (the topology campaign's
//! flat arm). Plus the latency half of the contract: a corrupted stream
//! is flagged by the push of the offending line, not at finish.

use dpm_bench::{campaign, topology};
use dpm_telemetry::{parse_trace_jsonl, Recorder, TraceLine};
use dpm_trace::{audit, AuditConfig, AuditState, Trace};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One campaign trace (all four governor arms under seeded faults) and
/// one topology trace (whose flat arm genuinely fails the audit),
/// generated once and shared across proptest cases.
fn corpus() -> &'static [String] {
    static CORPUS: OnceLock<Vec<String>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut docs = Vec::new();
        let rec = Recorder::enabled("campaign");
        campaign::run_with(2, 1, 1, &rec).expect("campaign runs");
        docs.push(rec.to_jsonl());
        let rec = Recorder::enabled("topology");
        topology::run_with(1, 1, 1, &rec).expect("topology runs");
        docs.push(rec.to_jsonl());
        docs
    })
}

/// Replay `lines` into a fresh auditor in chunks drawn from `chunks`
/// (cycled), returning the canonical end-of-stream report.
fn replay_chunked(lines: &[TraceLine], chunks: &[usize]) -> dpm_trace::AuditReport {
    let mut state = AuditState::new(AuditConfig::default());
    let mut i = 0;
    let mut c = 0;
    while i < lines.len() {
        let take = chunks.get(c % chunks.len()).copied().unwrap_or(1).max(1);
        for line in lines.iter().skip(i).take(take) {
            let _ = state.push(line);
        }
        i += take;
        c += 1;
    }
    state.finish()
}

proptest! {
    /// Chunking invariance over real traces: any split of the stream
    /// yields the whole-file verdict — violations, notes, and check
    /// accounting included. The corpus covers a clean campaign trace
    /// and a topology trace whose flat arm carries real violations.
    #[test]
    fn incremental_audit_equals_batch_audit_for_any_chunking(
        chunks in prop::collection::vec(1usize..97, 1..24),
        doc_index in 0usize..2,
    ) {
        let doc = &corpus()[doc_index];
        let trace = Trace::parse(doc).expect("corpus parses");
        let batch = audit(&trace, &AuditConfig::default());
        let lines = parse_trace_jsonl(doc).expect("corpus lines parse");
        let incremental = replay_chunked(&lines, &chunks);
        prop_assert_eq!(incremental, batch);
    }
}

#[test]
fn the_topology_corpus_actually_carries_violations() {
    let doc = &corpus()[1];
    let trace = Trace::parse(doc).expect("parses");
    let report = audit(&trace, &AuditConfig::default());
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.scope.starts_with("topology/flat/")),
        "the flat arm must fail the audit for the corpus to prove \
         equivalence on violating traces"
    );
}

/// A corrupted stream is flagged by the very push that carries the
/// offending line — the "within one slot" guarantee a live server
/// relies on to kill a session before it advances again.
#[test]
fn corruption_is_flagged_on_the_offending_push() {
    let doc = &corpus()[0];
    let lines = parse_trace_jsonl(doc).expect("parses");
    // Find a sim.slot event and forge an out-of-window battery level.
    let victim = lines
        .iter()
        .position(|l| matches!(l, TraceLine::Event(e) if e.name == "sim.slot"))
        .expect("campaign trace has slot events");

    let mut state = AuditState::new(AuditConfig::default());
    // Gauges first, as a live emitter streams them — the window check
    // needs sim.c_min_j/sim.c_max_j before the first event.
    for line in &lines {
        if matches!(line, TraceLine::Gauge(_)) {
            let fresh = state.push(line);
            assert!(fresh.is_empty(), "gauges alone cannot violate");
        }
    }
    for (i, line) in lines.iter().enumerate() {
        if matches!(line, TraceLine::Gauge(_)) {
            continue;
        }
        if i == victim {
            let TraceLine::Event(event) = line else {
                unreachable!("victim is an event");
            };
            let mut forged = event.clone();
            for (name, value) in &mut forged.fields {
                if name == "battery_j" {
                    *value = -1e9;
                }
            }
            let fresh = state.push(&TraceLine::Event(forged));
            assert!(
                fresh.iter().any(|v| v.invariant == "battery.window"),
                "the forged line must be flagged by its own push, got {fresh:?}"
            );
            return;
        }
        let fresh = state.push(line);
        assert!(
            fresh.is_empty(),
            "the clean prefix must not raise violations: {fresh:?}"
        );
    }
    unreachable!("victim line was never reached");
}
