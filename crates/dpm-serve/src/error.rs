//! Typed failures for the session service.

use dpm_core::error::DpmError;
use dpm_sim::prelude::SimError;
use std::fmt;

/// Everything that can go wrong serving a session, as data. Protocol
/// errors become structured `error` responses on the wire; transport
/// errors end the connection.
#[derive(Debug)]
pub enum ServeError {
    /// A request line was not valid NDJSON for the [`crate::Request`]
    /// schema.
    BadRequest(String),
    /// The request named a scenario the workload library does not ship.
    UnknownScenario(String),
    /// The request named a governor outside the four campaign arms.
    UnknownGovernor(String),
    /// The request addressed a session that is not open.
    UnknownSession(String),
    /// An `open` reused a name that is still open.
    DuplicateSession(String),
    /// The session was killed by the online auditor; the payload is the
    /// first violation.
    SessionKilled {
        /// Session name.
        session: String,
        /// Rendered first violation.
        first: String,
    },
    /// The server is shutting down and accepts no further work.
    ShuttingDown,
    /// Governor or allocator construction failed.
    Core(DpmError),
    /// The simulator rejected a configuration or step.
    Sim(SimError),
    /// Transport-level I/O failure (rendered, to stay `Send + Sync`).
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadRequest(msg) => write!(f, "bad request: {msg}"),
            Self::UnknownScenario(name) => write!(f, "unknown scenario `{name}`"),
            Self::UnknownGovernor(name) => write!(
                f,
                "unknown governor `{name}` (expected proposed, proposed+safe, static, static+safe)"
            ),
            Self::UnknownSession(name) => write!(f, "no open session named `{name}`"),
            Self::DuplicateSession(name) => write!(f, "session `{name}` is already open"),
            Self::SessionKilled { session, first } => {
                write!(f, "session `{session}` killed by the auditor: {first}")
            }
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::Core(e) => write!(f, "governor construction failed: {e}"),
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
            Self::Io(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DpmError> for ServeError {
    fn from(e: DpmError) -> Self {
        Self::Core(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}
