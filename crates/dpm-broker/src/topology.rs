//! Power-element topology: elements with discrete levels plus validated
//! dependency edges, and the deterministic dependency order every broker
//! transition follows.
//!
//! The model follows the power-broker idiom: an *element* is anything with
//! its own power state (a bus, a ring interconnect, a sensor rail, a
//! worker chip); a *dependency edge* says the child may only be powered
//! while its provider sits at or above a required level. [`Topology`]
//! validates the graph once at construction (no cycles, no self-edges,
//! requirements within provider range, floors mutually supportable) so
//! the broker's per-slot work never has to re-check structure.

use crate::error::BrokerError;
use serde::{Deserialize, Serialize};

/// One power element: a rail, bus, interconnect, sensor, or chip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementSpec {
    /// Human-readable name (lands in the `broker.element` event detail).
    pub name: String,
    /// Highest power level; levels are `0..=max_level` with 0 = unpowered.
    pub max_level: u8,
    /// Minimum legal level — the terminal-shutdown target. An element with
    /// a nonzero floor stays at the floor through shutdown unless a
    /// faulted provider makes the floor unsupportable.
    pub floor: u8,
}

/// A dependency: `child` may only be powered (level ≥ 1) while `provider`
/// sits at `min_provider_level` or above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// The dependent element.
    pub child: usize,
    /// The element it draws from.
    pub provider: usize,
    /// Provider level required for the child to be powered at all.
    pub min_provider_level: u8,
}

/// A validated dependency graph of power elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    elements: Vec<ElementSpec>,
    edges: Vec<Edge>,
    /// Providers-first order: every provider precedes all its dependents.
    order: Vec<usize>,
    /// Per-element provider list as `(provider, min_provider_level)`.
    providers: Vec<Vec<(usize, u8)>>,
}

impl Topology {
    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the topology has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The spec of element `element`, if it exists.
    #[must_use]
    pub fn spec(&self, element: usize) -> Option<&ElementSpec> {
        self.elements.get(element)
    }

    /// All dependency edges, in declaration order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Providers-first order: every provider precedes all its dependents.
    /// Iterating this order raises safely; iterating it reversed drops
    /// safely (leaves first).
    #[must_use]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The `(provider, min_provider_level)` requirements of `element`
    /// (empty for out-of-range indices).
    #[must_use]
    pub fn providers_of(&self, element: usize) -> &[(usize, u8)] {
        self.providers.get(element).map_or(&[], Vec::as_slice)
    }

    /// First dependency-legality violation in a level assignment: a
    /// powered child whose provider sits below the required level.
    /// Returns `(child, provider)` or `None` when `levels` is legal.
    /// Indices past `levels.len()` read as level 0.
    #[must_use]
    pub fn violation(&self, levels: &[u8]) -> Option<(usize, usize)> {
        let at = |e: usize| levels.get(e).copied().unwrap_or(0);
        self.edges
            .iter()
            .find(|e| at(e.child) >= 1 && at(e.provider) < e.min_provider_level)
            .map(|e| (e.child, e.provider))
    }

    /// Elements that transitively depend on `element` (excluding itself),
    /// in ascending index order.
    #[must_use]
    pub fn dependents_of(&self, element: usize) -> Vec<usize> {
        let n = self.elements.len();
        let mut reached = vec![false; n];
        if element < n {
            reached[element] = true;
        }
        // Children appear after providers in `order`, so one forward pass
        // over the dependency order reaches the full transitive closure.
        for &e in &self.order {
            if reached[e] {
                continue;
            }
            if self
                .providers_of(e)
                .iter()
                .any(|&(p, _)| reached.get(p).copied().unwrap_or(false))
            {
                reached[e] = true;
            }
        }
        (0..n).filter(|&e| e != element && reached[e]).collect()
    }
}

/// Incremental [`Topology`] constructor. Elements are numbered in the
/// order they are declared; [`build`](Self::build) validates the graph.
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    elements: Vec<ElementSpec>,
    edges: Vec<Edge>,
}

impl TopologyBuilder {
    /// Start an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an element and return its index.
    pub fn element(&mut self, name: &str, max_level: u8, floor: u8) -> usize {
        self.elements.push(ElementSpec {
            name: name.to_string(),
            max_level,
            floor,
        });
        self.elements.len() - 1
    }

    /// Declare a dependency: `child` requires `provider` at
    /// `min_provider_level` or above whenever the child is powered.
    pub fn edge(&mut self, child: usize, provider: usize, min_provider_level: u8) -> &mut Self {
        self.edges.push(Edge {
            child,
            provider,
            min_provider_level,
        });
        self
    }

    /// Validate and freeze the topology.
    ///
    /// # Errors
    /// [`BrokerError::InvalidElement`] for a zero `max_level` or a floor
    /// above it; [`BrokerError::InvalidEdge`] for out-of-range endpoints,
    /// self-edges, requirements outside the provider's range, or a child
    /// floor the provider's floor cannot support (terminal shutdown must
    /// land on a legal state); [`BrokerError::DependencyCycle`] when the
    /// graph is not a DAG.
    pub fn build(self) -> Result<Topology, BrokerError> {
        let n = self.elements.len();
        for (i, spec) in self.elements.iter().enumerate() {
            if spec.max_level == 0 {
                return Err(BrokerError::InvalidElement {
                    element: i,
                    reason: "max_level must be at least 1".to_string(),
                });
            }
            if spec.floor > spec.max_level {
                return Err(BrokerError::InvalidElement {
                    element: i,
                    reason: format!("floor {} above max_level {}", spec.floor, spec.max_level),
                });
            }
        }
        for e in &self.edges {
            if e.child >= n || e.provider >= n {
                return Err(BrokerError::InvalidEdge {
                    child: e.child,
                    provider: e.provider,
                    reason: format!("element index out of range (topology has {n})"),
                });
            }
            if e.child == e.provider {
                return Err(BrokerError::InvalidEdge {
                    child: e.child,
                    provider: e.provider,
                    reason: "self-dependency".to_string(),
                });
            }
            let provider = &self.elements[e.provider];
            if e.min_provider_level == 0 || e.min_provider_level > provider.max_level {
                return Err(BrokerError::InvalidEdge {
                    child: e.child,
                    provider: e.provider,
                    reason: format!(
                        "required level {} outside provider range 1..={}",
                        e.min_provider_level, provider.max_level
                    ),
                });
            }
            let child = &self.elements[e.child];
            if child.floor >= 1 && provider.floor < e.min_provider_level {
                return Err(BrokerError::InvalidEdge {
                    child: e.child,
                    provider: e.provider,
                    reason: format!(
                        "child floor {} needs provider at {} but provider floor is {}",
                        child.floor, e.min_provider_level, provider.floor
                    ),
                });
            }
        }

        let mut providers: Vec<Vec<(usize, u8)>> = vec![Vec::new(); n];
        for e in &self.edges {
            providers[e.child].push((e.provider, e.min_provider_level));
        }

        // Deterministic Kahn order: each round admits every element whose
        // providers are all placed, in ascending index order. O(n·rounds)
        // is fine at topology scale (tens of elements).
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        while order.len() < n {
            let mut progressed = false;
            for (i, done) in placed.iter_mut().enumerate() {
                if *done {
                    continue;
                }
                if providers[i].iter().all(|&(p, _)| order.contains(&p)) {
                    *done = true;
                    order.push(i);
                    progressed = true;
                }
            }
            if !progressed {
                let stuck = placed.iter().position(|&p| !p).unwrap_or(0);
                return Err(BrokerError::DependencyCycle { element: stuck });
            }
        }

        Ok(Topology {
            elements: self.elements,
            edges: self.edges,
            order,
            providers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Topology {
        let mut b = TopologyBuilder::new();
        let bus = b.element("bus", 1, 0);
        let ring = b.element("ring", 2, 0);
        let chip = b.element("chip", 1, 0);
        b.edge(ring, bus, 1);
        b.edge(chip, ring, 2);
        b.build().expect("chain builds")
    }

    #[test]
    fn order_puts_providers_first() {
        let t = chain();
        assert_eq!(t.order(), &[0, 1, 2]);
        assert_eq!(t.providers_of(2), &[(1, 2)]);
    }

    #[test]
    fn violation_detects_overpowered_child() {
        let t = chain();
        assert_eq!(t.violation(&[1, 2, 1]), None);
        assert_eq!(t.violation(&[1, 1, 1]), Some((2, 1)));
        assert_eq!(t.violation(&[0, 0, 0]), None);
    }

    #[test]
    fn dependents_are_transitive() {
        let t = chain();
        assert_eq!(t.dependents_of(0), vec![1, 2]);
        assert_eq!(t.dependents_of(1), vec![2]);
        assert!(t.dependents_of(2).is_empty());
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.element("a", 1, 0);
        let c = b.element("b", 1, 0);
        b.edge(a, c, 1);
        b.edge(c, a, 1);
        assert!(matches!(
            b.build(),
            Err(BrokerError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn unsupportable_floor_is_rejected() {
        let mut b = TopologyBuilder::new();
        let bus = b.element("bus", 1, 0);
        let keeper = b.element("keeper", 1, 1);
        b.edge(keeper, bus, 1);
        assert!(matches!(b.build(), Err(BrokerError::InvalidEdge { .. })));
    }

    #[test]
    fn bad_requirement_and_self_edge_are_rejected() {
        let mut b = TopologyBuilder::new();
        let bus = b.element("bus", 1, 0);
        let chip = b.element("chip", 1, 0);
        b.edge(chip, bus, 2);
        assert!(matches!(b.build(), Err(BrokerError::InvalidEdge { .. })));

        let mut b = TopologyBuilder::new();
        let solo = b.element("solo", 1, 0);
        b.edge(solo, solo, 1);
        assert!(matches!(b.build(), Err(BrokerError::InvalidEdge { .. })));
    }
}
