//! §6 future-work extensions, implemented: per-processor frequencies and
//! heterogeneous processor pools.
//!
//! The paper's Algorithm 2 restricts all processors to one `(f, v)` because
//! PAMA distributes a single clock. Its conclusion sketches two
//! generalizations:
//!
//! 1. **Per-processor frequency/voltage** on a homogeneous pool. Under the
//!    Fig. 2 fork-join graph the parallel stage finishes when the *slowest*
//!    participant finishes, so an optimal assignment is *level* across
//!    participants — but mixing frequencies still helps when the budget
//!    falls between two uniform levels: run `k` chips one step faster than
//!    the rest. [`MixedFrequencyTable`] enumerates these two-level
//!    assignments and Pareto-prunes them, strictly enlarging the frontier
//!    relative to the homogeneous table.
//!
//! 2. **Heterogeneous processors** — different `c2`, frequency sets and
//!    speed factors per chip class. [`HeteroAllocator`] greedily activates
//!    whole chips in order of marginal throughput-per-watt, which is optimal
//!    for the concave per-chip utility the Eq. 2–6 models induce.

use super::pareto::RatedPoint;
use super::OperatingPoint;
use crate::error::DpmError;
use crate::model::Throughput;
use crate::platform::Platform;
use crate::units::{watts, Hertz, Volts, Watts};
use serde::{Deserialize, Serialize};

/// A two-level frequency assignment: `slow_count` chips at `f_slow`,
/// `fast_count` chips at `f_fast` (adjacent frequency steps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedAssignment {
    /// Chips at the lower level (0 allowed).
    pub slow_count: usize,
    /// Lower frequency.
    pub f_slow: Hertz,
    /// Chips at the upper level.
    pub fast_count: usize,
    /// Upper frequency.
    pub f_fast: Hertz,
    /// Board power, W.
    pub power: Watts,
    /// Fork-join throughput, jobs/s.
    pub perf: Throughput,
}

impl MixedAssignment {
    /// Total active chips.
    pub fn workers(&self) -> usize {
        self.slow_count + self.fast_count
    }
}

/// Pareto frontier over two-level per-processor frequency assignments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedFrequencyTable {
    frontier: Vec<MixedAssignment>,
}

impl MixedFrequencyTable {
    /// Enumerate all `(n_slow, n_fast, f_slow, f_fast)` two-level splits
    /// over adjacent frequency steps (plus the uniform assignments) and
    /// prune dominated ones.
    pub fn build(platform: &Platform) -> Self {
        let mut all = Vec::new();
        let freqs = &platform.frequencies;
        for total in 1..=platform.workers() {
            // Uniform assignments (fast_count = total at each level).
            for &f in freqs {
                if let Some(a) = Self::rate(platform, 0, f, total, f) {
                    all.push(a);
                }
            }
            // Two-level splits over adjacent steps.
            for w in freqs.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                for fast in 1..total {
                    if let Some(a) = Self::rate(platform, total - fast, lo, fast, hi) {
                        all.push(a);
                    }
                }
            }
        }
        all.sort_by(|a, b| {
            a.power
                .value()
                .total_cmp(&b.power.value())
                .then(b.perf.value().total_cmp(&a.perf.value()))
        });
        let mut frontier: Vec<MixedAssignment> = Vec::new();
        for a in all {
            if frontier
                .last()
                .is_none_or(|last| a.perf.value() > last.perf.value() + 1e-15)
            {
                frontier.push(a);
            }
        }
        Self { frontier }
    }

    fn rate(
        platform: &Platform,
        slow_count: usize,
        f_slow: Hertz,
        fast_count: usize,
        f_fast: Hertz,
    ) -> Option<MixedAssignment> {
        let v_slow = platform.voltage_for(f_slow)?;
        let v_fast = platform.voltage_for(f_fast)?;
        let n = slow_count + fast_count;
        // Power: Eq. 5 over the mixed set, controller at the fast clock,
        // rest standby.
        let mut points: Vec<(Hertz, Volts)> = Vec::with_capacity(n + platform.reserved);
        points.extend(std::iter::repeat_n((f_slow, v_slow), slow_count));
        points.extend(std::iter::repeat_n((f_fast, v_fast), fast_count));
        points.extend(std::iter::repeat_n((f_fast, v_fast), platform.reserved));
        let power = platform.power.board_power_hetero(&points);
        // Fork-join performance: the parallel stage splits the work so each
        // chip gets a share proportional to its speed, hence the stage time
        // is (parallel work)/(Σ speeds); the serial stage runs on the
        // fastest chip.
        let w = &platform.workload;
        let f_ref = w.f_ref.value();
        let speed_sum =
            slow_count as f64 * f_slow.value() / f_ref + fast_count as f64 * f_fast.value() / f_ref;
        if speed_sum <= 0.0 {
            return None;
        }
        let serial = w.serial.value() / (f_fast.value() / f_ref);
        let parallel = (w.total.value() - w.serial.value()) / speed_sum;
        let perf = Throughput(1.0 / (serial + parallel));
        Some(MixedAssignment {
            slow_count,
            f_slow,
            fast_count,
            f_fast,
            power,
            perf,
        })
    }

    /// The frontier, ascending power.
    pub fn frontier(&self) -> &[MixedAssignment] {
        &self.frontier
    }

    /// Best assignment within a power budget; `None` if even the cheapest
    /// exceeds it.
    pub fn best_within(&self, budget: Watts) -> Option<MixedAssignment> {
        self.frontier
            .iter()
            .take_while(|a| a.power.value() <= budget.value() + 1e-12)
            .last()
            .copied()
    }
}

/// One class of processors in a heterogeneous system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorClass {
    /// Label for reports.
    pub name: String,
    /// Chips available in this class.
    pub count: usize,
    /// Relative speed at its operating point (jobs-per-second contribution
    /// to the parallel stage, normalized to the reference chip = 1.0).
    pub speed: f64,
    /// Power drawn per active chip, W.
    pub chip_power: Watts,
}

/// A chip activation chosen by the heterogeneous allocator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroActivation {
    /// Class name.
    pub class: String,
    /// Chips of that class activated.
    pub count: usize,
}

/// Result of a heterogeneous allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroPlan {
    /// Activations per class.
    pub activations: Vec<HeteroActivation>,
    /// Total power, W.
    pub power: Watts,
    /// Aggregate parallel-stage speed (sum of activated chip speeds).
    pub speed: f64,
}

/// Greedy marginal throughput-per-watt allocator over processor classes.
#[derive(Debug, Clone)]
pub struct HeteroAllocator {
    classes: Vec<ProcessorClass>,
}

impl HeteroAllocator {
    /// Build from the class inventory.
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] on an empty inventory or a class with
    /// non-positive speed or chip power (the greedy density ordering would
    /// divide by zero).
    pub fn new(classes: Vec<ProcessorClass>) -> Result<Self, DpmError> {
        if classes.is_empty() {
            return Err(DpmError::InvalidParameter {
                name: "classes",
                reason: "processor inventory is empty".into(),
            });
        }
        for c in &classes {
            if !(c.speed > 0.0) {
                return Err(DpmError::InvalidParameter {
                    name: "speed",
                    reason: format!("class {} has non-positive speed {}", c.name, c.speed),
                });
            }
            if !(c.chip_power.value() > 0.0) {
                return Err(DpmError::InvalidParameter {
                    name: "chip_power",
                    reason: format!("class {} has non-positive power {}", c.name, c.chip_power),
                });
            }
        }
        Ok(Self { classes })
    }

    /// Activate chips in descending speed-per-watt order until the budget
    /// is exhausted. Because every chip contributes additively to the
    /// parallel-stage speed and power, the greedy order is exact for this
    /// model (it is the fractional-knapsack structure with whole chips;
    /// ties in density make it optimal to within one chip per class).
    pub fn allocate(&self, budget: Watts) -> HeteroPlan {
        let mut order: Vec<&ProcessorClass> = self.classes.iter().collect();
        order.sort_by(|a, b| {
            let da = a.speed / a.chip_power.value();
            let db = b.speed / b.chip_power.value();
            db.total_cmp(&da)
        });
        let mut remaining = budget.value();
        let mut power = 0.0;
        let mut speed = 0.0;
        let mut activations = Vec::new();
        for c in order {
            let affordable = (remaining / c.chip_power.value()).floor() as usize;
            let take = affordable.min(c.count);
            if take > 0 {
                remaining -= take as f64 * c.chip_power.value();
                power += take as f64 * c.chip_power.value();
                speed += take as f64 * c.speed;
                activations.push(HeteroActivation {
                    class: c.name.clone(),
                    count: take,
                });
            }
        }
        HeteroPlan {
            activations,
            power: watts(power),
            speed,
        }
    }
}

/// A per-slot plan over the mixed-frequency frontier — the §6 extension's
/// analogue of [`crate::params::ParameterScheduler`]. Overheads are not
/// modelled here (the extension's point is the finer frontier; the
/// overhead machinery composes identically).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedSchedule {
    /// Chosen assignment per slot (`None` = below the cheapest point, run
    /// nothing).
    pub slots: Vec<Option<MixedAssignment>>,
}

impl MixedSchedule {
    /// Total modelled jobs over the period.
    pub fn total_jobs(&self, tau_seconds: f64) -> f64 {
        self.slots
            .iter()
            .flatten()
            .map(|a| a.perf.value() * tau_seconds)
            .sum()
    }

    /// Total modelled energy over the period (standby floor excluded for
    /// off slots — comparable across tables).
    pub fn total_energy(&self, tau_seconds: f64) -> f64 {
        self.slots
            .iter()
            .flatten()
            .map(|a| a.power.value() * tau_seconds)
            .sum()
    }
}

/// Plan a period's allocation over the mixed-frequency frontier: for each
/// slot take the best assignment within the budget.
pub fn plan_mixed(table: &MixedFrequencyTable, budgets: &[f64]) -> MixedSchedule {
    MixedSchedule {
        slots: budgets
            .iter()
            .map(|&b| table.best_within(watts(b)))
            .collect(),
    }
}

/// Convert a mixed assignment to the nearest homogeneous rated point, for
/// comparing the extension against the paper's baseline table.
pub fn as_homogeneous(a: &MixedAssignment) -> RatedPoint {
    let f = if a.fast_count >= a.slow_count {
        a.f_fast
    } else {
        a.f_slow
    };
    RatedPoint {
        point: OperatingPoint::new(a.workers(), f, Volts(0.0)),
        power: a.power,
        perf: a.perf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParetoTable;

    #[test]
    fn mixed_table_contains_uniform_points() {
        let platform = Platform::pama();
        let mixed = MixedFrequencyTable::build(&platform);
        let homo = ParetoTable::build(&platform).unwrap();
        // Every homogeneous frontier power level is matched or beaten.
        for r in homo.frontier().iter().skip(1) {
            let m = mixed.best_within(r.power).expect("budget covers a point");
            assert!(
                m.perf.value() + 1e-12 >= r.perf.value(),
                "mixed table worse at {}: {} < {}",
                r.power,
                m.perf.value(),
                r.perf.value()
            );
        }
    }

    #[test]
    fn mixed_table_fills_gaps_between_uniform_levels() {
        let platform = Platform::pama();
        let mixed = MixedFrequencyTable::build(&platform);
        // A genuinely two-level assignment must appear on the frontier.
        assert!(
            mixed
                .frontier()
                .iter()
                .any(|a| a.slow_count > 0 && a.fast_count > 0),
            "no mixed assignment on the frontier"
        );
    }

    #[test]
    fn mixed_frontier_is_strictly_increasing() {
        let platform = Platform::pama();
        let mixed = MixedFrequencyTable::build(&platform);
        for w in mixed.frontier().windows(2) {
            assert!(w[1].power.value() > w[0].power.value());
            assert!(w[1].perf.value() > w[0].perf.value());
        }
    }

    #[test]
    fn mixed_best_within_none_below_floor() {
        let platform = Platform::pama();
        let mixed = MixedFrequencyTable::build(&platform);
        assert!(mixed.best_within(watts(0.01)).is_none());
    }

    fn classes() -> Vec<ProcessorClass> {
        vec![
            ProcessorClass {
                name: "pim".into(),
                count: 7,
                speed: 1.0,
                chip_power: watts(0.546),
            },
            ProcessorClass {
                name: "dsp".into(),
                count: 2,
                speed: 3.0,
                chip_power: watts(1.2),
            },
        ]
    }

    #[test]
    fn hetero_prefers_denser_class_first() {
        // dsp density 2.5 speed/W > pim 1.83: budget for one dsp only.
        let h = HeteroAllocator::new(classes()).unwrap();
        let plan = h.allocate(watts(1.3));
        assert_eq!(plan.activations.len(), 1);
        assert_eq!(plan.activations[0].class, "dsp");
        assert_eq!(plan.activations[0].count, 1);
    }

    #[test]
    fn hetero_spills_to_second_class() {
        let h = HeteroAllocator::new(classes()).unwrap();
        // 2 dsp = 2.4 W; remainder buys pims.
        let plan = h.allocate(watts(4.0));
        let dsp = plan.activations.iter().find(|a| a.class == "dsp").unwrap();
        assert_eq!(dsp.count, 2);
        let pim = plan.activations.iter().find(|a| a.class == "pim").unwrap();
        assert_eq!(pim.count, 2); // 1.6 W left / 0.546 = 2 chips
        assert!(plan.power.value() <= 4.0 + 1e-9);
    }

    #[test]
    fn hetero_zero_budget_activates_nothing() {
        let h = HeteroAllocator::new(classes()).unwrap();
        let plan = h.allocate(Watts::ZERO);
        assert!(plan.activations.is_empty());
        assert_eq!(plan.speed, 0.0);
    }

    #[test]
    fn hetero_speed_monotone_in_budget() {
        let h = HeteroAllocator::new(classes()).unwrap();
        let mut last = -1.0;
        for i in 0..20 {
            let plan = h.allocate(watts(0.4 * i as f64));
            assert!(plan.speed + 1e-12 >= last, "regressed at {i}");
            last = plan.speed;
        }
    }

    #[test]
    fn hetero_rejects_degenerate_inventory() {
        assert!(matches!(
            HeteroAllocator::new(vec![]),
            Err(DpmError::InvalidParameter {
                name: "classes",
                ..
            })
        ));
        let mut bad = classes();
        bad[0].speed = 0.0;
        assert!(matches!(
            HeteroAllocator::new(bad),
            Err(DpmError::InvalidParameter { name: "speed", .. })
        ));
        let mut bad = classes();
        bad[1].chip_power = Watts::ZERO;
        assert!(matches!(
            HeteroAllocator::new(bad),
            Err(DpmError::InvalidParameter {
                name: "chip_power",
                ..
            })
        ));
    }

    #[test]
    fn mixed_plan_never_underperforms_homogeneous_plan() {
        // Same per-slot budgets: the finer frontier can only do at least
        // as many jobs within the same power.
        let platform = Platform::pama();
        let mixed = MixedFrequencyTable::build(&platform);
        let homo = ParetoTable::build(&platform).unwrap();
        let budgets: Vec<f64> = vec![0.4, 0.8, 1.2, 1.6, 2.0, 2.4, 2.8, 3.2, 3.6, 4.0, 4.4, 0.6];
        let plan = plan_mixed(&mixed, &budgets);
        let mixed_jobs = plan.total_jobs(4.8);
        let homo_jobs: f64 = budgets
            .iter()
            .map(|&b| homo.best_within(watts(b)).perf.value() * 4.8)
            .sum();
        assert!(
            mixed_jobs + 1e-9 >= homo_jobs,
            "mixed {mixed_jobs} < homogeneous {homo_jobs}"
        );
        // And it genuinely helps on at least one budget on this platform.
        assert!(mixed_jobs > homo_jobs + 1e-6, "{mixed_jobs} vs {homo_jobs}");
    }

    #[test]
    fn mixed_plan_respects_budgets() {
        let platform = Platform::pama();
        let mixed = MixedFrequencyTable::build(&platform);
        let budgets = vec![0.1, 1.0, 5.0];
        let plan = plan_mixed(&mixed, &budgets);
        assert!(plan.slots[0].is_none(), "0.1 W is below any assignment");
        for (slot, &b) in plan.slots.iter().zip(&budgets) {
            if let Some(a) = slot {
                assert!(a.power.value() <= b + 1e-9);
            }
        }
        assert!(plan.total_energy(4.8) > 0.0);
    }

    #[test]
    fn as_homogeneous_preserves_ratings() {
        let platform = Platform::pama();
        let mixed = MixedFrequencyTable::build(&platform);
        let a = mixed
            .frontier()
            .iter()
            .find(|a| a.slow_count > 0 && a.fast_count > 0)
            .unwrap();
        let r = as_homogeneous(a);
        assert_eq!(r.power, a.power);
        assert_eq!(r.point.workers, a.workers());
    }
}
