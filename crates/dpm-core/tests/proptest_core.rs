//! Property-based tests for the core invariants listed in DESIGN.md §6.

use dpm_core::alloc::{
    normalize_to_supply, reshape_trajectory, reshape_trajectory_with, AllocationProblem,
    InitialAllocator, ReshapeStrategy,
};
use dpm_core::params::ParetoTable;
use dpm_core::platform::{BatteryLimits, Platform};
use dpm_core::runtime::redistribute;
use dpm_core::series::{ExtremumKind, PowerSeries};
use dpm_core::units::{joules, seconds, watts, Joules};
use proptest::prelude::*;

/// Strategy: a power series of `n` slots with values in `[0, hi]`.
fn power_series(n: usize, hi: f64) -> impl Strategy<Value = PowerSeries> {
    prop::collection::vec(0.0..hi, n..=n).prop_map(|v| PowerSeries::new(seconds(4.8), v).unwrap())
}

/// Strategy: a net-power series (signed) for building trajectories.
fn net_series(n: usize, amp: f64) -> impl Strategy<Value = PowerSeries> {
    prop::collection::vec(-amp..amp, n..=n).prop_map(|v| PowerSeries::new(seconds(1.0), v).unwrap())
}

proptest! {
    /// Eq. 8: the normalized demand always balances supply exactly.
    #[test]
    fn normalization_balances_supply(
        demand in power_series(12, 3.0),
        charging in power_series(12, 3.0),
    ) {
        let u = normalize_to_supply(&demand, &charging);
        let (a, b) = (u.integral().value(), charging.integral().value());
        prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
    }

    /// Algorithm 1 always produces a trajectory inside the window when the
    /// window is reachable (anchored remaps send extremes to the bounds).
    #[test]
    fn reshape_lands_inside_window(
        net in net_series(16, 4.0),
        start in 2.0f64..14.0,
    ) {
        let limits = BatteryLimits::new(joules(1.0), joules(15.0)).unwrap();
        let traj = net.cumulative(joules(start));
        let out = reshape_trajectory(&traj, limits);
        prop_assert!(
            out.trajectory.within(limits.c_min, limits.c_max, 1e-6),
            "points: {:?}", out.trajectory.points()
        );
    }

    /// Algorithm 1 is idempotent on already-feasible trajectories.
    #[test]
    fn reshape_is_identity_when_feasible(net in net_series(12, 0.4), start in 6.0f64..10.0) {
        let limits = BatteryLimits::new(joules(1.0), joules(15.0)).unwrap();
        let traj = net.cumulative(joules(start));
        // amp 0.4 over 12 slots: max drift 4.8 from start ∈ [6,10] ⇒ inside.
        prop_assume!(traj.within(limits.c_min, limits.c_max, 0.0));
        let out = reshape_trajectory(&traj, limits);
        prop_assert!(!out.changed);
    }

    /// The §4.1 driver returns a feasible allocation whenever the standby
    /// floor leaves room, and the allocation stays within power bounds.
    #[test]
    fn initial_allocation_feasible_and_bounded(
        demand in power_series(12, 2.0),
        sun in 1.0f64..3.0,
        start in 4.0f64..12.0,
    ) {
        let charging = PowerSeries::new(
            seconds(4.8),
            (0..12).map(|i| if i < 6 { sun } else { 0.0 }).collect(),
        ).unwrap();
        let problem = AllocationProblem {
            charging,
            demand,
            initial_charge: joules(start),
            limits: BatteryLimits::new(joules(0.5), joules(16.0)).unwrap(),
            p_floor: watts(0.0528),
            p_ceiling: watts(4.4),
        };
        // The driver must never panic: it either converges to a feasible
        // allocation or reports a structured error.
        match InitialAllocator::new(problem.clone()).unwrap().compute() {
            Ok(alloc) => {
                for &v in alloc.allocation.values() {
                    prop_assert!(v >= problem.p_floor.value() - 1e-9);
                    prop_assert!(v <= problem.p_ceiling.value() + 1e-9);
                }
                prop_assert!(alloc.feasible);
                prop_assert!(alloc.trajectory.within(joules(0.5), joules(16.0), 1e-3));
            }
            Err(e) => {
                use dpm_core::error::DpmError;
                prop_assert!(matches!(
                    e,
                    DpmError::InfeasibleAllocation { .. } | DpmError::ConvergenceFailure { .. }
                ));
            }
        }
    }

    /// Algorithm 3 conserves energy: the plan's integral changes by exactly
    /// the applied amount, and the applied amount never exceeds the request.
    #[test]
    fn redistribute_conserves_energy(
        plan0 in prop::collection::vec(0.1f64..4.0, 6..24),
        e_diff in -10.0f64..10.0,
        battery in 1.0f64..15.0,
    ) {
        let mut plan = plan0.clone();
        let charging = vec![1.0; plan.len()];
        let limits = BatteryLimits::new(joules(0.5), joules(16.0)).unwrap();
        let out = redistribute(
            &mut plan,
            &charging,
            seconds(4.8),
            joules(battery),
            limits,
            joules(e_diff),
            (watts(0.05), watts(4.4)),
        ).unwrap();
        let before: f64 = plan0.iter().sum::<f64>() * 4.8;
        let after: f64 = plan.iter().sum::<f64>() * 4.8;
        prop_assert!((after - before - out.applied.value()).abs() < 1e-6);
        // Applied never overshoots the request (same sign, smaller or equal
        // magnitude).
        prop_assert!(out.applied.value().abs() <= e_diff.abs() + 1e-9);
        prop_assert!(out.applied.value() * e_diff >= -1e-12);
        // Bounds respected.
        for &p in &plan {
            prop_assert!((0.05 - 1e-9..=4.4 + 1e-9).contains(&p));
        }
    }

    /// Pareto pruning loses nothing: for every budget, the pruned table's
    /// answer matches a full scan of the unpruned table.
    #[test]
    fn pareto_lookup_equals_exhaustive_scan(budget in 0.0f64..6.0) {
        let platform = Platform::pama();
        let pruned = ParetoTable::build(&platform).unwrap();
        let unpruned = ParetoTable::build_unpruned(&platform).unwrap();
        let a = pruned.best_within(watts(budget));
        let b = unpruned.best_within_scan(watts(budget));
        prop_assert!((a.perf.value() - b.perf.value()).abs() < 1e-12);
    }

    /// Cumulative/derivative round-trip on arbitrary series.
    #[test]
    fn cumulative_derivative_roundtrip(net in net_series(20, 5.0), start in -10.0f64..10.0) {
        let traj = net.cumulative(joules(start));
        let back = traj.derivative();
        for (a, b) in net.values().iter().zip(back.values()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        prop_assert_eq!(traj.point(0), Joules(start));
    }

    /// Integral additivity: ∫[0,m) + ∫[m,T) = ∫[0,T).
    #[test]
    fn integral_additivity(s in power_series(12, 3.0), cut in 0.0f64..57.6) {
        let total = s.integral().value();
        let a = s.integral_range(seconds(0.0), seconds(cut)).value();
        let b = s.integral_range(seconds(cut), s.period()).value();
        prop_assert!((a + b - total).abs() < 1e-9);
    }

    /// An empty wrap-around interval is empty, never a full period: for any
    /// instant t, ∫_wrap[t,t) = 0.
    #[test]
    fn integral_wrapping_empty_interval_is_zero(
        s in power_series(12, 3.0),
        t in -120.0f64..120.0,
    ) {
        prop_assert_eq!(s.integral_wrapping(seconds(t), seconds(t)), Joules::ZERO);
    }

    /// The wrap-around integral agrees with its in-period pieces: directly
    /// with ∫[a,b) when the interval does not cross the seam, and with
    /// ∫[a,T) + ∫[0,b) when it does.
    #[test]
    fn integral_wrapping_matches_range_pieces(
        s in power_series(12, 3.0),
        a in 0.0f64..57.6,
        b in 0.0f64..57.6,
    ) {
        let w = s.integral_wrapping(seconds(a), seconds(b)).value();
        let pieces = if b >= a {
            s.integral_range(seconds(a), seconds(b)).value()
        } else {
            s.integral_range(seconds(a), s.period()).value()
                + s.integral_range(seconds(0.0), seconds(b)).value()
        };
        prop_assert!((w - pieces).abs() < 1e-9, "wrap {w} vs pieces {pieces}");
    }

    /// Algorithm 1 sends every *violating* anchor breakpoint exactly onto
    /// its battery bound — under both segment-rebuild strategies, and in
    /// particular at the periodic seam (indices 0 and n−1), which the seam
    /// repair must not average away.
    #[test]
    fn violating_anchors_land_exactly_on_their_bounds(
        raw in prop::collection::vec(-4.0f64..4.0, 16..=16),
        start in 2.0f64..14.0,
    ) {
        // Zero-mean net power ⇒ periodic trajectory, Algorithm 1's
        // documented precondition (the Eq. 8 normalization guarantees it
        // in the real pipeline).
        let mean = raw.iter().sum::<f64>() / raw.len() as f64;
        let net = PowerSeries::new(
            seconds(1.0),
            raw.iter().map(|v| v - mean).collect(),
        ).unwrap();
        let limits = BatteryLimits::new(joules(1.0), joules(15.0)).unwrap();
        let traj = net.cumulative(joules(start));
        for strategy in [ReshapeStrategy::ShapePreserving, ReshapeStrategy::EvenSlope] {
            let out = reshape_trajectory_with(&traj, limits, strategy);
            for anchor in &out.anchors {
                let bound = match anchor.kind {
                    ExtremumKind::Maximum if anchor.energy > limits.c_max => limits.c_max,
                    ExtremumKind::Minimum if anchor.energy < limits.c_min => limits.c_min,
                    _ => continue, // pseudo-anchor: no bound to pin to
                };
                let landed = out.trajectory.point(anchor.index);
                prop_assert_eq!(
                    landed, bound,
                    "{:?} anchor at index {} landed on {:?}, not {:?} ({:?})",
                    anchor.kind, anchor.index, landed, bound, strategy
                );
            }
        }
    }
}
