//! The lease broker: dependency-ordered power-level governance.
//!
//! Consumers express demand as *leases* on elements; the broker reconciles
//! demand against faults and dependency structure once per slot
//! ([`Broker::sync`]). Every reconciliation applies drops leaves-first and
//! raises providers-first, so the topology is dependency-legal after
//! *every individual level change*, not just at sync boundaries — the
//! property `dpm-trace`'s `broker.legality` audit replays. Provider
//! faults cascade immediately ([`Broker::fault`]); restores wait out a
//! per-element dwell (hysteresis) and demand that a fault keeps
//! unservable burns a bounded retry budget before the element is
//! abandoned until the fault clears. [`Broker::shutdown`] walks the
//! topology to its minimum legal state, monotonically and finally.

use crate::error::BrokerError;
use crate::topology::Topology;
use dpm_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// Tuning knobs for broker hysteresis and retry bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerConfig {
    /// Slots an element must stay down after a drop before a restore is
    /// allowed (per-element hysteresis against flapping providers).
    pub dwell_slots: u64,
    /// Consecutive syncs demand may go unserved (element or provider
    /// faulted) before the element is abandoned until a recovery resets
    /// its budget. Bounds `broker.retry` traffic per fault episode.
    pub max_restore_retries: u32,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            dwell_slots: 1,
            max_restore_retries: 8,
        }
    }
}

/// Why a level changed — the `broker.level` event detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cause {
    /// First grant of demanded power (element was never dropped).
    Grant,
    /// Demand went away (lease deactivated or clamped).
    Revoke,
    /// A provider fault forced the element down.
    Cascade,
    /// Power restored after a drop.
    Restore,
    /// Terminal-shutdown walk.
    Shutdown,
}

impl Cause {
    /// Stable string for telemetry details.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Grant => "grant",
            Self::Revoke => "revoke",
            Self::Cascade => "cascade",
            Self::Restore => "restore",
            Self::Shutdown => "shutdown",
        }
    }
}

/// One applied level change, in application order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// The element whose level changed.
    pub element: usize,
    /// Level before the change.
    pub from: u8,
    /// Level after the change.
    pub to: u8,
    /// Why it changed.
    pub cause: Cause,
}

/// Census of broker activity, mirrored into `broker.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BrokerCounts {
    /// Level decreases applied (any cause).
    pub revocations: u64,
    /// Level increases applied.
    pub restores: u64,
    /// Provider faults processed (each may drop several dependents).
    pub cascades: u64,
    /// Terminal shutdowns executed (0 or 1; the walk is final).
    pub terminal_shutdowns: u64,
    /// Syncs in which demanded power could not be served.
    pub retries: u64,
    /// Elements that exhausted their retry budget.
    pub abandoned: u64,
}

#[derive(Debug, Clone)]
struct Lease {
    element: usize,
    level: u8,
    active: bool,
    dropped: bool,
}

/// Dependency-ordered power broker over a validated [`Topology`].
#[derive(Debug, Clone)]
pub struct Broker {
    topo: Topology,
    config: BrokerConfig,
    level: Vec<u8>,
    faulted: Vec<bool>,
    leases: Vec<Lease>,
    /// Slot of the most recent drop, the dwell anchor.
    last_drop: Vec<Option<u64>>,
    retries: Vec<u32>,
    abandoned: Vec<bool>,
    terminal: bool,
    slot: u64,
    time: f64,
    counts: BrokerCounts,
    log: Vec<Action>,
    telemetry: Recorder,
}

impl Broker {
    /// Create a broker with every element at level 0 and no demand.
    #[must_use]
    pub fn new(topo: Topology, config: BrokerConfig) -> Self {
        let n = topo.len();
        Self {
            topo,
            config,
            level: vec![0; n],
            faulted: vec![false; n],
            leases: Vec::new(),
            last_drop: vec![None; n],
            retries: vec![0; n],
            abandoned: vec![false; n],
            terminal: false,
            slot: 0,
            time: 0.0,
            counts: BrokerCounts::default(),
            log: Vec::new(),
            telemetry: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder and declare the topology into it:
    /// one `broker.element` event per element (detail = name) and one
    /// `broker.edge` per dependency, so a trace is self-describing and
    /// the audit can replay legality without out-of-band configuration.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        if telemetry.is_enabled() {
            for i in 0..self.topo.len() {
                if let Some(spec) = self.topo.spec(i) {
                    telemetry.event_with_detail(
                        "broker.element",
                        None,
                        0.0,
                        &[
                            ("element", i as f64),
                            ("max_level", f64::from(spec.max_level)),
                            ("floor", f64::from(spec.floor)),
                        ],
                        &spec.name,
                    );
                }
            }
            for e in self.topo.edges() {
                telemetry.event(
                    "broker.edge",
                    None,
                    0.0,
                    &[
                        ("child", e.child as f64),
                        ("provider", e.provider as f64),
                        ("min_provider_level", f64::from(e.min_provider_level)),
                    ],
                );
            }
            telemetry.gauge("broker.elements", self.topo.len() as f64);
            telemetry.gauge("broker.dwell_slots", self.config.dwell_slots as f64);
            telemetry.gauge(
                "broker.max_restore_retries",
                f64::from(self.config.max_restore_retries),
            );
        }
        self.telemetry = telemetry;
        self
    }

    /// The topology this broker governs.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Advance the broker clock; call once at the top of each slot before
    /// lease updates and [`sync`](Self::sync).
    pub fn begin_slot(&mut self, slot: u64, time: f64) {
        self.slot = slot;
        self.time = time;
    }

    /// Grant a lease for `level` on `element`. Leases start inactive;
    /// activate with [`set_active`](Self::set_active). Returns the lease
    /// id.
    ///
    /// # Errors
    /// [`BrokerError::Terminal`] after shutdown,
    /// [`BrokerError::UnknownElement`] / [`BrokerError::LevelOutOfRange`]
    /// for bad arguments.
    pub fn lease(&mut self, element: usize, level: u8) -> Result<usize, BrokerError> {
        if self.terminal {
            return Err(BrokerError::Terminal);
        }
        let spec = self
            .topo
            .spec(element)
            .ok_or(BrokerError::UnknownElement { element })?;
        if level == 0 || level > spec.max_level {
            return Err(BrokerError::LevelOutOfRange {
                element,
                level,
                max: spec.max_level,
            });
        }
        self.leases.push(Lease {
            element,
            level,
            active: false,
            dropped: false,
        });
        Ok(self.leases.len() - 1)
    }

    /// Activate or deactivate a lease's demand. Takes effect at the next
    /// [`sync`](Self::sync).
    ///
    /// # Errors
    /// [`BrokerError::Terminal`] after shutdown,
    /// [`BrokerError::UnknownLease`] for a bad or dropped id.
    pub fn set_active(&mut self, lease: usize, active: bool) -> Result<(), BrokerError> {
        if self.terminal {
            return Err(BrokerError::Terminal);
        }
        match self.leases.get_mut(lease) {
            Some(l) if !l.dropped => {
                l.active = active;
                Ok(())
            }
            _ => Err(BrokerError::UnknownLease { lease }),
        }
    }

    /// Permanently drop a lease; its demand disappears at the next sync.
    ///
    /// # Errors
    /// [`BrokerError::UnknownLease`] for a bad or already-dropped id.
    pub fn drop_lease(&mut self, lease: usize) -> Result<(), BrokerError> {
        match self.leases.get_mut(lease) {
            Some(l) if !l.dropped => {
                l.dropped = true;
                l.active = false;
                Ok(())
            }
            _ => Err(BrokerError::UnknownLease { lease }),
        }
    }

    /// Demanded level per element: floors, plus active leases, plus the
    /// derived demand children impose on providers (computed leaves-first
    /// so the closure is transitive).
    fn wants(&self) -> Vec<u8> {
        let mut want: Vec<u8> = (0..self.topo.len())
            .map(|e| self.topo.spec(e).map_or(0, |s| s.floor))
            .collect();
        for l in &self.leases {
            if l.active && !l.dropped {
                if let Some(w) = want.get_mut(l.element) {
                    *w = (*w).max(l.level);
                }
            }
        }
        for &e in self.topo.order().iter().rev() {
            if want[e] > 0 {
                for &(p, req) in self.topo.providers_of(e) {
                    want[p] = want[p].max(req);
                }
            }
        }
        want
    }

    /// Clamp demand to what faults allow, providers-first. `blocked[e]`
    /// marks demanded elements that cannot be served (own fault or a
    /// provider chain that cannot reach the required level).
    fn feasible(&self, want: &[u8]) -> (Vec<u8>, Vec<bool>) {
        let n = self.topo.len();
        let mut target = vec![0u8; n];
        let mut blocked = vec![false; n];
        for &e in self.topo.order() {
            let w = want.get(e).copied().unwrap_or(0);
            if w == 0 {
                continue;
            }
            let supported = self
                .topo
                .providers_of(e)
                .iter()
                .all(|&(p, req)| target[p] >= req);
            if self.faulted[e] || !supported {
                blocked[e] = true;
            } else {
                target[e] = w;
            }
        }
        (target, blocked)
    }

    /// Apply one level change: update counters, the action log, and emit
    /// the `broker.level` event. No-op when `to == from`.
    fn apply(&mut self, element: usize, to: u8, cause: Cause) {
        let from = self.level[element];
        if from == to {
            return;
        }
        self.level[element] = to;
        if to < from {
            self.counts.revocations += 1;
            self.last_drop[element] = Some(self.slot);
            self.telemetry.incr("broker.revocations", 1);
        } else {
            self.counts.restores += 1;
            self.retries[element] = 0;
            self.telemetry.incr("broker.restores", 1);
        }
        self.log.push(Action {
            element,
            from,
            to,
            cause,
        });
        if self.telemetry.is_enabled() {
            self.telemetry.event_with_detail(
                "broker.level",
                Some(self.slot),
                self.time,
                &[
                    ("element", element as f64),
                    ("from", f64::from(from)),
                    ("to", f64::from(to)),
                ],
                cause.as_str(),
            );
        }
    }

    /// Reconcile levels with demand once: bookkeep retries/abandonment,
    /// apply drops leaves-first, then raises providers-first (skipping
    /// elements still in dwell or whose providers are not yet up — those
    /// complete on later syncs, preserving dependency order across
    /// slots). Returns the number of level changes applied.
    pub fn sync(&mut self) -> usize {
        if self.terminal {
            return 0;
        }
        let want = self.wants();
        let (target, blocked) = self.feasible(&want);

        for e in 0..self.topo.len() {
            if blocked[e] {
                if !self.abandoned[e] {
                    self.retries[e] += 1;
                    self.counts.retries += 1;
                    self.telemetry.incr("broker.retries", 1);
                    if self.telemetry.is_enabled() {
                        self.telemetry.event(
                            "broker.retry",
                            Some(self.slot),
                            self.time,
                            &[
                                ("element", e as f64),
                                ("attempt", f64::from(self.retries[e])),
                            ],
                        );
                    }
                    if self.retries[e] > self.config.max_restore_retries {
                        self.abandoned[e] = true;
                        self.counts.abandoned += 1;
                        self.telemetry.incr("broker.abandoned", 1);
                        if self.telemetry.is_enabled() {
                            self.telemetry.event(
                                "broker.abandon",
                                Some(self.slot),
                                self.time,
                                &[
                                    ("element", e as f64),
                                    ("attempts", f64::from(self.retries[e])),
                                ],
                            );
                        }
                    }
                }
            } else if want[e] <= self.level[e] {
                // Demand satisfied or gone: the episode is over.
                self.retries[e] = 0;
            }
        }

        let order: Vec<usize> = self.topo.order().to_vec();
        let mut changes = 0usize;
        for &e in order.iter().rev() {
            if target[e] < self.level[e] {
                self.apply(e, target[e], Cause::Revoke);
                changes += 1;
            }
        }
        for &e in &order {
            let t = target[e];
            if t <= self.level[e] || self.abandoned[e] {
                continue;
            }
            if let Some(d) = self.last_drop[e] {
                if self.slot < d.saturating_add(self.config.dwell_slots) {
                    continue; // dwell hysteresis: hold the restore
                }
            }
            let providers_up = self
                .topo
                .providers_of(e)
                .iter()
                .all(|&(p, req)| self.level[p] >= req);
            if providers_up {
                let cause = if self.last_drop[e].is_some() {
                    Cause::Restore
                } else {
                    Cause::Grant
                };
                self.apply(e, t, cause);
                changes += 1;
            }
        }
        changes
    }

    /// Record a fault on `element` and cascade immediately: the element
    /// and every dependent whose requirement chain breaks are dropped,
    /// leaves-first, so the configuration is legal after each step.
    /// Returns the number of elements dropped. Post-terminal faults are
    /// accepted but change nothing (everything is already at the floor
    /// and shutdown is final).
    ///
    /// # Errors
    /// [`BrokerError::UnknownElement`] for a bad index.
    pub fn fault(&mut self, element: usize, time: f64) -> Result<usize, BrokerError> {
        if element >= self.topo.len() {
            return Err(BrokerError::UnknownElement { element });
        }
        self.time = time;
        self.faulted[element] = true;
        if self.terminal {
            return Ok(0);
        }
        let want = self.wants();
        let (target, _) = self.feasible(&want);
        let order: Vec<usize> = self.topo.order().to_vec();
        let mut dropped = 0usize;
        for &e in order.iter().rev() {
            if target[e] < self.level[e] {
                self.apply(e, target[e], Cause::Cascade);
                dropped += 1;
            }
        }
        self.counts.cascades += 1;
        self.telemetry.incr("broker.cascades", 1);
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                "broker.cascade",
                Some(self.slot),
                time,
                &[("element", element as f64), ("dropped", dropped as f64)],
            );
        }
        Ok(dropped)
    }

    /// Clear a fault. The element and its transitive dependents get a
    /// fresh retry budget; restores happen on later syncs, providers
    /// first, after each element's dwell expires.
    ///
    /// # Errors
    /// [`BrokerError::UnknownElement`] for a bad index.
    pub fn recover(&mut self, element: usize, time: f64) -> Result<(), BrokerError> {
        if element >= self.topo.len() {
            return Err(BrokerError::UnknownElement { element });
        }
        self.time = time;
        self.faulted[element] = false;
        self.retries[element] = 0;
        self.abandoned[element] = false;
        for d in self.topo.dependents_of(element) {
            self.retries[d] = 0;
            self.abandoned[d] = false;
        }
        Ok(())
    }

    /// Orderly terminal shutdown: deactivate all demand and walk the
    /// topology to its minimum legal state (floors where supportable,
    /// 0 where a faulted provider leaves the floor unsupportable),
    /// leaves-first and strictly monotone — no element's level ever
    /// rises. The broker is terminal afterwards: syncs are no-ops and new
    /// demand is rejected. Returns the number of level changes. Calling
    /// it again is a no-op returning 0.
    pub fn shutdown(&mut self) -> usize {
        if self.terminal {
            return 0;
        }
        self.terminal = true;
        self.counts.terminal_shutdowns += 1;
        self.telemetry.incr("broker.terminal_shutdowns", 1);
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                "broker.shutdown_start",
                Some(self.slot),
                self.time,
                &[("elements", self.topo.len() as f64)],
            );
        }
        for l in &mut self.leases {
            l.active = false;
        }
        let want: Vec<u8> = (0..self.topo.len())
            .map(|e| self.topo.spec(e).map_or(0, |s| s.floor))
            .collect();
        let (target, _) = self.feasible(&want);
        let order: Vec<usize> = self.topo.order().to_vec();
        let mut changes = 0usize;
        for &e in order.iter().rev() {
            let t = target[e].min(self.level[e]); // monotone: never raise
            if t < self.level[e] {
                self.apply(e, t, Cause::Shutdown);
                changes += 1;
            }
        }
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                "broker.shutdown_complete",
                Some(self.slot),
                self.time,
                &[("changes", changes as f64)],
            );
        }
        changes
    }

    /// Whether terminal shutdown has executed.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.terminal
    }

    /// Current level of `element`, if it exists.
    #[must_use]
    pub fn level(&self, element: usize) -> Option<u8> {
        self.level.get(element).copied()
    }

    /// All current levels, indexed by element.
    #[must_use]
    pub fn levels(&self) -> &[u8] {
        &self.level
    }

    /// Whether `element` is currently faulted (out-of-range reads false).
    #[must_use]
    pub fn is_faulted(&self, element: usize) -> bool {
        self.faulted.get(element).copied().unwrap_or(false)
    }

    /// Whether demand on `element` could currently be served: not
    /// faulted, not abandoned, and no provider chain broken by a fault.
    /// Out-of-range reads false.
    #[must_use]
    pub fn is_available(&self, element: usize) -> bool {
        if element >= self.topo.len() || self.faulted[element] || self.abandoned[element] {
            return false;
        }
        self.topo
            .providers_of(element)
            .iter()
            .all(|&(p, _)| self.is_available(p))
    }

    /// Activity census so far.
    #[must_use]
    pub fn counts(&self) -> BrokerCounts {
        self.counts
    }

    /// The applied level changes, in order.
    #[must_use]
    pub fn actions(&self) -> &[Action] {
        &self.log
    }

    /// Drain the action log (keeps counters and levels).
    pub fn take_actions(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    /// bus -> ring -> {chip0, chip1}; sensor hangs off bus.
    fn board() -> (Topology, [usize; 5]) {
        let mut b = TopologyBuilder::new();
        let bus = b.element("bus", 1, 0);
        let ring = b.element("ring", 1, 0);
        let chip0 = b.element("chip0", 1, 0);
        let chip1 = b.element("chip1", 1, 0);
        let sensor = b.element("sensor", 1, 0);
        b.edge(ring, bus, 1);
        b.edge(chip0, ring, 1);
        b.edge(chip1, ring, 1);
        b.edge(sensor, bus, 1);
        (
            b.build().expect("board builds"),
            [bus, ring, chip0, chip1, sensor],
        )
    }

    fn no_dwell() -> BrokerConfig {
        BrokerConfig {
            dwell_slots: 0,
            max_restore_retries: 3,
        }
    }

    #[test]
    fn grant_raises_providers_first() {
        let (t, [bus, ring, chip0, ..]) = board();
        let mut br = Broker::new(t, no_dwell());
        let lease = br.lease(chip0, 1).unwrap();
        br.set_active(lease, true).unwrap();
        br.begin_slot(0, 0.0);
        assert_eq!(br.sync(), 3);
        let raised: Vec<usize> = br.actions().iter().map(|a| a.element).collect();
        assert_eq!(raised, vec![bus, ring, chip0]);
        assert!(br.actions().iter().all(|a| a.cause == Cause::Grant));
    }

    #[test]
    fn revoke_drops_leaves_first_and_restore_reverses() {
        let (t, [bus, ring, chip0, ..]) = board();
        let mut br = Broker::new(t, no_dwell());
        let lease = br.lease(chip0, 1).unwrap();
        br.set_active(lease, true).unwrap();
        br.begin_slot(0, 0.0);
        br.sync();
        br.take_actions();

        br.set_active(lease, false).unwrap();
        br.begin_slot(1, 1.0);
        br.sync();
        let revoked: Vec<usize> = br.actions().iter().map(|a| a.element).collect();
        assert_eq!(revoked, vec![chip0, ring, bus]);
        br.take_actions();

        br.set_active(lease, true).unwrap();
        br.begin_slot(2, 2.0);
        br.sync();
        let restored: Vec<usize> = br.actions().iter().map(|a| a.element).collect();
        let mut expected = revoked.clone();
        expected.reverse();
        assert_eq!(restored, expected);
        assert!(br.actions().iter().all(|a| a.cause == Cause::Restore));
    }

    #[test]
    fn provider_fault_cascades_to_legal_configuration() {
        let (t, [bus, ring, chip0, chip1, sensor]) = board();
        let mut br = Broker::new(t, no_dwell());
        for e in [chip0, chip1, sensor] {
            let l = br.lease(e, 1).unwrap();
            br.set_active(l, true).unwrap();
        }
        br.begin_slot(0, 0.0);
        br.sync();
        br.take_actions();

        let dropped = br.fault(ring, 0.5).unwrap();
        assert_eq!(dropped, 3); // chip0, chip1, ring — sensor survives on bus
        assert_eq!(br.level(sensor), Some(1));
        assert_eq!(br.level(bus), Some(1));
        assert_eq!(br.level(ring), Some(0));
        assert_eq!(br.level(chip0), Some(0));
        assert!(br.topology().violation(br.levels()).is_none());
        let order: Vec<usize> = br.actions().iter().map(|a| a.element).collect();
        // Leaves first: both chips drop before the ring.
        assert_eq!(order.last(), Some(&ring));
        assert!(br.actions().iter().all(|a| a.cause == Cause::Cascade));
        assert_eq!(br.counts().cascades, 1);
    }

    #[test]
    fn dwell_holds_restores_then_releases() {
        let (t, [_, ring, chip0, ..]) = board();
        let cfg = BrokerConfig {
            dwell_slots: 2,
            max_restore_retries: 3,
        };
        let mut br = Broker::new(t, cfg);
        let l = br.lease(chip0, 1).unwrap();
        br.set_active(l, true).unwrap();
        br.begin_slot(0, 0.0);
        br.sync();
        br.fault(ring, 0.1).unwrap();
        br.recover(ring, 0.2).unwrap();

        // Slot 1: inside dwell (drop at slot 0, dwell 2) — nothing rises.
        br.begin_slot(1, 1.0);
        br.take_actions();
        br.sync();
        assert!(br.actions().is_empty());
        // Slot 2: both dwells expire; the providers-first raise pass lets
        // the whole chain climb in one sync (ring rises before the chip's
        // provider check runs).
        br.begin_slot(2, 2.0);
        br.sync();
        let actions = br.take_actions();
        assert_eq!(actions.len(), 2); // ring then chip0, providers first
        assert_eq!(actions[0].element, ring);
        assert_eq!(actions[1].element, chip0);
        assert_eq!(br.level(chip0), Some(1));
    }

    #[test]
    fn unserved_demand_is_abandoned_after_bounded_retries() {
        let (t, [_, ring, chip0, ..]) = board();
        let mut br = Broker::new(t, no_dwell());
        let l = br.lease(chip0, 1).unwrap();
        br.set_active(l, true).unwrap();
        br.begin_slot(0, 0.0);
        br.sync();
        br.fault(ring, 0.1).unwrap();

        // Budget 3: ring and the blocked chip each retry 4 times
        // (abandoned on the 4th), then the retry traffic stops.
        for slot in 1..=10 {
            br.begin_slot(slot, slot as f64);
            br.sync();
        }
        assert_eq!(br.counts().retries, 8);
        assert_eq!(br.counts().abandoned, 2); // ring and the blocked chip
        assert!(!br.is_available(chip0));

        // Recovery resets the budget and the chain restores.
        br.recover(ring, 11.0).unwrap();
        br.begin_slot(11, 11.0);
        br.sync();
        assert_eq!(br.level(chip0), Some(1));
        assert!(br.is_available(chip0));
    }

    #[test]
    fn shutdown_is_monotone_final_and_lands_on_floors() {
        let mut b = TopologyBuilder::new();
        let bus = b.element("bus", 2, 1);
        let keeper = b.element("keeper", 1, 1);
        let chip = b.element("chip", 1, 0);
        b.edge(keeper, bus, 1);
        b.edge(chip, bus, 2);
        let t = b.build().unwrap();
        let mut br = Broker::new(t, no_dwell());
        for (e, lvl) in [(bus, 2), (keeper, 1), (chip, 1)] {
            let l = br.lease(e, lvl).unwrap();
            br.set_active(l, true).unwrap();
        }
        br.begin_slot(0, 0.0);
        br.sync();
        br.take_actions();

        let changes = br.shutdown();
        assert!(br.is_terminal());
        assert_eq!(changes, 2); // chip -> 0, bus -> 1; keeper already at floor
        assert_eq!(br.levels(), &[1, 1, 0]);
        assert!(br
            .actions()
            .iter()
            .all(|a| a.cause == Cause::Shutdown && a.to < a.from));
        assert!(br.topology().violation(br.levels()).is_none());

        // Final: no further syncs, shutdowns, or demand.
        assert_eq!(br.shutdown(), 0);
        assert_eq!(br.sync(), 0);
        assert_eq!(br.counts().terminal_shutdowns, 1);
        assert!(matches!(br.lease(chip, 1), Err(BrokerError::Terminal)));
        assert_eq!(br.levels(), &[1, 1, 0]);
    }

    #[test]
    fn telemetry_counters_and_declarations_are_emitted() {
        let (t, [_, ring, chip0, ..]) = board();
        let rec = Recorder::enabled("test");
        let mut br = Broker::new(t, no_dwell()).with_telemetry(rec.clone());
        let l = br.lease(chip0, 1).unwrap();
        br.set_active(l, true).unwrap();
        br.begin_slot(0, 0.0);
        br.sync();
        br.fault(ring, 0.5).unwrap();
        assert_eq!(rec.counter("broker.restores"), 3);
        assert_eq!(rec.counter("broker.revocations"), 2);
        assert_eq!(rec.counter("broker.cascades"), 1);
        // 5 broker.element + 4 broker.edge declarations, 3 grants,
        // 2 cascade drops, 1 broker.cascade.
        assert_eq!(rec.event_count(), 15);
    }

    #[test]
    fn lease_validation_rejects_bad_arguments() {
        let (t, [_, _, chip0, ..]) = board();
        let mut br = Broker::new(t, BrokerConfig::default());
        assert!(matches!(
            br.lease(99, 1),
            Err(BrokerError::UnknownElement { element: 99 })
        ));
        assert!(matches!(
            br.lease(chip0, 2),
            Err(BrokerError::LevelOutOfRange { .. })
        ));
        assert!(matches!(
            br.set_active(7, true),
            Err(BrokerError::UnknownLease { lease: 7 })
        ));
        let l = br.lease(chip0, 1).unwrap();
        br.drop_lease(l).unwrap();
        assert!(matches!(
            br.set_active(l, true),
            Err(BrokerError::UnknownLease { .. })
        ));
    }
}
