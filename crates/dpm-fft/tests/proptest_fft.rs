//! Property-based tests for the fixed-point DSP substrate.

use dpm_fft::prelude::*;
use proptest::prelude::*;

fn q15() -> impl Strategy<Value = Q15> {
    any::<i16>().prop_map(Q15)
}

fn signal(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-0.45f64..0.45, -0.45f64..0.45), n..=n)
}

proptest! {
    /// Q15 addition saturates instead of wrapping: result is always within
    /// 1 LSB of the clamped real sum.
    #[test]
    fn q15_add_saturates(a in q15(), b in q15()) {
        let sum = a.sat_add(b);
        let real = (a.to_f64() + b.to_f64()).clamp(-1.0, 32767.0 / 32768.0);
        prop_assert!((sum.to_f64() - real).abs() <= 2.0 / 32768.0);
    }

    /// Q15 multiply error is within one quantum of the real product.
    #[test]
    fn q15_mul_accuracy(a in q15(), b in q15()) {
        let p = a.sat_mul(b);
        let real = (a.to_f64() * b.to_f64()).clamp(-1.0, 32767.0 / 32768.0);
        prop_assert!((p.to_f64() - real).abs() <= 2.0 / 32768.0, "{a} × {b}");
    }

    /// Complex multiply magnitude is submultiplicative (saturation only
    /// shrinks), and matches the float product within tolerance for
    /// in-range operands.
    #[test]
    fn cq15_mul_matches_float(
        ar in -0.7f64..0.7, ai in -0.7f64..0.7,
        br in -0.7f64..0.7, bi in -0.7f64..0.7,
    ) {
        let a = CQ15::from_f64(ar, ai);
        let b = CQ15::from_f64(br, bi);
        let c = a.sat_mul(b);
        let (cr, ci) = c.to_f64();
        prop_assert!((cr - (ar * br - ai * bi)).abs() < 3e-4);
        prop_assert!((ci - (ar * bi + ai * br)).abs() < 3e-4);
    }

    /// The fixed-point FFT tracks the double-precision DFT within Q15
    /// quantization error for moderate-amplitude inputs.
    #[test]
    fn fft_matches_reference(sig in signal(64)) {
        let fft = FixedFft::new(64);
        let mut data = quantize(&sig);
        fft.transform(&mut data, Direction::Forward);
        let reference = reference_dft(&sig, Direction::Forward);
        for (got, want) in data.iter().zip(&reference) {
            let (gr, gi) = got.to_f64();
            prop_assert!((gr - want.0 / 64.0).abs() < 8e-3);
            prop_assert!((gi - want.1 / 64.0).abs() < 8e-3);
        }
    }

    /// forward ∘ inverse recovers the signal up to the documented 1/N
    /// scale and quantization noise.
    #[test]
    fn fft_roundtrip(sig in signal(32)) {
        let fft = FixedFft::new(32);
        let mut data = quantize(&sig);
        fft.transform(&mut data, Direction::Forward);
        fft.transform(&mut data, Direction::Inverse);
        let scale = 1.0 / fft.roundtrip_scale();
        for (c, &(wr, wi)) in data.iter().zip(&sig) {
            let (re, im) = c.to_f64();
            prop_assert!((re * scale - wr).abs() < 0.1, "{re} vs {wr}");
            prop_assert!((im * scale - wi).abs() < 0.1);
        }
    }

    /// The fork-join FFT agrees with the serial FFT for any worker count.
    #[test]
    fn forkjoin_matches_serial(sig in signal(128), workers in 1usize..8) {
        let mut par = quantize(&sig);
        let mut ser = quantize(&sig);
        ForkJoinFft::new(128, workers).transform(&mut par);
        FixedFft::new(128).transform(&mut ser, Direction::Forward);
        for (a, b) in par.iter().zip(&ser) {
            let (ar, ai) = a.to_f64();
            let (br, bi) = b.to_f64();
            prop_assert!((ar - br).abs() < 8e-3 && (ai - bi).abs() < 8e-3);
        }
    }

    /// The cycle model is monotone: more processors never slow a job, and
    /// higher frequency never slows a job.
    #[test]
    fn cycle_model_monotone(n in 1usize..16, mhz in 1.0f64..200.0) {
        let m = CycleModel::pama_fft();
        let f = dpm_core::units::Hertz::from_mhz(mhz);
        let t_n = m.parallel_job_time(2048, n, f);
        let t_n1 = m.parallel_job_time(2048, n + 1, f);
        prop_assert!(t_n1.value() <= t_n.value() + 1e-12);
        let t_faster = m.parallel_job_time(2048, n, dpm_core::units::Hertz::from_mhz(mhz * 2.0));
        prop_assert!(t_faster.value() < t_n.value());
    }

    /// Detector never reports an event without the trigger having fired.
    #[test]
    fn detector_event_implies_trigger(seed in 0u64..500, amp in 0.0f64..0.5) {
        let spec = CaptureSpec { transient_amp: amp, ..CaptureSpec::with_transient() };
        let det = TransientDetector::new(DetectorConfig::default());
        let r = det.detect(&generate(&spec, seed));
        prop_assert!(!r.is_event || r.triggered);
    }
}
