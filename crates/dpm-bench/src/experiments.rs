//! The experiment library: one function per paper artifact.
//!
//! Everything here is deterministic (schedule-driven arrivals, trace
//! charging) so the repro binary, the integration tests and the criterion
//! benches all see identical numbers.

use dpm_baselines::{
    AnalyticGovernor, GreedyGovernor, OracleGovernor, StaticGovernor, TimeoutGovernor,
};
use dpm_core::alloc::{AllocationIteration, InitialAllocation, InitialAllocator};
use dpm_core::error::DpmError;
use dpm_core::governor::Governor;
use dpm_core::params::ParameterScheduler;
use dpm_core::platform::Platform;
use dpm_core::runtime::{ControllerRecord, DpmController};
use dpm_core::units::Joules;
use dpm_sim::prelude::*;
use dpm_workloads::Scenario;
use serde::{Deserialize, Serialize};

/// Default simulated horizon: the paper's runtime tables cover two periods
/// (t = 0 … 110.4 s).
pub const DEFAULT_PERIODS: usize = 2;

/// Compute the §4.1 initial allocation for a scenario (Tables 2 & 4).
///
/// # Errors
/// Propagates [`DpmError`] when the scenario is infeasible for the
/// platform.
pub fn initial_allocation(
    platform: &Platform,
    scenario: &Scenario,
) -> Result<InitialAllocation, DpmError> {
    InitialAllocator::new(scenario.allocation_problem(platform))?.compute()
}

/// Build the proposed controller for a scenario.
///
/// # Errors
/// Propagates [`DpmError`] from the allocation or the controller.
pub fn proposed_controller(
    platform: &Platform,
    scenario: &Scenario,
) -> Result<DpmController, DpmError> {
    let alloc = initial_allocation(platform, scenario)?;
    DpmController::new(platform.clone(), &alloc, scenario.charging.clone())
}

/// Assemble the standard simulation for a scenario.
///
/// # Errors
/// Propagates [`SimError`] on a degenerate platform or scenario.
pub fn simulation(
    platform: &Platform,
    scenario: &Scenario,
    periods: usize,
) -> Result<Simulation, SimError> {
    Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(scenario.charging.clone())),
        Box::new(ScheduleGenerator::new(scenario.event_rates(platform))),
        scenario.initial_charge,
        SimConfig {
            periods,
            slots_per_period: scenario.charging.len(),
            substeps: 8,
            trace: true,
        },
    )
}

/// Run one governor through a scenario and report.
///
/// # Errors
/// Propagates [`SimError`] from assembly or the run itself.
pub fn run_governor(
    platform: &Platform,
    scenario: &Scenario,
    governor: &mut dyn Governor,
    periods: usize,
) -> Result<SimReport, SimError> {
    simulation(platform, scenario, periods)?.run(governor)
}

/// One Table 1 row: a governor's waste/shortfall on both scenarios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Governor name.
    pub governor: String,
    /// Wasted energy per scenario (J).
    pub wasted: Vec<f64>,
    /// Undersupplied energy per scenario (J).
    pub undersupplied: Vec<f64>,
    /// Jobs completed per scenario (context beyond the paper's table).
    pub jobs: Vec<u64>,
    /// Energy utilization per scenario.
    pub utilization: Vec<f64>,
}

/// Table 1: proposed vs. static (plus the extra baselines) on both
/// scenarios.
///
/// # Errors
/// Propagates the first [`SimError`] from any governor/scenario pair.
pub fn table1(
    platform: &Platform,
    scenarios: &[Scenario],
    periods: usize,
) -> Result<Vec<Table1Row>, SimError> {
    let mut rows: Vec<Table1Row> = Vec::new();
    let mut push = |name: &str, reports: Vec<SimReport>| {
        rows.push(Table1Row {
            governor: name.to_string(),
            wasted: reports.iter().map(|r| r.wasted).collect(),
            undersupplied: reports.iter().map(|r| r.undersupplied).collect(),
            jobs: reports.iter().map(|r| r.jobs_done).collect(),
            utilization: reports.iter().map(|r| r.utilization()).collect(),
        });
    };

    // Proposed.
    let reports: Vec<SimReport> = scenarios
        .iter()
        .map(|s| {
            let mut g = proposed_controller(platform, s)?;
            run_governor(platform, s, &mut g, periods)
        })
        .collect::<Result<_, _>>()?;
    push("proposed", reports);

    // Static (the paper's comparator).
    let reports: Vec<SimReport> = scenarios
        .iter()
        .map(|s| {
            let mut g = StaticGovernor::full_power(platform)?;
            run_governor(platform, s, &mut g, periods)
        })
        .collect::<Result<_, _>>()?;
    push("static", reports);

    // Timeout (related-work baseline).
    let reports: Vec<SimReport> = scenarios
        .iter()
        .map(|s| {
            let f = platform.f_max();
            let v = platform.voltage_for(f).ok_or_else(|| {
                DpmError::NoOperatingPoint(format!("no supply voltage for f_max = {f}"))
            })?;
            let point = dpm_core::params::OperatingPoint::new(platform.workers(), f, v);
            let mut g = TimeoutGovernor::new(point, 2)?;
            run_governor(platform, s, &mut g, periods)
        })
        .collect::<Result<_, _>>()?;
    push("timeout", reports);

    // Greedy (battery-aware myopic).
    let reports: Vec<SimReport> = scenarios
        .iter()
        .map(|s| {
            let mut g = GreedyGovernor::new(platform.clone(), 4.0)?;
            run_governor(platform, s, &mut g, periods)
        })
        .collect::<Result<_, _>>()?;
    push("greedy", reports);

    // Analytic (Eq. 18 closed form on the same allocation, no feedback).
    let reports: Vec<SimReport> = scenarios
        .iter()
        .map(|s| {
            let alloc = initial_allocation(platform, s)?;
            let mut g = AnalyticGovernor::new(platform.clone(), alloc.allocation)?;
            run_governor(platform, s, &mut g, periods)
        })
        .collect::<Result<_, _>>()?;
    push("analytic", reports);

    // Oracle (offline Algorithm 2 plan on the exact schedules).
    let reports: Vec<SimReport> = scenarios
        .iter()
        .map(|s| {
            let alloc = initial_allocation(platform, s)?;
            let plan = ParameterScheduler::new(platform.clone())?.plan(
                &alloc.allocation,
                &s.charging,
                s.initial_charge,
            )?;
            let mut g = OracleGovernor::from_schedule(&plan)?;
            run_governor(platform, s, &mut g, periods)
        })
        .collect::<Result<_, _>>()?;
    push("oracle", reports);

    Ok(rows)
}

/// Tables 2/4: the initial-allocation iterations.
///
/// # Errors
/// Propagates [`DpmError`] when the allocation cannot be computed.
pub fn table2_4(
    platform: &Platform,
    scenario: &Scenario,
) -> Result<Vec<AllocationIteration>, DpmError> {
    Ok(initial_allocation(platform, scenario)?.iterations)
}

/// Tables 3/5: the runtime controller trace over `periods` periods, with
/// the simulator supplying the "actual" energies.
///
/// # Errors
/// Propagates [`SimError`] from the controller or the run.
pub fn table3_5(
    platform: &Platform,
    scenario: &Scenario,
    periods: usize,
) -> Result<(Vec<ControllerRecord>, SimReport), SimError> {
    let mut governor = proposed_controller(platform, scenario)?;
    let report = run_governor(platform, scenario, &mut governor, periods)?;
    Ok((governor.take_trace(), report))
}

/// Figures 3/4: the charging and use schedules as plottable series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Scenario name.
    pub scenario: String,
    /// Slot start times (s).
    pub time: Vec<f64>,
    /// Charging schedule (W).
    pub charging: Vec<f64>,
    /// Use schedule (W).
    pub use_power: Vec<f64>,
}

/// Extract a figure's data series.
pub fn figure(scenario: &Scenario) -> FigureSeries {
    let n = scenario.charging.len();
    let tau = scenario.charging.slot_width().value();
    FigureSeries {
        scenario: scenario.name.clone(),
        time: (0..n).map(|i| i as f64 * tau).collect(),
        charging: scenario.charging.values().to_vec(),
        use_power: scenario.use_power.values().to_vec(),
    }
}

/// Total initially-stored + offered energy for utilization denominators.
pub fn energy_available(scenario: &Scenario, periods: usize) -> Joules {
    scenario.charging.integral() * periods as f64 + scenario.initial_charge
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_workloads::scenarios;

    #[test]
    fn table1_proposed_beats_static_on_waste() {
        let platform = Platform::pama();
        let rows = table1(&platform, &scenarios::all(), DEFAULT_PERIODS).unwrap();
        let proposed = rows.iter().find(|r| r.governor == "proposed").unwrap();
        let statik = rows.iter().find(|r| r.governor == "static").unwrap();
        for i in 0..2 {
            assert!(
                proposed.wasted[i] < statik.wasted[i],
                "scenario {i}: proposed {} vs static {}",
                proposed.wasted[i],
                statik.wasted[i]
            );
        }
    }

    #[test]
    fn table1_proposed_reduces_undersupply() {
        let platform = Platform::pama();
        let rows = table1(&platform, &scenarios::all(), DEFAULT_PERIODS).unwrap();
        let proposed = rows.iter().find(|r| r.governor == "proposed").unwrap();
        let statik = rows.iter().find(|r| r.governor == "static").unwrap();
        for i in 0..2 {
            assert!(
                proposed.undersupplied[i] <= statik.undersupplied[i] + 1e-9,
                "scenario {i}: proposed {} vs static {}",
                proposed.undersupplied[i],
                statik.undersupplied[i]
            );
        }
    }

    #[test]
    fn table2_converges_like_the_paper() {
        let platform = Platform::pama();
        for s in scenarios::all() {
            let iters = table2_4(&platform, &s).unwrap();
            assert!(!iters.is_empty());
            // The paper's Tables 2/4 converge in 5 rounds; our clamped
            // reshape needs a few more on scenario II (9) but stays within
            // the same order.
            assert!(iters.len() <= 12, "{}: {} iterations", s.name, iters.len());
            assert!(iters.last().unwrap().feasible, "{} infeasible", s.name);
        }
    }

    #[test]
    fn table3_trace_covers_two_periods() {
        let platform = Platform::pama();
        let (trace, report) = table3_5(&platform, &scenarios::scenario_one(), 2).unwrap();
        assert_eq!(trace.len(), 24);
        assert!(report.jobs_done > 0);
        // Every record's plan snapshot spans one period.
        assert!(trace.iter().all(|r| r.plan.len() == 12));
    }

    #[test]
    fn figure_series_match_scenarios() {
        let f = figure(&scenarios::scenario_two());
        assert_eq!(f.time.len(), 12);
        assert_eq!(f.charging[1], 3.54);
        assert_eq!(f.use_power[7], 0.0);
    }
}
