//! Seeded fleet-scenario generation: heterogeneous board populations
//! derived from one master seed.
//!
//! A fleet campaign needs each board to be *different* (otherwise a
//! million boards tell you nothing a single run would not) yet fully
//! reproducible and **shard-independent**: board `i`'s spec must depend
//! only on `(master_seed, i)`, never on which worker thread or shard
//! range happens to build it — that is what lets `dpm-bench` split a
//! fleet across any `--jobs` setting and still produce byte-identical
//! results.
//!
//! Per board, [`board_spec`] derives a private seed with [`board_seed`]
//! (a splitmix-style golden-ratio stride, so neighbouring indices get
//! uncorrelated streams) and draws, in a fixed documented order:
//!
//! 1. an initial-charge jitter factor (uniform in
//!    [`FleetScenarioConfig::charge_jitter`]),
//! 2. an event-rate phase offset in whole slots (uniform over the
//!    scenario's schedule length; drawn even when
//!    [`FleetScenarioConfig::phase_offsets`] is off, so toggling the knob
//!    never reshuffles the other draws),
//! 3. a fault-plan seed fed to [`crate::faults::generate`] when
//!    [`FleetScenarioConfig::faults`] is set.

use crate::{faults, FaultPlanConfig, Scenario};
use dpm_core::units::Seconds;
use dpm_sim::fleet::BoardSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default initial-charge jitter band: boards start between half and
/// 1.25× the scenario's nominal charge (the fleet core clamps into the
/// battery window, exactly as the scalar battery does).
pub const CHARGE_JITTER: (f64, f64) = (0.5, 1.25);

/// Population-diversity knobs for [`fleet_specs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetScenarioConfig {
    /// Uniform multiplier band applied to the scenario's initial charge.
    /// A degenerate band (`hi <= lo`) pins the factor at `lo`.
    pub charge_jitter: (f64, f64),
    /// Rotate each board's event-rate schedule by its drawn slot offset.
    /// Off, every board sees the base schedule in phase (offset 0).
    pub phase_offsets: bool,
    /// Draw a per-board fault plan with this shape; `None` builds a
    /// quiescent fleet.
    pub faults: Option<FaultPlanConfig>,
}

impl FleetScenarioConfig {
    /// The representative campaign population: jittered charge, phased
    /// arrivals, and one [`FaultPlanConfig::standard`] plan per board
    /// over `horizon`.
    pub fn standard(horizon: Seconds) -> Self {
        Self {
            charge_jitter: CHARGE_JITTER,
            phase_offsets: true,
            faults: Some(FaultPlanConfig::standard(horizon)),
        }
    }

    /// Jittered and phased but fault-free — the control arm.
    pub fn quiescent() -> Self {
        Self {
            charge_jitter: CHARGE_JITTER,
            phase_offsets: true,
            faults: None,
        }
    }
}

/// The private seed of board `board` under `master_seed`. A fixed
/// golden-ratio stride (the splitmix64 increment) keeps neighbouring
/// boards' `StdRng` streams uncorrelated while depending on nothing but
/// the pair — the shard-independence contract in one line.
#[inline]
pub fn board_seed(master_seed: u64, board: u64) -> u64 {
    master_seed.wrapping_add(board.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Build the spec of global board `index` for `scenario`. Depends only
/// on `(scenario, master_seed, index, config)` — see the module docs for
/// the draw order.
pub fn board_spec(
    scenario: &Scenario,
    master_seed: u64,
    index: usize,
    config: &FleetScenarioConfig,
) -> BoardSpec {
    let mut rng = StdRng::seed_from_u64(board_seed(master_seed, index as u64));

    let (lo, hi) = config.charge_jitter;
    let jitter = if hi > lo { rng.gen_range(lo..hi) } else { lo };

    let slots = scenario.charging.len();
    let phase_draw = if slots > 1 {
        rng.gen_range(0..slots)
    } else {
        0
    };

    let fault_seed = rng.gen::<u64>();
    let faults = match &config.faults {
        Some(shape) => faults::generate(fault_seed, shape)
            .events
            .into_iter()
            .map(|e| (e.at, e.disturbance))
            .collect(),
        None => Vec::new(),
    };

    BoardSpec {
        initial_charge: scenario.initial_charge * jitter,
        phase_slots: if config.phase_offsets { phase_draw } else { 0 },
        faults,
    }
}

/// Specs for the global board range `boards` — typically one shard of a
/// larger fleet. `fleet_specs(s, m, 256..512, c)` is exactly the
/// `[256, 512)` slice of `fleet_specs(s, m, 0..n, c)` for any `n ≥ 512`.
pub fn fleet_specs(
    scenario: &Scenario,
    master_seed: u64,
    boards: std::ops::Range<usize>,
    config: &FleetScenarioConfig,
) -> Vec<BoardSpec> {
    boards
        .map(|i| board_spec(scenario, master_seed, i, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::scenario_one;
    use dpm_core::units::seconds;

    fn horizon() -> Seconds {
        seconds(115.2)
    }

    #[test]
    fn generation_is_deterministic() {
        let s = scenario_one();
        let cfg = FleetScenarioConfig::standard(horizon());
        let a = fleet_specs(&s, 7, 0..16, &cfg);
        let b = fleet_specs(&s, 7, 0..16, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn specs_are_shard_independent() {
        let s = scenario_one();
        let cfg = FleetScenarioConfig::standard(horizon());
        let whole = fleet_specs(&s, 42, 0..24, &cfg);
        let shard = fleet_specs(&s, 42, 8..16, &cfg);
        assert_eq!(&whole[8..16], &shard[..]);
    }

    #[test]
    fn master_seed_changes_the_population() {
        let s = scenario_one();
        let cfg = FleetScenarioConfig::standard(horizon());
        assert_ne!(
            fleet_specs(&s, 1, 0..8, &cfg),
            fleet_specs(&s, 2, 0..8, &cfg)
        );
    }

    #[test]
    fn boards_are_heterogeneous() {
        let s = scenario_one();
        let cfg = FleetScenarioConfig::standard(horizon());
        let specs = fleet_specs(&s, 3, 0..32, &cfg);
        let charges: std::collections::BTreeSet<u64> = specs
            .iter()
            .map(|b| b.initial_charge.value().to_bits())
            .collect();
        assert!(
            charges.len() > 16,
            "jitter barely varies: {}",
            charges.len()
        );
        assert!(
            specs.iter().any(|b| b.phase_slots != specs[0].phase_slots),
            "phases never vary"
        );
        assert!(
            specs
                .iter()
                .any(|b| b.faults != specs[0].faults && !b.faults.is_empty()),
            "fault plans never vary"
        );
    }

    #[test]
    fn jitter_respects_the_band_and_clamping_is_left_to_the_core() {
        let s = scenario_one();
        let cfg = FleetScenarioConfig::standard(horizon());
        let nominal = s.initial_charge.value();
        for spec in fleet_specs(&s, 11, 0..64, &cfg) {
            let f = spec.initial_charge.value() / nominal;
            assert!((CHARGE_JITTER.0..CHARGE_JITTER.1).contains(&f), "{f}");
        }
    }

    #[test]
    fn quiescent_fleet_has_no_faults_but_same_other_draws() {
        let s = scenario_one();
        let noisy = fleet_specs(&s, 5, 0..8, &FleetScenarioConfig::standard(horizon()));
        let quiet = fleet_specs(&s, 5, 0..8, &FleetScenarioConfig::quiescent());
        for (n, q) in noisy.iter().zip(&quiet) {
            assert!(q.faults.is_empty());
            // Fault toggling never reshuffles the other draws.
            assert_eq!(n.initial_charge, q.initial_charge);
            assert_eq!(n.phase_slots, q.phase_slots);
        }
    }

    #[test]
    fn phase_offsets_off_pins_phase_zero_only() {
        let s = scenario_one();
        let mut cfg = FleetScenarioConfig::standard(horizon());
        cfg.phase_offsets = false;
        let specs = fleet_specs(&s, 9, 0..8, &cfg);
        let phased = fleet_specs(&s, 9, 0..8, &FleetScenarioConfig::standard(horizon()));
        for (p, z) in phased.iter().zip(&specs) {
            assert_eq!(z.phase_slots, 0);
            assert_eq!(p.initial_charge, z.initial_charge);
            assert_eq!(p.faults, z.faults);
        }
    }
}
