//! Minimal discrete-event machinery: a simulated clock and a time-ordered
//! event queue.
//!
//! The top-level simulation ([`crate::sim`]) advances in governor slots
//! with fluid-flow job processing inside each slot; the event queue carries
//! the *punctual* occurrences that don't fit a fixed grid — the injected
//! [`crate::sim::Disturbance`]s (supply scaling and charging dropouts,
//! event storms, processor faults and recoveries, battery capacity fades,
//! battery-gauge sensor faults) and any user-scheduled callbacks.

use crate::error::SimError;
use dpm_core::units::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Clock {
    now: Seconds,
}

impl Clock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Advance to `t`.
    ///
    /// # Errors
    /// [`SimError::ClockRegression`] on attempts to move backwards — a
    /// scheduling bug in the caller's event script. The clock is left
    /// unchanged.
    ///
    /// The regression check uses a *relative-or-absolute* tolerance,
    /// `1e-12 · max(1, |now|)`: an absolute `1e-12` would spuriously trip
    /// on rounding noise at large simulated times (a 256-period soak sits
    /// near `t ≈ 1.5e4` s, where one f64 ulp already exceeds `1e-12`),
    /// while a purely relative one would be zero at `t = 0`.
    pub fn advance_to(&mut self, t: Seconds) -> Result<(), SimError> {
        let tol = 1e-12 * self.now.value().abs().max(1.0);
        if t.value() + tol < self.now.value() {
            return Err(SimError::ClockRegression {
                from: self.now.value(),
                to: t.value(),
            });
        }
        self.now = self.now.max(t);
        Ok(())
    }
}

struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first, break ties
        // by insertion order so scheduling is deterministic.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `t`.
    pub fn schedule(&mut self, t: Seconds, event: E) {
        self.heap.push(Scheduled {
            time: t.value(),
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|s| Seconds(s.time))
    }

    /// Pop the next event if it occurs strictly before `t`.
    pub fn pop_before(&mut self, t: Seconds) -> Option<(Seconds, E)> {
        if self.heap.peek().is_some_and(|s| s.time < t.value()) {
            self.heap.pop().map(|s| (Seconds(s.time), s.event))
        } else {
            None
        }
    }

    /// Pop the next event unconditionally.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        self.heap.pop().map(|s| (Seconds(s.time), s.event))
    }

    /// Events still queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::seconds;

    #[test]
    fn clock_advances_and_rejects_regression() {
        let mut c = Clock::new();
        c.advance_to(seconds(5.0)).unwrap();
        assert_eq!(c.now(), seconds(5.0));
        c.advance_to(seconds(5.0)).unwrap(); // same time is fine
        assert!(matches!(
            c.advance_to(seconds(4.0)),
            Err(SimError::ClockRegression { .. })
        ));
        assert_eq!(c.now(), seconds(5.0), "failed advance leaves time put");
    }

    #[test]
    fn clock_tolerance_scales_with_simulated_time() {
        // Regression test for the old absolute 1e-12 tolerance: at soak
        // timescales (256 periods ≈ 1.47e4 s) a few ulps of rounding noise
        // exceed 1e-12 and must NOT be rejected as a regression.
        let mut c = Clock::new();
        let big = 256.0 * 57.6; // ≈ 1.47e4 s
        c.advance_to(seconds(big)).unwrap();
        // A handful of ulps below `big`: larger than 1e-12 absolute,
        // comfortably inside the relative tolerance.
        let jitter = big - 5.0 * (big * f64::EPSILON);
        assert!(big - jitter > 1e-12, "test must exceed the old tolerance");
        c.advance_to(seconds(jitter)).unwrap();
        assert_eq!(c.now(), seconds(big), "clock never actually moves back");
        // A genuine regression at scale still errors.
        assert!(matches!(
            c.advance_to(seconds(big - 1.0)),
            Err(SimError::ClockRegression { .. })
        ));
        // Near t = 0 the absolute floor still applies.
        let mut small = Clock::new();
        small.advance_to(seconds(1e-9)).unwrap();
        assert!(matches!(
            small.advance_to(seconds(-1.0)),
            Err(SimError::ClockRegression { .. })
        ));
    }

    #[test]
    fn queue_pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(seconds(3.0), "c");
        q.schedule(seconds(1.0), "a");
        q.schedule(seconds(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(seconds(1.0), 1);
        q.schedule(seconds(1.0), 2);
        q.schedule(seconds(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn pop_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(seconds(1.0), "early");
        q.schedule(seconds(5.0), "late");
        assert_eq!(q.pop_before(seconds(2.0)).map(|(_, e)| e), Some("early"));
        assert_eq!(q.pop_before(seconds(2.0)), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(seconds(9.0), ());
        q.schedule(seconds(4.0), ());
        assert_eq!(q.peek_time(), Some(seconds(4.0)));
    }
}
