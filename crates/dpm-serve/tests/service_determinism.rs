//! End-to-end determinism gates for the `dpm-serve` binary:
//!
//! - a fixed `--stdio` request script produces **byte-identical** output
//!   (and thus a byte-identical telemetry stream) across runs;
//! - a session driven over TCP returns the **same batch trace** as the
//!   identical script over stdio, even while other concurrent sessions
//!   hammer the same server — per-session traces are independent of
//!   transport and of neighbour load;
//! - the loadgen client round-trips a small fleet population cleanly
//!   (exit 0) and gets a corrupted session killed (exit 1).

use dpm_serve::protocol::{QueryKind, Request, Response, SessionSpec};
use dpm_sim::prelude::Disturbance;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_dpm-serve");

fn spec_with_faults() -> SessionSpec {
    let mut spec = SessionSpec::plain("scenario-1", "proposed+safe", 1);
    spec.initial_charge_j = Some(7.0);
    spec.phase_slots = 2;
    spec.faults = vec![
        (
            300.0,
            Disturbance::SupplyScale {
                factor: 0.4,
                duration: dpm_core::units::seconds(600.0),
            },
        ),
        (1200.0, Disturbance::EventBurst { count: 4 }),
    ];
    spec
}

/// The canonical request script driving one session named `name`.
fn session_script(name: &str) -> Vec<Request> {
    vec![
        Request::Open {
            session: name.to_string(),
            spec: spec_with_faults(),
        },
        Request::Advance {
            session: name.to_string(),
            slots: 3,
        },
        Request::SetRates {
            session: name.to_string(),
            rates: vec![0.25, 0.1, 0.4],
        },
        Request::Disturb {
            session: name.to_string(),
            at_s: 2000.0,
            disturbance: Disturbance::ChargingDropout {
                duration: dpm_core::units::seconds(400.0),
            },
        },
        Request::Query {
            session: name.to_string(),
            what: QueryKind::Battery,
        },
        Request::Advance {
            session: name.to_string(),
            slots: 64,
        },
        Request::Query {
            session: name.to_string(),
            what: QueryKind::Degradation,
        },
        Request::Close {
            session: name.to_string(),
        },
    ]
}

fn encode_script(reqs: &[Request], shutdown: bool) -> String {
    let mut lines: Vec<String> = reqs
        .iter()
        .map(|r| serde_json::to_string(r).expect("encode request"))
        .collect();
    if shutdown {
        lines.push("\"Shutdown\"".to_string());
    }
    lines.join("\n")
}

fn run_stdio(script: &str) -> (i32, String) {
    let mut child = Command::new(BIN)
        .args(["stdio", "--audit"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn dpm-serve stdio");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let output = child.wait_with_output().expect("wait");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8(output.stdout).expect("utf8"),
    )
}

/// Extract the `trace` document from the one `Closed` response in a
/// transcript.
fn closed_trace(transcript: &str) -> Vec<String> {
    for line in transcript.lines() {
        if let Ok(Response::Closed {
            trace, audit_ok, ..
        }) = serde_json::from_str(line)
        {
            assert!(audit_ok, "session must audit green");
            return trace;
        }
    }
    panic!("no Closed response in transcript");
}

#[test]
fn stdio_transcripts_are_byte_identical_across_runs() {
    let script = encode_script(&session_script("det"), true);
    let (code_a, out_a) = run_stdio(&script);
    let (code_b, out_b) = run_stdio(&script);
    assert_eq!(code_a, 0);
    assert_eq!(code_b, 0);
    assert!(!out_a.is_empty());
    assert_eq!(out_a, out_b, "stdio transcripts must be byte-identical");
}

struct ServerHandle {
    child: Child,
    addr: String,
}

fn spawn_server() -> ServerHandle {
    let mut child = Command::new(BIN)
        .args(["serve", "--addr", "127.0.0.1:0", "--audit"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn dpm-serve serve");
    let stdout = child.stdout.take().expect("stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("addr in listen line")
        .to_string();
    ServerHandle { child, addr }
}

fn shutdown_server(mut handle: ServerHandle) {
    if let Ok(stream) = TcpStream::connect(&handle.addr) {
        let mut writer = stream;
        let _ = writeln!(writer, "\"Shutdown\"");
        let _ = writer.flush();
        let mut buf = String::new();
        let _ = writer.read_to_string(&mut buf);
    }
    let status = handle.child.wait().expect("server exit");
    assert_eq!(status.code(), Some(0), "server must shut down cleanly");
}

/// Drive `reqs` over one TCP connection, returning the raw response
/// lines.
fn drive_tcp(addr: &str, reqs: &[Request]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut responses = Vec::with_capacity(reqs.len());
    for req in reqs {
        let line = serde_json::to_string(req).expect("encode");
        writeln!(writer, "{line}").expect("send");
        writer.flush().expect("flush");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        assert!(!resp.is_empty(), "server closed early");
        responses.push(resp.trim().to_string());
    }
    responses
}

#[test]
fn tcp_sessions_match_stdio_traces_under_concurrent_load() {
    // Reference: the same script through the deterministic stdio mode.
    let script = encode_script(&session_script("ref"), true);
    let (code, transcript) = run_stdio(&script);
    assert_eq!(code, 0);
    let reference = closed_trace(&transcript);

    let server = spawn_server();
    let addr = server.addr.clone();
    let traces = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let addr = addr.clone();
                s.spawn(move |_| {
                    let name = format!("tcp-{i}");
                    let responses = drive_tcp(&addr, &session_script(&name));
                    let joined = responses.join("\n");
                    closed_trace(&joined)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    })
    .expect("scope");
    shutdown_server(server);

    for (i, trace) in traces.iter().enumerate() {
        assert_eq!(
            trace, &reference,
            "session tcp-{i}: TCP trace must equal the stdio trace"
        );
    }
}

#[test]
fn stdio_metrics_snapshots_are_byte_identical_across_runs() {
    // A script that scrapes mid-run and again after more progress.
    let mut reqs = vec![
        Request::Open {
            session: "m0".to_string(),
            spec: spec_with_faults(),
        },
        Request::Advance {
            session: "m0".to_string(),
            slots: 5,
        },
        Request::Metrics,
        Request::Advance {
            session: "m0".to_string(),
            slots: 7,
        },
    ];
    reqs.push(Request::Metrics);
    let script = encode_script(&reqs, true);

    let extract = |transcript: &str| -> Vec<String> {
        transcript
            .lines()
            .filter_map(|l| match serde_json::from_str(l) {
                Ok(Response::Metrics { text }) => Some(text),
                _ => None,
            })
            .collect()
    };

    let (code_a, out_a) = run_stdio(&script);
    let (code_b, out_b) = run_stdio(&script);
    assert_eq!(code_a, 0);
    assert_eq!(code_b, 0);
    let snaps_a = extract(&out_a);
    let snaps_b = extract(&out_b);
    assert_eq!(snaps_a.len(), 2, "two scrapes in the script");
    assert_eq!(snaps_a, snaps_b, "metrics snapshots must be byte-identical");
    for snap in &snaps_a {
        dpm_serve::metrics::validate(snap).expect("snapshot validates");
    }
    // The scrapes see the session's live progress.
    assert_eq!(
        dpm_serve::metrics::sample(
            &snaps_a[0],
            "dpm_session_slots_stepped_total",
            &[("session", "m0")]
        ),
        Some(5.0)
    );
    assert_eq!(
        dpm_serve::metrics::sample(
            &snaps_a[1],
            "dpm_session_slots_stepped_total",
            &[("session", "m0")]
        ),
        Some(12.0)
    );
}

#[test]
fn tcp_scrapes_validate_under_concurrent_sessions() {
    let server = spawn_server();
    let addr = server.addr.clone();

    // Three sessions, opened and advanced partway — all still live.
    let mut conns = Vec::new();
    for i in 0..3 {
        let name = format!("live-{i}");
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        for req in [
            Request::Open {
                session: name.clone(),
                spec: spec_with_faults(),
            },
            Request::Advance {
                session: name.clone(),
                slots: 4,
            },
        ] {
            let line = serde_json::to_string(&req).expect("encode");
            writeln!(writer, "{line}").expect("send");
            writer.flush().expect("flush");
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("recv");
            assert!(
                !resp.contains("Error"),
                "setup request failed for {name}: {resp}"
            );
        }
        conns.push((name, reader, writer));
    }

    // Scrape from a fresh connection while all three stay open.
    let text = {
        let responses = drive_tcp(&addr, &[Request::Metrics]);
        match serde_json::from_str(&responses[0]) {
            Ok(Response::Metrics { text }) => text,
            other => panic!("unexpected metrics reply: {other:?}"),
        }
    };
    dpm_serve::metrics::validate(&text).expect("scrape validates");
    assert_eq!(
        dpm_serve::metrics::sample(&text, "dpm_serve_sessions_open", &[]),
        Some(3.0)
    );
    for i in 0..3 {
        let name = format!("live-{i}");
        assert_eq!(
            dpm_serve::metrics::sample(
                &text,
                "dpm_session_slots_stepped_total",
                &[("session", &name)]
            ),
            Some(4.0),
            "{name}"
        );
    }

    // Drain the sessions cleanly, then stop the server.
    for (name, mut reader, mut writer) in conns {
        let line = serde_json::to_string(&Request::Close {
            session: name.clone(),
        })
        .expect("encode");
        writeln!(writer, "{line}").expect("send close");
        writer.flush().expect("flush");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv close");
        assert!(resp.contains("Closed"), "{name}: {resp}");
    }
    shutdown_server(server);
}

#[test]
fn loadgen_round_trips_a_clean_fleet_and_kills_a_corrupt_one() {
    // Clean population: exit 0, with a validated post-run scrape.
    let server = spawn_server();
    let metrics_path =
        std::env::temp_dir().join(format!("dpm_loadgen_metrics_{}.prom", std::process::id()));
    let status = Command::new(BIN)
        .args([
            "loadgen",
            "--addr",
            &server.addr,
            "--sessions",
            "3",
            "--periods",
            "1",
            "--seed",
            "7",
            "--metrics",
            &metrics_path.display().to_string(),
        ])
        .status()
        .expect("loadgen clean");
    assert_eq!(status.code(), Some(0), "clean fleet must exit 0");
    let text = std::fs::read_to_string(&metrics_path).expect("metrics file");
    let _ = std::fs::remove_file(&metrics_path);
    dpm_serve::metrics::validate(&text).expect("loadgen scrape validates");
    assert_eq!(
        dpm_serve::metrics::sample(&text, "dpm_serve_sessions_closed_total", &[]),
        Some(3.0)
    );

    // Corrupted session: the auditor must kill it, exit 1.
    let status = Command::new(BIN)
        .args([
            "loadgen",
            "--addr",
            &server.addr,
            "--sessions",
            "3",
            "--periods",
            "1",
            "--seed",
            "7",
            "--corrupt-session",
            "1",
        ])
        .status()
        .expect("loadgen corrupt");
    assert_eq!(
        status.code(),
        Some(1),
        "a detected corruption must exit 1 (2 means undetected)"
    );
    shutdown_server(server);
}
