//! The governor abstraction: anything that picks an operating point once
//! per `τ` slot, given what actually happened in the previous slot.
//!
//! The paper's proposed controller ([`crate::runtime::DpmController`]) and
//! the comparison baselines (`dpm-baselines`) all implement this trait, so
//! the simulator and benches can swap them freely.

use crate::error::DpmError;
use crate::params::OperatingPoint;
use crate::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// Everything a governor may observe at a slot boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotObservation {
    /// Monotone slot counter (0 for the first decision).
    pub slot: u64,
    /// Simulated time at the slot boundary.
    pub time: Seconds,
    /// Measured battery charge right now.
    pub battery: Joules,
    /// Energy the board actually dissipated during the previous slot
    /// (zero on the first decision).
    pub used_last: Joules,
    /// Energy the external source actually delivered during the previous
    /// slot (zero on the first decision). This is the *offered* energy,
    /// before any waste from a full battery.
    pub supplied_last: Joules,
    /// Jobs waiting to be processed (event backlog).
    pub backlog: usize,
}

impl SlotObservation {
    /// The initial observation at `t = 0`.
    pub fn initial(battery: Joules) -> Self {
        Self {
            slot: 0,
            time: Seconds::ZERO,
            battery,
            used_last: Joules::ZERO,
            supplied_last: Joules::ZERO,
            backlog: 0,
        }
    }
}

/// A per-slot power-management policy.
pub trait Governor {
    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Choose the operating point for the slot that begins now.
    ///
    /// # Errors
    /// Implementations return [`DpmError`] when their internal plan cannot
    /// serve the slot (e.g. an exhausted schedule window) rather than
    /// panicking; pure policies simply always return `Ok`.
    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError>;

    /// Whether this policy keeps the processors busy with *background*
    /// useful work (deeper spectral scans, monitoring FFTs) once the event
    /// backlog drains — the paper's "using extra energy for useful work".
    ///
    /// The proposed controller returns `true`: its whole point is that an
    /// energy allocation left unspent before the battery pins at `C_max`
    /// is wasted, so spending it on additional science is free. Reactive
    /// baselines (static, timeout) return the default `false`: they only
    /// power up "while there is input data to process".
    fn uses_surplus_energy(&self) -> bool {
        false
    }

    /// Whether the governor has permanently exhausted its recovery budget
    /// and is limping on a last-resort policy. The simulator treats this
    /// as the trigger for an orderly terminal shutdown when a power
    /// topology is attached: once the fallback budget is spent there is
    /// no path back to planned operation, so the board walks down to its
    /// minimum legal state instead of burning the battery on a frozen
    /// fallback point. Pure policies never exhaust (the default).
    fn exhausted(&self) -> bool {
        false
    }
}

/// Blanket impl so `Box<dyn Governor>` is itself a governor.
impl<G: Governor + ?Sized> Governor for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        (**self).decide(obs)
    }

    fn uses_surplus_energy(&self) -> bool {
        (**self).uses_surplus_energy()
    }

    fn exhausted(&self) -> bool {
        (**self).exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::joules;

    struct Fixed(OperatingPoint);

    impl Governor for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn decide(&mut self, _obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
            Ok(self.0)
        }
    }

    #[test]
    fn initial_observation_is_empty() {
        let obs = SlotObservation::initial(joules(8.0));
        assert_eq!(obs.slot, 0);
        assert_eq!(obs.used_last, Joules::ZERO);
        assert_eq!(obs.battery, joules(8.0));
    }

    #[test]
    fn boxed_governor_delegates() {
        let mut g: Box<dyn Governor> = Box::new(Fixed(OperatingPoint::OFF));
        assert_eq!(g.name(), "fixed");
        let p = g.decide(&SlotObservation::initial(joules(1.0))).unwrap();
        assert!(p.is_off());
    }
}
