//! Offline stand-in for `crossbeam`: the `scope` API this workspace uses,
//! implemented over `std::thread::scope`. A panic in a spawned thread
//! propagates when the scope unwinds (std semantics), so the `Ok` path
//! matches crossbeam's behaviour for non-panicking workloads.

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to this scope. The closure receives the scope,
    /// like crossbeam's, enabling nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before this
/// returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias for API parity.
pub mod thread {
    pub use super::{scope, Scope};
}
