//! Algorithm 1: adjust the power-dissipation schedule so the battery
//! trajectory stays inside `[C_min, C_max]`.
//!
//! The paper's procedure, lines 1–20:
//!
//! 1. collect the stationary points of the trajectory that violate the
//!    battery window (lines 1–2);
//! 2. of two *consecutive* violations of the same kind, keep only the more
//!    extreme one (lines 3–7), so the survivors alternate trough/peak;
//! 3. between each consecutive (trough, peak) or (peak, trough) pair, remap
//!    the trajectory affinely so the trough lands on `C_min` and the peak on
//!    `C_max` (lines 8–18):
//!    `P(t) ← C_min + (C_max − C_min)·(P(t) − P_trough)/(P_peak − P_trough)`;
//! 4. treat the segment that wraps across the period boundary as contiguous
//!    (lines 19–20) — valid because the Eq. 8 normalization makes the
//!    trajectory periodic.
//!
//! Interpretation choices (the paper leaves these implicit):
//!
//! * With exactly **one** violating extremum, there is no opposite partner
//!   to pair with; we anchor the violator to its bound and the global
//!   extremum of the opposite kind to itself (clamped into the window), so
//!   the remap is still affine and the non-violating side is disturbed as
//!   little as possible.
//! * With **no** violations at stationary points the trajectory can still
//!   exit the window on a monotone run that peaks exactly at an endpoint;
//!   the endpoint extrema returned by
//!   [`EnergyTrajectory::stationary_points`] cover that case.
//! * After merging, anchors are remapped *segment by segment* around the
//!   cycle; shared anchors map to identical targets, so the result is
//!   continuous and periodic.

use crate::platform::BatteryLimits;
use crate::series::{EnergyTrajectory, Extremum, ExtremumKind};

/// How the trajectory between two anchors is rebuilt — the choice the
/// paper leaves open after Algorithm 1 ("the amount of stored energy
/// depends on the original power allocation. However, other ways of
/// adjusting can be used. For example, the power can be evenly
/// distributed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReshapeStrategy {
    /// The paper's default: affinely rescale the original trajectory, so
    /// the adjusted allocation keeps the WPUF's *shape* (heavily weighted
    /// slots stay heavy).
    #[default]
    ShapePreserving,
    /// The paper's alternative: a straight line between the anchor
    /// targets, i.e. the net power is constant across the segment — the
    /// allocation absorbs the whole correction uniformly.
    EvenSlope,
}

/// Result of one Algorithm 1 pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ReshapeOutcome {
    /// The reshaped battery trajectory.
    pub trajectory: EnergyTrajectory,
    /// Violating extrema that anchored the remap (after merging).
    pub anchors: Vec<Extremum>,
    /// Whether any remapping happened (false ⇒ input returned unchanged).
    pub changed: bool,
}

/// Run Algorithm 1 on a trajectory with the paper's default
/// (shape-preserving) segment rebuild.
pub fn reshape_trajectory(traj: &EnergyTrajectory, limits: BatteryLimits) -> ReshapeOutcome {
    reshape_trajectory_with(traj, limits, ReshapeStrategy::ShapePreserving)
}

/// Run Algorithm 1 with an explicit segment-rebuild strategy.
pub fn reshape_trajectory_with(
    traj: &EnergyTrajectory,
    limits: BatteryLimits,
    strategy: ReshapeStrategy,
) -> ReshapeOutcome {
    let violating = violating_extrema(traj, limits);
    if violating.is_empty() {
        return ReshapeOutcome {
            trajectory: traj.clone(),
            anchors: Vec::new(),
            changed: false,
        };
    }
    let merged = merge_consecutive(violating);
    let anchors = complete_anchor_set(traj, merged, limits);
    let trajectory = match strategy {
        ReshapeStrategy::ShapePreserving => remap_between_anchors(traj, &anchors, limits),
        ReshapeStrategy::EvenSlope => interpolate_between_anchors(traj, &anchors, limits),
    };
    ReshapeOutcome {
        trajectory,
        anchors,
        changed: true,
    }
}

/// The even-distribution rebuild: replace each cyclic inter-anchor segment
/// with the straight line between its anchor targets. The derivative — and
/// hence the adjusted power allocation — is constant on the segment.
fn interpolate_between_anchors(
    traj: &EnergyTrajectory,
    anchors: &[Extremum],
    limits: BatteryLimits,
) -> EnergyTrajectory {
    let n_pts = traj.points().len();
    let mut out = traj.points().to_vec();
    let k = anchors.len();
    debug_assert!(k >= 2);
    for s in 0..k {
        let a = &anchors[s];
        let b = &anchors[(s + 1) % k];
        let (ta, tb) = (anchor_target(a, limits), anchor_target(b, limits));
        // Cyclic segment length in breakpoints.
        let len = if b.index > a.index {
            b.index - a.index
        } else {
            (n_pts - 1 - a.index) + b.index
        };
        if len == 0 {
            out[a.index] = ta;
            continue;
        }
        let mut i = a.index;
        for step in 0..=len {
            let frac = step as f64 / len as f64;
            out[i] = ta + (tb - ta) * frac;
            if i == n_pts - 1 {
                out[0] = out[n_pts - 1]; // periodic seam
                i = 0;
            }
            if step < len {
                i += 1;
            }
        }
    }
    pin_anchors(&mut out, anchors, limits);
    repair_seam(&mut out, anchors, limits);
    EnergyTrajectory::assemble(traj.slot_width(), out)
}

/// Lines 1–2: stationary points outside the battery window.
fn violating_extrema(traj: &EnergyTrajectory, limits: BatteryLimits) -> Vec<Extremum> {
    traj.stationary_points()
        .into_iter()
        .filter(|e| match e.kind {
            ExtremumKind::Maximum => e.energy.value() > limits.c_max.value() + 1e-12,
            ExtremumKind::Minimum => e.energy.value() < limits.c_min.value() - 1e-12,
        })
        .collect()
}

/// Lines 3–7: collapse runs of same-kind violations to the most extreme one.
fn merge_consecutive(mut extrema: Vec<Extremum>) -> Vec<Extremum> {
    extrema.sort_by_key(|e| e.index);
    let mut out: Vec<Extremum> = Vec::with_capacity(extrema.len());
    for e in extrema {
        match out.last_mut() {
            Some(prev) if prev.kind == e.kind => {
                let keep_new = match e.kind {
                    // Two troughs: keep the *smaller* energy (line 5 removes
                    // the larger).
                    ExtremumKind::Minimum => e.energy.value() < prev.energy.value(),
                    // Two peaks: keep the *larger* (line 7 removes the
                    // smaller).
                    ExtremumKind::Maximum => e.energy.value() > prev.energy.value(),
                };
                if keep_new {
                    *prev = e;
                }
            }
            _ => out.push(e),
        }
    }
    // The list is cyclic (lines 19–20): first and last may also be same-kind
    // neighbours around the wrap.
    if out.len() >= 2 && out[0].kind == out[out.len() - 1].kind {
        let last = out[out.len() - 1];
        let first = out[0];
        let keep_last = match first.kind {
            ExtremumKind::Minimum => last.energy.value() < first.energy.value(),
            ExtremumKind::Maximum => last.energy.value() > first.energy.value(),
        };
        if keep_last {
            out.remove(0);
        } else {
            out.pop();
        }
    }
    out
}

/// When only one violating extremum survives, add the opposite-kind global
/// extremum as a pseudo-anchor so every remap segment has two endpoints.
fn complete_anchor_set(
    traj: &EnergyTrajectory,
    mut anchors: Vec<Extremum>,
    limits: BatteryLimits,
) -> Vec<Extremum> {
    if anchors.len() != 1 {
        return anchors;
    }
    let need = match anchors[0].kind {
        ExtremumKind::Maximum => ExtremumKind::Minimum,
        ExtremumKind::Minimum => ExtremumKind::Maximum,
    };
    let candidate = traj
        .stationary_points()
        .into_iter()
        .filter(|e| e.kind == need && e.index != anchors[0].index)
        .max_by(|a, b| {
            let (av, bv) = (a.energy.value(), b.energy.value());
            match need {
                // Most extreme of the opposite kind.
                ExtremumKind::Maximum => av.total_cmp(&bv),
                ExtremumKind::Minimum => bv.total_cmp(&av),
            }
        });
    if let Some(c) = candidate {
        anchors.push(c);
        anchors.sort_by_key(|e| e.index);
    } else {
        // Degenerate monotone trajectory: fall back to whichever endpoint
        // differs most from the violator.
        let last = traj.points().len() - 1;
        let other = if anchors[0].index == 0 { last } else { 0 };
        anchors.push(Extremum {
            index: other,
            time: crate::units::seconds(other as f64 * traj.slot_width().value()),
            energy: traj.point(other),
            kind: need,
        });
        anchors.sort_by_key(|e| e.index);
    }
    let _ = limits;
    anchors
}

/// Target level an anchor is remapped to: its bound when it violates,
/// its own (clamped) value otherwise — pseudo-anchors barely move.
fn anchor_target(e: &Extremum, limits: BatteryLimits) -> f64 {
    match e.kind {
        ExtremumKind::Maximum => {
            if e.energy.value() > limits.c_max.value() {
                limits.c_max.value()
            } else {
                e.energy.value().max(limits.c_min.value())
            }
        }
        ExtremumKind::Minimum => {
            if e.energy.value() < limits.c_min.value() {
                limits.c_min.value()
            } else {
                e.energy.value().min(limits.c_max.value())
            }
        }
    }
}

/// Lines 8–20: remap each cyclic inter-anchor segment affinely.
fn remap_between_anchors(
    traj: &EnergyTrajectory,
    anchors: &[Extremum],
    limits: BatteryLimits,
) -> EnergyTrajectory {
    let n_pts = traj.points().len();
    let mut out = traj.points().to_vec();
    let k = anchors.len();
    debug_assert!(k >= 2);
    for s in 0..k {
        let a = &anchors[s];
        let b = &anchors[(s + 1) % k];
        let (ta, tb) = (anchor_target(a, limits), anchor_target(b, limits));
        let (pa, pb) = (a.energy.value(), b.energy.value());
        let denom = pb - pa;
        let (lo, hi) = (limits.c_min.value(), limits.c_max.value());
        // Affine map sending pa→ta, pb→tb; a translation if the segment is
        // flat (pa == pb). The translation preserves interior excursions
        // verbatim, so it can push breakpoints past the battery window —
        // clamp the mapped segment back into [C_min, C_max]. Anchor targets
        // already lie inside the window, so clamping never moves them.
        let map = |p: f64| -> f64 {
            if denom.abs() < 1e-12 {
                (ta + (p - pa)).clamp(lo, hi)
            } else {
                (ta + (tb - ta) * (p - pa) / denom).clamp(lo, hi)
            }
        };
        // Walk the cyclic index range [a.index, b.index], wrapping at the
        // duplicated endpoint (index 0 and n_pts-1 are the same instant in
        // periodic time).
        let mut i = a.index;
        loop {
            out[i] = map(traj.points()[i]);
            if i == b.index {
                break;
            }
            i += 1;
            if i == n_pts {
                // Crossed the period boundary: continue from t = 0; keep the
                // wrap consistent by writing the same value at both ends.
                out[n_pts - 1] = map(traj.points()[n_pts - 1]);
                i = 0;
            }
            if i == a.index {
                break; // full cycle (k == 2 with wrap) — safety stop
            }
        }
    }
    pin_anchors(&mut out, anchors, limits);
    repair_seam(&mut out, anchors, limits);
    EnergyTrajectory::assemble(traj.slot_width(), out)
}

/// The segment rebuilds evaluate each anchor through the neighbouring
/// segment's formula, which reproduces the target only up to f64 rounding;
/// downstream feasibility checks compare against the bounds exactly, so
/// write every anchor's target verbatim.
fn pin_anchors(out: &mut [f64], anchors: &[Extremum], limits: BatteryLimits) {
    for e in anchors {
        out[e.index] = anchor_target(e, limits);
    }
}

/// Periodicity repair: breakpoints 0 and `n − 1` represent the same
/// instant, so they must agree after the segment rebuilds. Averaging the
/// two ends would drag an anchor sitting at either end off its exact
/// `C_min`/`C_max` target, so an anchored end wins the seam; only an
/// unanchored seam is averaged.
fn repair_seam(out: &mut [f64], anchors: &[Extremum], limits: BatteryLimits) {
    let last = out.len() - 1;
    let pinned = anchors
        .iter()
        .find(|e| e.index == 0 || e.index == last)
        .map(|e| anchor_target(e, limits));
    let v = pinned.unwrap_or_else(|| 0.5 * (out[0] + out[last]));
    out[0] = v;
    out[last] = v;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::PowerSeries;
    use crate::units::{joules, seconds};

    fn limits() -> BatteryLimits {
        BatteryLimits::new(joules(1.0), joules(10.0)).unwrap()
    }

    fn traj_from_net(net: &[f64], start: f64) -> EnergyTrajectory {
        PowerSeries::new(seconds(1.0), net.to_vec())
            .unwrap()
            .cumulative(joules(start))
    }

    #[test]
    fn in_window_trajectory_is_untouched() {
        let t = traj_from_net(&[1.0, -1.0, 2.0, -2.0], 5.0);
        let r = reshape_trajectory(&t, limits());
        assert!(!r.changed);
        assert_eq!(r.trajectory, t);
    }

    #[test]
    fn peak_above_cmax_is_pulled_down() {
        // Rise to 14, fall back: peak violates C_max = 10.
        let t = traj_from_net(&[4.0, 5.0, -5.0, -4.0], 5.0);
        assert!(t.max_energy() > joules(10.0));
        let r = reshape_trajectory(&t, limits());
        assert!(r.changed);
        assert!(
            r.trajectory.within(joules(1.0), joules(10.0), 1e-9),
            "{:?}",
            r.trajectory.points()
        );
        // The peak breakpoint now sits exactly at C_max.
        assert!(r.trajectory.max_energy().approx_eq(joules(10.0), 1e-9));
    }

    #[test]
    fn trough_below_cmin_is_lifted() {
        let t = traj_from_net(&[-3.0, -3.0, 3.0, 3.0], 5.0);
        assert!(t.min_energy() < joules(1.0));
        let r = reshape_trajectory(&t, limits());
        assert!(r.trajectory.min_energy().approx_eq(joules(1.0), 1e-9));
        assert!(r.trajectory.within(joules(1.0), joules(10.0), 1e-9));
    }

    #[test]
    fn opposite_violations_map_to_full_window() {
        // Deep trough then tall peak.
        let t = traj_from_net(&[-5.0, -1.0, 8.0, 6.0, -4.0, -4.0], 6.0);
        assert!(t.min_energy() < joules(1.0) && t.max_energy() > joules(10.0));
        let r = reshape_trajectory(&t, limits());
        assert!(
            r.trajectory.within(joules(1.0), joules(10.0), 1e-9),
            "{:?}",
            r.trajectory.points()
        );
        assert!(r.trajectory.min_energy().approx_eq(joules(1.0), 1e-9));
        assert!(r.trajectory.max_energy().approx_eq(joules(10.0), 1e-9));
    }

    #[test]
    fn consecutive_same_kind_violations_merge_to_deepest() {
        // Two troughs (−2 then −4) separated by a small bump, then recovery.
        let t = traj_from_net(&[-8.0, 2.0, -4.0, -2.0, 6.0, 6.0], 6.0);
        let r = reshape_trajectory(&t, limits());
        assert!(
            r.trajectory.within(joules(1.0), joules(10.0), 1e-6),
            "{:?}",
            r.trajectory.points()
        );
        // The deepest trough is pinned at C_min.
        assert!(r.trajectory.min_energy().approx_eq(joules(1.0), 1e-6));
    }

    #[test]
    fn wraparound_segment_is_remapped() {
        // Peak near the period end, trough near the start: the segment
        // between them crosses the boundary.
        // Trough near the start must violate, peak near the end.
        let t = traj_from_net(&[-6.5, 1.0, 2.0, 4.0, 6.0, -6.5], 7.0);
        assert!(t.min_energy() < joules(1.0));
        let r = reshape_trajectory(&t, limits());
        assert!(
            r.trajectory.within(joules(1.0), joules(10.0), 1e-6),
            "{:?}",
            r.trajectory.points()
        );
        // Periodicity preserved.
        let pts = r.trajectory.points();
        assert!((pts[0] - pts[pts.len() - 1]).abs() < 1e-9);
    }

    #[test]
    fn reshaped_trajectory_is_continuous() {
        let t = traj_from_net(&[5.0, 6.0, -9.0, -8.0, 4.0, 2.0], 5.0);
        let r = reshape_trajectory(&t, limits());
        // Continuity here just means finite slopes — no NaN/jump artifacts.
        let d = r.trajectory.derivative();
        assert!(d.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn merge_keeps_most_extreme_peak() {
        let ex = |index: usize, e: f64, kind| Extremum {
            index,
            time: seconds(index as f64),
            energy: joules(e),
            kind,
        };
        let merged = merge_consecutive(vec![
            ex(1, 12.0, ExtremumKind::Maximum),
            ex(3, 15.0, ExtremumKind::Maximum),
            ex(5, 0.0, ExtremumKind::Minimum),
        ]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].index, 3);
        assert_eq!(merged[0].energy, joules(15.0));
    }

    #[test]
    fn merge_handles_cyclic_same_kind_ends() {
        let ex = |index: usize, e: f64, kind| Extremum {
            index,
            time: seconds(index as f64),
            energy: joules(e),
            kind,
        };
        // Trough …, peak, trough: ends are both troughs around the wrap.
        let merged = merge_consecutive(vec![
            ex(0, 0.5, ExtremumKind::Minimum),
            ex(3, 12.0, ExtremumKind::Maximum),
            ex(5, 0.2, ExtremumKind::Minimum),
        ]);
        assert_eq!(merged.len(), 2);
        // The deeper trough (0.2) survives.
        assert!(merged.iter().any(|e| e.energy == joules(0.2)));
        assert!(!merged.iter().any(|e| e.energy == joules(0.5)));
    }

    #[test]
    fn seam_repair_keeps_endpoint_anchor_pinned() {
        // Violating trough at breakpoint 0. The seam repair used to average
        // breakpoints 0 and n−1 *after* the remap, dragging the anchored
        // endpoint off its exact C_min target (it landed at ≈1.83).
        let t = traj_from_net(&[3.0, 3.0, -2.0, -2.0], 0.0); // [0, 3, 6, 4, 2]
        assert!(t.min_energy() < joules(1.0));
        let r = reshape_trajectory(&t, limits());
        assert!(r.anchors.iter().any(|e| e.index == 0));
        let pts = r.trajectory.points();
        assert_eq!(pts[0], pts[pts.len() - 1], "periodic seam must agree");
        assert!(
            (pts[0] - 1.0).abs() < 1e-9,
            "anchor at the seam must stay on C_min: {pts:?}"
        );
        assert!(r.trajectory.within(joules(1.0), joules(10.0), 1e-9));
    }

    #[test]
    fn even_slope_seam_repair_keeps_endpoint_anchor_pinned() {
        let t = traj_from_net(&[3.0, 3.0, -2.0, -2.0], 0.0);
        let r = reshape_trajectory_with(&t, limits(), ReshapeStrategy::EvenSlope);
        let pts = r.trajectory.points();
        assert_eq!(pts[0], pts[pts.len() - 1]);
        assert!(
            (pts[0] - 1.0).abs() < 1e-9,
            "anchor at the seam must stay on C_min: {pts:?}"
        );
        assert!(r.trajectory.within(joules(1.0), joules(10.0), 1e-9));
    }

    #[test]
    fn flat_segment_translation_is_clamped_into_window() {
        // Hand-built anchor pair with *equal* energies, forcing the
        // translation fallback of the affine map. The interior breakpoint
        // sits near C_max, so the unclamped translation `ta + (p − pa)`
        // used to push it above the window.
        let ex = |index: usize, e: f64, kind| Extremum {
            index,
            time: seconds(index as f64),
            energy: joules(e),
            kind,
        };
        let t = EnergyTrajectory::from_points(seconds(1.0), vec![0.5, 9.8, 0.5]).unwrap();
        let anchors = vec![
            ex(0, 0.5, ExtremumKind::Minimum),
            ex(2, 0.5, ExtremumKind::Maximum),
        ];
        let out = remap_between_anchors(&t, &anchors, limits());
        // Translation is +0.5 (trough 0.5 → C_min 1.0): 9.8 would become
        // 10.3 > C_max without the clamp.
        assert!(
            out.within(joules(1.0), joules(10.0), 1e-9),
            "{:?}",
            out.points()
        );
    }

    #[test]
    fn energy_redistribution_preserves_slot_count() {
        let t = traj_from_net(&[4.0, 5.0, -5.0, -4.0], 5.0);
        let r = reshape_trajectory(&t, limits());
        assert_eq!(r.trajectory.segments(), t.segments());
    }
}
