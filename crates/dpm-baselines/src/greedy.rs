//! The greedy governor: battery-aware but schedule-blind.
//!
//! Each slot it budgets the power it could sustain *right now* — last
//! slot's measured supply plus a drawdown of the charge above `C_min`
//! spread over a configurable horizon — and takes the best Pareto point
//! inside that budget, but only when work is waiting. It repairs the
//! static baseline's brown-outs without fixing its wasted-charge problem
//! (it cannot pre-spend energy it doesn't know is coming).

use dpm_core::error::DpmError;
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::{OperatingPoint, ParetoTable};
use dpm_core::platform::Platform;
use dpm_core::units::{watts, Watts};

/// Myopic battery-aware governor.
#[derive(Debug, Clone)]
pub struct GreedyGovernor {
    platform: Platform,
    pareto: ParetoTable,
    /// Slots over which the greedy policy is willing to drain the usable
    /// charge (1 = spend it all this slot).
    drain_horizon: f64,
}

impl GreedyGovernor {
    /// Build with a drain horizon in slots (≥ 1).
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] on a horizon below one slot,
    /// [`DpmError::InvalidPlatform`] on a degenerate platform.
    pub fn new(platform: Platform, drain_horizon: f64) -> Result<Self, DpmError> {
        if !(drain_horizon >= 1.0) {
            return Err(DpmError::InvalidParameter {
                name: "drain_horizon",
                reason: format!("must be >= 1 slot, got {drain_horizon}"),
            });
        }
        let pareto = ParetoTable::build(&platform)?;
        Ok(Self {
            platform,
            pareto,
            drain_horizon,
        })
    }

    /// The power budget for this slot.
    fn budget(&self, obs: &SlotObservation) -> Watts {
        let tau = self.platform.tau;
        let usable = (obs.battery - self.platform.battery.c_min).max(dpm_core::units::Joules::ZERO);
        let from_battery = usable / (tau * self.drain_horizon / 1.0);
        let from_supply = if obs.slot == 0 {
            Watts::ZERO
        } else {
            obs.supplied_last / tau
        };
        watts(from_battery.value() + from_supply.value())
    }
}

impl Governor for GreedyGovernor {
    fn name(&self) -> &str {
        "greedy"
    }

    fn uses_surplus_energy(&self) -> bool {
        true // battery-aware: spends affordable energy on background work
    }

    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        Ok(self.pareto.best_within(self.budget(obs)).point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::{joules, Joules, Seconds};

    fn obs(battery: f64, supplied: f64, backlog: usize) -> SlotObservation {
        SlotObservation {
            slot: 1,
            time: Seconds(4.8),
            battery: joules(battery),
            used_last: Joules::ZERO,
            supplied_last: joules(supplied),
            backlog,
        }
    }

    #[test]
    fn idle_with_energy_still_runs_background_work() {
        // Greedy uses surplus energy (background science), so an empty
        // backlog with a charged battery still activates workers.
        let mut g = GreedyGovernor::new(Platform::pama(), 4.0).unwrap();
        assert!(g.uses_surplus_energy());
        assert!(!g.decide(&obs(16.0, 11.3, 0)).unwrap().is_off());
    }

    #[test]
    fn full_battery_and_sun_runs_hard() {
        let mut g = GreedyGovernor::new(Platform::pama(), 4.0).unwrap();
        let p = g.decide(&obs(16.0, 2.36 * 4.8, 5)).unwrap();
        // Budget ≈ 15.5/(4·4.8) + 2.36 ≈ 3.17 W ⇒ a hefty point.
        assert!(p.workers >= 4, "{p}");
    }

    #[test]
    fn empty_battery_throttles_down() {
        let mut g = GreedyGovernor::new(Platform::pama(), 4.0).unwrap();
        let p = g.decide(&obs(0.6, 0.0, 5)).unwrap();
        // Budget ≈ 0.1/(19.2) ≈ 5 mW: below even the standby floor ⇒ off.
        assert!(p.is_off(), "{p}");
    }

    #[test]
    fn longer_horizon_is_more_conservative() {
        let mut fast = GreedyGovernor::new(Platform::pama(), 1.0).unwrap();
        let mut slow = GreedyGovernor::new(Platform::pama(), 12.0).unwrap();
        let o = obs(8.0, 0.0, 5);
        let pf = fast.decide(&o).unwrap();
        let ps = slow.decide(&o).unwrap();
        let power = |p: OperatingPoint| {
            if p.is_off() {
                0.0
            } else {
                Platform::pama().board_power(p.workers, p.frequency).value()
            }
        };
        assert!(power(pf) >= power(ps), "{pf} vs {ps}");
    }
}
