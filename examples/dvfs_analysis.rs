//! The §4.2 analysis, visualized: which knob — frequency or processors —
//! buys more performance per watt, and the Eq. 18 operating-point policy
//! it induces on a DVFS-capable variant of the PAMA board.
//!
//! ```sh
//! cargo run --example dvfs_analysis
//! ```

use dpm_core::model::{AmdahlWorkload, VoltageFrequencyMap};
use dpm_core::params::analysis;
use dpm_core::params::continuous_operating_point;
use dpm_core::platform::Platform;
use dpm_core::units::{seconds, volts, watts, Hertz};

fn main() {
    // A DVFS-capable board: ideal alpha-power law v ∝ f (the paper's
    // power ∝ f·v² then gives the cubic regime above the pivot).
    let mut platform = Platform::pama_dvfs();
    platform.vf = VoltageFrequencyMap::Affine {
        slope: 80.0e6 / 3.3,
        threshold: volts(0.0),
    };
    platform.v_min = volts(0.8);
    platform.v_max = volts(3.3);
    // Tt/Ts = 5 ⇒ the Eq. 18 breakpoint n* = 2·(5−1) = 8.
    platform.workload = AmdahlWorkload::new(seconds(4.8), seconds(0.96), Hertz::from_mhz(20.0))
        .expect("example workload constants are valid");

    let w = &platform.workload;
    println!(
        "workload: Tt = {:.1} s, Ts = {:.2} s  ⇒  n* = 2(Tt/Ts − 1) = {:.0}\n",
        w.total.value(),
        w.serial.value(),
        w.breakpoint_processors().unwrap()
    );

    // --- Eq. 14 / Eq. 17 ratios vs n ---------------------------------------
    println!("marginal-gain ratio (∂Perf/∂P at const n) / (∂Perf/∂P at const f):");
    println!("   n   below pivot (Eq.14)   above pivot (Eq.17)   prefer above pivot");
    for n in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0] {
        let r14 = analysis::eq14_ratio(w, n);
        let r17 = analysis::eq17_ratio(w, n);
        let prefer = if (r17 - 1.0).abs() < 1e-9 {
            "tied"
        } else if r17 > 1.0 {
            "frequency"
        } else {
            "processors"
        };
        println!("  {n:>4.0}   {r14:>19.2}   {r17:>19.2}   {prefer}");
    }

    // --- the Eq. 18 policy curve --------------------------------------------
    println!("\nEq. 18 continuous operating point vs power budget:");
    println!("  P (W)      n      f (MHz)   regime");
    let g_vmin = platform.vf.pivot_frequency(platform.v_min);
    for i in 1..=16 {
        let p = watts(0.002 * (1.6_f64).powi(i));
        let pt = continuous_operating_point(&platform, p);
        let f_max = platform.vf.max_frequency(platform.v_max);
        let regime = if pt.f.value() < g_vmin.value() - 1.0 {
            "1: one chip, grow f"
        } else if (pt.f.value() - g_vmin.value()).abs() < 1.0 {
            "2: grow n at pivot"
        } else if pt.f.value() < f_max.value() - 1.0 {
            // n* = 8 exceeds the 7 available workers, so n pins at the cap
            // while frequency and voltage absorb the budget.
            "3: hold n* (capped), grow f&v"
        } else {
            "4: max f, grow n"
        };
        println!(
            "  {:>7.3}  {:>5.2}  {:>9.2}   {regime}",
            p.value(),
            pt.n,
            pt.f.mhz()
        );
    }

    // --- numerical check of the derivation ---------------------------------
    let n = 3.0;
    let f_below = Hertz::from_mhz(0.4 * g_vmin.mhz());
    let at = analysis::power_continuous(&platform, n, f_below);
    let h = at.value() * 1e-4;
    let measured = analysis::dperf_dpower_fixed_n(&platform, n, at, h)
        / analysis::dperf_dpower_fixed_f(&platform, f_below, at, h);
    println!(
        "\nnumerical check below the pivot at n = {n}: measured ratio {:.3}, Eq. 14 predicts {:.3}",
        measured,
        analysis::eq14_ratio(w, n)
    );
}
