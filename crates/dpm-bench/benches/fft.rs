//! FFT substrate bench: fixed-point transform throughput vs. size, the
//! fork-join executor vs. worker count (the Fig. 2 task graph on host
//! threads), and the end-to-end FORTE detection chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_fft::prelude::*;
use std::hint::black_box;

fn signal(n: usize) -> Vec<CQ15> {
    quantize(
        &(0..n)
            .map(|i| {
                let x = i as f64;
                (0.3 * (0.17 * x).sin() + 0.2 * (0.05 * x).cos(), 0.0)
            })
            .collect::<Vec<_>>(),
    )
}

fn bench_serial_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft/serial");
    for k in [8u32, 10, 11, 12, 14] {
        let n = 1usize << k;
        let fft = FixedFft::new(n);
        let data = signal(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                fft.transform(&mut buf, Direction::Forward);
                black_box(buf)
            })
        });
    }
    group.finish();
}

fn bench_forkjoin_workers(c: &mut Criterion) {
    let n = 1usize << 14; // big enough that threads pay off
    let data = signal(n);
    let mut group = c.benchmark_group("fft/forkjoin");
    group.throughput(Throughput::Elements(n as u64));
    for workers in [1usize, 2, 4, 7] {
        let fft = ForkJoinFft::new(n, workers);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                black_box(fft.transform(&mut buf))
            })
        });
    }
    group.finish();
}

fn bench_detection_chain(c: &mut Criterion) {
    let detector = TransientDetector::new(DetectorConfig::default());
    let capture = generate(&CaptureSpec::with_transient(), 42);
    let quantized = quantize(&capture);
    c.bench_function("fft/forte_detect_2k", |b| {
        b.iter(|| {
            let mut buf = quantized.clone();
            black_box(detector.detect_q15(&mut buf))
        })
    });
}

/// Short measurement windows: these benches exist to track regressions and
/// print experiment logs, not to resolve microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_serial_sizes, bench_forkjoin_workers, bench_detection_chain
}
criterion_main!(benches);
