//! The PAMA board: eight PIMs, the ring interconnect, and the job pipeline.
//!
//! Processor 0 is the controller (it runs the governor and never takes
//! jobs); processors 1–7 are workers. The board accepts an
//! [`OperatingPoint`] command each slot, drives the per-chip mode and
//! frequency transitions, and processes the FFT job queue at the Eq. 3
//! throughput of the active configuration, with the scatter/gather serial
//! time supplied by the ring model.

use crate::commands::{Command, CommandBus};
use crate::network::{RingConfig, RingNetwork};
use crate::processor::{Mode, Processor, TransitionLatency};
use dpm_core::params::OperatingPoint;
use dpm_core::platform::Platform;
use dpm_core::units::{Seconds, Watts};
use std::collections::VecDeque;
use std::sync::Arc;

/// Pure per-board kernels shared by [`PamaBoard`] and the
/// struct-of-arrays fleet stepper ([`crate::fleet`]).
///
/// As with [`crate::battery::kernel`], these are the single
/// implementation of the board arithmetic; the scalar board delegates to
/// them and the fleet calls them on raw state, so both paths are
/// bit-identical by construction. The operation order is load-bearing.
pub mod kernel {
    use dpm_core::params::OperatingPoint;
    use dpm_core::platform::Platform;

    /// The chip-activation predicate of [`super::PamaBoard::apply`]: the
    /// controller always runs when the board is on; healthy worker chips
    /// run until `workers` of them have been activated.
    #[inline]
    pub fn chip_should_run(
        point: &OperatingPoint,
        faulted: bool,
        is_controller: bool,
        activated: usize,
        workers: usize,
    ) -> bool {
        !point.is_off() && !faulted && (is_controller || activated < workers)
    }

    /// Throughput of `point` on `platform` with `healthy_workers` healthy
    /// worker chips, jobs/s (0 when off or no workers).
    pub fn service_rate(
        platform: &Platform,
        point: &OperatingPoint,
        healthy_workers: usize,
    ) -> f64 {
        if point.is_off() {
            return 0.0;
        }
        let workers = point.workers.min(platform.workers()).min(healthy_workers);
        if workers == 0 {
            return 0.0;
        }
        platform
            .perf_model()
            .throughput(workers, point.frequency, point.voltage)
            .value()
    }

    /// Backlog-limited busy-fraction target for an interval of `dt`
    /// seconds at `rate` jobs/s with `pending` job-units outstanding.
    #[inline]
    pub fn work_fraction(rate: f64, dt: f64, pending: f64, elastic: bool) -> f64 {
        let capacity = rate * dt;
        if capacity <= 0.0 {
            0.0
        } else if elastic {
            1.0
        } else {
            (pending / capacity).clamp(0.0, 1.0)
        }
    }

    /// Outstanding work in job units: `backlog` queued jobs minus the
    /// progress already made on the head job.
    #[inline]
    pub fn pending_work(backlog: usize, progress: f64) -> f64 {
        if backlog == 0 {
            0.0
        } else {
            backlog as f64 - progress
        }
    }

    /// Drain up to `capacity` job-units from a queue of `backlog` jobs
    /// with fractional head-job `progress`. Calls `on_complete(consumed)`
    /// once per finished job with the job-units consumed so far (the
    /// scalar board uses it to pop the arrival queue and interpolate the
    /// completion time). Returns `(jobs_completed, capacity_left)`.
    #[inline]
    pub fn drain_queue(
        capacity: f64,
        progress: &mut f64,
        backlog: usize,
        mut on_complete: impl FnMut(f64),
    ) -> (u64, f64) {
        let mut remaining = capacity;
        let mut completed = 0u64;
        let mut left = backlog;
        while remaining > 0.0 && left > 0 {
            let need = 1.0 - *progress;
            if remaining >= need {
                remaining -= need;
                *progress = 0.0;
                left -= 1;
                completed += 1;
                on_complete(capacity - remaining);
            } else {
                *progress += remaining;
                remaining = 0.0;
            }
        }
        (completed, remaining)
    }

    /// Busy fraction of the interval given the capacity left over.
    #[inline]
    pub fn busy_fraction(capacity: f64, remaining: f64, rate: f64, dt: f64) -> f64 {
        let busy = (capacity - remaining) / (rate * dt).max(1e-12);
        busy.clamp(0.0, 1.0)
    }
}

/// Job-latency statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Completed jobs measured.
    pub count: u64,
    /// Sum of queue+service latencies (s).
    pub sum: f64,
    /// Worst observed latency (s).
    pub max: f64,
}

impl LatencyStats {
    /// Mean latency, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The simulated board.
pub struct PamaBoard {
    platform: Arc<Platform>,
    processors: Vec<Processor>,
    ring: RingNetwork,
    /// Arrival times of queued jobs (head = oldest).
    queue: VecDeque<Seconds>,
    /// Fractional progress on the head job, `[0, 1)`.
    progress: f64,
    current: OperatingPoint,
    /// Backlog cap: events past this are dropped (telemetry buffer size).
    max_backlog: usize,
    jobs_done: u64,
    dropped: u64,
    background_work: f64,
    latency: LatencyStats,
    /// Per-chip rail state from the power topology (`false` = the broker
    /// cut the chip's supply). A railless board is all-`true`, which makes
    /// every path below bit-identical to the pre-topology behavior.
    powered: Vec<bool>,
    /// Per-chip impairment: the chip draws its commanded power but
    /// contributes no throughput (flat, topology-blind governance keeps
    /// activating chips whose provider element is dead).
    impaired: Vec<bool>,
}

impl PamaBoard {
    /// Build from a platform description (chip count, mode powers, τ, …).
    /// Callers validate the platform first ([`crate::sim::Simulation::new`]
    /// does); a malformed one is a caller bug. Accepts the platform by
    /// value or pre-shared — fleet setup passes one `Arc<Platform>` to
    /// every board instead of deep-cloning the menus per board.
    pub fn new(platform: impl Into<Arc<Platform>>) -> Self {
        let platform = platform.into();
        debug_assert!(platform.validate().is_ok(), "invalid platform");
        let latency = TransitionLatency::pama();
        let count = platform.processors;
        let processors = (0..count)
            .map(|id| Processor::new(id, platform.f_min(), platform.power.modes, latency))
            .collect();
        Self {
            platform,
            processors,
            ring: RingNetwork::new(RingConfig::pama()),
            queue: VecDeque::new(),
            progress: 0.0,
            current: OperatingPoint::OFF,
            max_backlog: 256,
            jobs_done: 0,
            dropped: 0,
            background_work: 0.0,
            latency: LatencyStats::default(),
            powered: vec![true; count],
            impaired: vec![false; count],
        }
    }

    /// Override the backlog cap.
    pub fn with_max_backlog(mut self, cap: usize) -> Self {
        assert!(cap >= 1);
        self.max_backlog = cap;
        self
    }

    /// Queued (unfinished) jobs.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Jobs completed so far.
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done
    }

    /// Events dropped because the backlog cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Latency statistics of completed jobs.
    pub fn latency(&self) -> LatencyStats {
        self.latency
    }

    /// The operating point currently applied.
    pub fn operating_point(&self) -> OperatingPoint {
        self.current
    }

    /// The chips (for inspection in tests/benches).
    pub fn processors(&self) -> &[Processor] {
        &self.processors
    }

    /// The ring (for traffic statistics).
    pub fn ring(&self) -> &RingNetwork {
        &self.ring
    }

    /// Inject (`faulted = true`) or clear a fail-stop processor fault at
    /// chip `index`. Out-of-range indices are ignored — a generated fault
    /// plan must not be able to crash the board model.
    pub fn set_fault(&mut self, index: usize, faulted: bool, t: Seconds) {
        if let Some(chip) = self.processors.get_mut(index) {
            chip.set_fault(faulted, t);
        }
    }

    /// Cut (`powered = false`) or restore a chip's supply rail, as decided
    /// by the power-topology broker. An unpowered chip drops to standby
    /// immediately (the standby floor stands in for rail leakage) and is
    /// skipped by [`apply`](Self::apply) until the rail returns.
    /// Out-of-range indices are ignored.
    pub fn set_powered(&mut self, index: usize, powered: bool, t: Seconds) {
        if let Some(slot) = self.powered.get_mut(index) {
            *slot = powered;
            if !powered {
                if let Some(chip) = self.processors.get_mut(index) {
                    chip.set_mode(Mode::Standby, t);
                }
            }
        }
    }

    /// Mark a chip impaired (flat, topology-blind governance: the chip is
    /// commanded and draws active power but its provider element is dead,
    /// so it contributes no throughput). Out-of-range indices are ignored.
    pub fn set_impaired(&mut self, index: usize, impaired: bool) {
        if let Some(slot) = self.impaired.get_mut(index) {
            *slot = impaired;
        }
    }

    /// Whether chip `index` has rail power (out-of-range reads false).
    pub fn is_powered(&self, index: usize) -> bool {
        self.powered.get(index).copied().unwrap_or(false)
    }

    /// Whether chip `index` is impaired (out-of-range reads false).
    pub fn is_impaired(&self, index: usize) -> bool {
        self.impaired.get(index).copied().unwrap_or(false)
    }

    /// Worker chips (controller excluded) currently healthy.
    pub fn healthy_workers(&self) -> usize {
        self.processors
            .iter()
            .skip(self.platform.reserved)
            .filter(|p| !p.is_faulted())
            .count()
    }

    /// Chips currently failed-stop (controller included).
    pub fn faulted_count(&self) -> usize {
        self.processors.iter().filter(|p| p.is_faulted()).count()
    }

    /// Apply a governor command at time `t`. Returns the worst-case
    /// transition latency across the chips (the parallel stage cannot
    /// start before every participant is up).
    ///
    /// Faulted chips are skipped: the commanded worker count activates the
    /// first `workers` *healthy* worker chips, so a board with spare
    /// capacity routes around a failed PIM (with no faults the assignment
    /// is the original positional one).
    pub fn apply(&mut self, point: OperatingPoint, t: Seconds) -> Seconds {
        let mut worst = Seconds::ZERO;
        let workers = point.workers.min(self.platform.workers());
        let mut activated = 0usize;
        let powered = &self.powered;
        for (idx, chip) in self.processors.iter_mut().enumerate() {
            let is_controller = idx < self.platform.reserved;
            let blocked = chip.is_faulted() || !powered.get(idx).copied().unwrap_or(true);
            let should_run =
                kernel::chip_should_run(&point, blocked, is_controller, activated, workers);
            if should_run {
                if !is_controller {
                    activated += 1;
                }
                if point.frequency.value() > 0.0 {
                    worst = worst.max(chip.set_frequency(point.frequency, t));
                }
                worst = worst.max(chip.set_mode(Mode::Active, t));
            } else {
                chip.set_mode(Mode::Standby, t);
            }
        }
        self.current = point;
        worst
    }

    /// Apply a governor command through the §5 command protocol: the
    /// controller issues per-chip ring commands via `bus`, each worker
    /// acts at its delivery time, and the returned latency is the
    /// worst-case readiness across the chips (delivery + mode/frequency
    /// transition) relative to `t`.
    pub fn apply_with_bus(
        &mut self,
        point: OperatingPoint,
        t: Seconds,
        bus: &mut CommandBus,
    ) -> Seconds {
        let workers = point.workers.min(self.platform.workers());
        let mut worst = Seconds::ZERO;
        let mut activated = 0usize;
        for idx in 0..self.processors.len() {
            let is_controller = idx < self.platform.reserved;
            let blocked = self.processors[idx].is_faulted()
                || !self.powered.get(idx).copied().unwrap_or(true);
            let should_run =
                kernel::chip_should_run(&point, blocked, is_controller, activated, workers);
            if should_run && !is_controller {
                activated += 1;
            }
            // The controller itself switches locally (no ring trip).
            let effective = if is_controller {
                t
            } else {
                let mut eff = t;
                if should_run && point.frequency.value() > 0.0 {
                    eff = eff.max(bus.send(
                        &mut self.ring,
                        idx,
                        Command::SetFrequency(point.frequency),
                        t,
                    ));
                }
                let mode_cmd = if should_run {
                    Command::Wake
                } else {
                    Command::Standby
                };
                eff.max(bus.send(&mut self.ring, idx, mode_cmd, t))
            };
            let chip = &mut self.processors[idx];
            let mut chip_latency = Seconds::ZERO;
            if should_run {
                if point.frequency.value() > 0.0 {
                    chip_latency = chip_latency.max(chip.set_frequency(point.frequency, effective));
                }
                chip_latency = chip_latency.max(chip.set_mode(Mode::Active, effective));
            } else {
                chip.set_mode(Mode::Standby, effective);
            }
            let ready = Seconds(effective.value() + chip_latency.value() - t.value());
            worst = worst.max(ready);
        }
        // Drain the bus: every command above took effect at its time.
        let _ = bus.take_effective(Seconds(t.value() + worst.value() + 1.0));
        self.current = point;
        worst
    }

    /// Instantaneous board power at the applied point, all chips running.
    pub fn power(&self) -> Watts {
        let cal = self.platform.f_max();
        self.processors.iter().map(|p| p.power(cal)).sum()
    }

    /// Board power with every chip in standby — what the board draws in
    /// the idle gaps between jobs (the paper's "turned off while there is
    /// no input data": chips drop to standby the moment the queue empties
    /// and wake on the next event, with no modelled overhead).
    pub fn idle_power(&self) -> Watts {
        self.platform.power.all_standby()
    }

    /// Outstanding work in job units: queued jobs minus the progress
    /// already made on the head job.
    pub fn pending_work(&self) -> f64 {
        kernel::pending_work(self.queue.len(), self.progress)
    }

    /// Worker chips that would serve jobs at the applied point *right
    /// now*: the first `workers` unblocked (healthy and powered) worker
    /// chips, minus any that are impaired. Computed live so a mid-slot
    /// fault or rail cut takes effect immediately — with no topology
    /// attached this reduces exactly to `min(commanded, healthy)`.
    pub fn service_workers(&self) -> usize {
        if self.current.is_off() {
            return 0;
        }
        let workers = self.current.workers.min(self.platform.workers());
        let mut activated = 0usize;
        let mut effective = 0usize;
        for (idx, chip) in self
            .processors
            .iter()
            .enumerate()
            .skip(self.platform.reserved)
        {
            if activated >= workers {
                break;
            }
            if chip.is_faulted() || !self.powered.get(idx).copied().unwrap_or(true) {
                continue;
            }
            activated += 1;
            if !self.impaired.get(idx).copied().unwrap_or(false) {
                effective += 1;
            }
        }
        effective
    }

    /// Throughput of the applied point, jobs/s (0 when off). Capped by the
    /// serviceable worker count: faulted, unpowered, and impaired chips
    /// contribute nothing.
    pub fn service_rate(&self) -> f64 {
        kernel::service_rate(&self.platform, &self.current, self.service_workers())
    }

    /// Fraction of an interval `dt` the workers would spend computing.
    /// With `elastic` work (background science soaking surplus capacity)
    /// an active board is busy throughout; otherwise busyness is backlog-
    /// limited: `min(1, work/capacity)`.
    pub fn work_fraction(&self, dt: Seconds, elastic: bool) -> f64 {
        kernel::work_fraction(
            self.service_rate(),
            dt.value(),
            self.pending_work(),
            elastic,
        )
    }

    /// Background work performed (job-equivalents of surplus capacity
    /// spent on elastic science rather than queued events).
    pub fn background_work(&self) -> f64 {
        self.background_work
    }

    /// Enqueue `n` event-triggered jobs arriving at `t`; drops overflow.
    pub fn enqueue(&mut self, n: usize, t: Seconds) {
        for _ in 0..n {
            if self.queue.len() >= self.max_backlog {
                self.dropped += 1;
            } else {
                self.queue.push_back(t);
            }
        }
    }

    /// Advance job processing by `dt` at the current point, with
    /// `availability ∈ [0, 1]` scaling for brown-outs (the battery could
    /// not deliver the full demand) and `elastic` declaring whether
    /// leftover capacity performs background work. Returns
    /// `(jobs_completed, busy_fraction)` where `busy_fraction` is the
    /// share of the interval the workers spent computing.
    pub fn advance(
        &mut self,
        t: Seconds,
        dt: Seconds,
        availability: f64,
        elastic: bool,
    ) -> (u64, f64) {
        assert!((0.0..=1.0).contains(&availability));
        if self.current.is_off() {
            return (0, 0.0);
        }
        if self.queue.is_empty() && self.progress == 0.0 && !elastic {
            return (0, 0.0);
        }
        let rate = self.service_rate();
        if rate <= 0.0 {
            return (0, 0.0);
        }
        let capacity = rate * dt.value() * availability;
        let queue = &mut self.queue;
        let latency = &mut self.latency;
        let jobs_done = &mut self.jobs_done;
        let (completed, mut remaining) =
            kernel::drain_queue(capacity, &mut self.progress, queue.len(), |consumed| {
                if let Some(arrival) = queue.pop_front() {
                    // Completion time: interpolate within the step.
                    let done_at = t.value() + consumed / capacity * dt.value();
                    let lat = (done_at - arrival.value()).max(0.0);
                    latency.count += 1;
                    latency.sum += lat;
                    latency.max = latency.max.max(lat);
                    *jobs_done += 1;
                }
            });
        if elastic && remaining > 0.0 {
            // Surplus capacity performs background science instead of
            // idling; it consumes the rest of the interval.
            self.background_work += remaining;
            remaining = 0.0;
        }
        (
            completed,
            kernel::busy_fraction(capacity, remaining, rate, dt.value()),
        )
    }

    /// Serial scatter/gather time for one fork-join job at the current
    /// worker count (exercises the ring model; informs Amdahl calibration).
    pub fn scatter_gather_time(&mut self, payload_bytes: usize) -> Seconds {
        let workers: Vec<usize> = (self.platform.reserved
            ..self.platform.reserved + self.current.workers.max(1))
            .collect();
        let per = payload_bytes / workers.len().max(1);
        self.ring.scatter_time(0, &workers, per) + self.ring.gather_time(0, &workers, per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::{seconds, volts, Hertz};

    fn board() -> PamaBoard {
        PamaBoard::new(Platform::pama())
    }

    fn point(workers: usize, mhz: f64) -> OperatingPoint {
        OperatingPoint::new(workers, Hertz::from_mhz(mhz), volts(3.3))
    }

    #[test]
    fn off_board_draws_standby_floor() {
        let mut b = board();
        b.apply(OperatingPoint::OFF, Seconds::ZERO);
        assert!((b.power().value() - 8.0 * 0.0066).abs() < 1e-9);
    }

    #[test]
    fn full_board_draws_active_power() {
        let mut b = board();
        b.apply(point(7, 80.0), Seconds::ZERO);
        assert!(
            (b.power().value() - 8.0 * 0.546).abs() < 1e-6,
            "{}",
            b.power()
        );
    }

    #[test]
    fn partial_activation_mixes_modes() {
        let mut b = board();
        b.apply(point(3, 40.0), Seconds::ZERO);
        // Controller + 3 workers at 40 MHz (half of 546 mW), 4 standby.
        let expect = 4.0 * 0.273 + 4.0 * 0.0066;
        assert!((b.power().value() - expect).abs() < 1e-6, "{}", b.power());
    }

    #[test]
    fn jobs_complete_at_modelled_rate() {
        let mut b = board();
        b.apply(point(1, 20.0), Seconds::ZERO);
        b.enqueue(3, Seconds::ZERO);
        // One worker at 20 MHz: one 4.8 s job per 4.8 s.
        let (done, busy) = b.advance(Seconds::ZERO, seconds(4.8), 1.0, false);
        assert_eq!(done, 1);
        assert!(busy > 0.99);
        assert_eq!(b.backlog(), 2);
        let (done, _) = b.advance(seconds(4.8), seconds(9.6), 1.0, false);
        assert_eq!(done, 2);
        assert_eq!(b.backlog(), 0);
        assert_eq!(b.jobs_done(), 3);
    }

    #[test]
    fn empty_queue_means_idle() {
        let mut b = board();
        b.apply(point(7, 80.0), Seconds::ZERO);
        let (done, busy) = b.advance(Seconds::ZERO, seconds(4.8), 1.0, false);
        assert_eq!(done, 0);
        assert_eq!(busy, 0.0);
    }

    #[test]
    fn brownout_scales_progress() {
        let mut b = board();
        b.apply(point(1, 20.0), Seconds::ZERO);
        b.enqueue(1, Seconds::ZERO);
        let (done, _) = b.advance(Seconds::ZERO, seconds(4.8), 0.5, false);
        assert_eq!(done, 0, "half availability: job half done");
        let (done, _) = b.advance(seconds(4.8), seconds(4.8), 0.5, false);
        assert_eq!(done, 1);
    }

    #[test]
    fn backlog_cap_drops_events() {
        let mut b = board().with_max_backlog(4);
        b.enqueue(10, Seconds::ZERO);
        assert_eq!(b.backlog(), 4);
        assert_eq!(b.dropped(), 6);
    }

    #[test]
    fn latency_accounts_queueing() {
        let mut b = board();
        b.apply(point(1, 20.0), Seconds::ZERO);
        b.enqueue(2, Seconds::ZERO);
        b.advance(Seconds::ZERO, seconds(9.6), 1.0, false);
        let stats = b.latency();
        assert_eq!(stats.count, 2);
        // First job ≈ 4.8 s, second ≈ 9.6 s.
        assert!((stats.mean() - 7.2).abs() < 0.2, "{}", stats.mean());
        assert!((stats.max - 9.6).abs() < 0.2);
    }

    #[test]
    fn faster_point_completes_more_jobs() {
        let mut slow = board();
        slow.apply(point(1, 20.0), Seconds::ZERO);
        slow.enqueue(50, Seconds::ZERO);
        slow.advance(Seconds::ZERO, seconds(48.0), 1.0, false);

        let mut fast = board();
        fast.apply(point(7, 80.0), Seconds::ZERO);
        fast.enqueue(50, Seconds::ZERO);
        fast.advance(Seconds::ZERO, seconds(48.0), 1.0, false);

        assert!(fast.jobs_done() > 3 * slow.jobs_done());
    }

    #[test]
    fn faulted_worker_reduces_throughput_and_power() {
        let mut healthy = board();
        healthy.apply(point(7, 80.0), Seconds::ZERO);
        let full_rate = healthy.service_rate();
        let full_power = healthy.power();

        let mut degraded = board();
        degraded.set_fault(3, true, Seconds::ZERO);
        degraded.set_fault(5, true, Seconds::ZERO);
        degraded.apply(point(7, 80.0), Seconds::ZERO);
        assert_eq!(degraded.healthy_workers(), 5);
        assert_eq!(degraded.faulted_count(), 2);
        assert!(degraded.service_rate() < full_rate);
        assert!(degraded.power().value() < full_power.value());
        // The 5 healthy workers all run: rate matches a 5-worker command.
        let mut five = board();
        five.apply(point(5, 80.0), Seconds::ZERO);
        assert!((degraded.service_rate() - five.service_rate()).abs() < 1e-12);
    }

    #[test]
    fn spare_capacity_routes_around_a_fault() {
        // Command 3 workers with one chip down: 3 healthy chips still run.
        let mut b = board();
        b.set_fault(1, true, Seconds::ZERO);
        b.apply(point(3, 80.0), Seconds::ZERO);
        let active = b
            .processors()
            .iter()
            .filter(|p| p.mode() == Mode::Active)
            .count();
        assert_eq!(active, 4, "controller + 3 healthy workers");
        let mut clean = board();
        clean.apply(point(3, 80.0), Seconds::ZERO);
        assert!((b.service_rate() - clean.service_rate()).abs() < 1e-12);
    }

    #[test]
    fn recovery_restores_capacity_after_reapply() {
        let mut b = board();
        for idx in 1..8 {
            b.set_fault(idx, true, Seconds::ZERO);
        }
        b.apply(point(7, 80.0), Seconds::ZERO);
        assert_eq!(b.service_rate(), 0.0, "no healthy workers, no service");
        for idx in 1..8 {
            b.set_fault(idx, false, seconds(4.8));
        }
        // Recovery alone does not wake anyone…
        assert_eq!(
            b.processors()
                .iter()
                .filter(|p| p.mode() == Mode::Active)
                .count(),
            1,
            "only the controller is up until the next command"
        );
        // …the next governor command does.
        b.apply(point(7, 80.0), seconds(9.6));
        assert!(b.service_rate() > 0.0);
    }

    #[test]
    fn out_of_range_fault_index_is_ignored() {
        let mut b = board();
        b.set_fault(99, true, Seconds::ZERO);
        assert_eq!(b.faulted_count(), 0);
    }

    #[test]
    fn rail_cut_behaves_like_a_fault_for_routing_and_power() {
        let mut cut = board();
        cut.set_powered(3, false, Seconds::ZERO);
        cut.set_powered(5, false, Seconds::ZERO);
        cut.apply(point(7, 80.0), Seconds::ZERO);

        let mut faulted = board();
        faulted.set_fault(3, true, Seconds::ZERO);
        faulted.set_fault(5, true, Seconds::ZERO);
        faulted.apply(point(7, 80.0), Seconds::ZERO);

        assert_eq!(cut.service_workers(), 5);
        assert!((cut.service_rate() - faulted.service_rate()).abs() < 1e-12);
        assert!(cut.power().approx_eq(faulted.power(), 1e-9));
        assert!(!cut.is_powered(3) && cut.is_powered(4));

        // Restoring the rail is live (mirrors mid-slot fault recovery):
        // the serviceable count rises before the next command re-applies.
        cut.set_powered(3, true, seconds(4.8));
        cut.set_powered(5, true, seconds(4.8));
        assert_eq!(cut.service_workers(), 7);
        cut.apply(point(7, 80.0), seconds(9.6));
        assert_eq!(cut.service_workers(), 7);
    }

    #[test]
    fn impaired_chip_draws_power_but_serves_nothing() {
        let mut b = board();
        b.set_impaired(1, true);
        b.set_impaired(2, true);
        b.apply(point(3, 80.0), Seconds::ZERO);

        let mut clean = board();
        clean.apply(point(3, 80.0), Seconds::ZERO);

        // Same activation and draw — chips 1 and 2 burn active power —
        // but only chip 3 actually computes.
        assert!(b.power().approx_eq(clean.power(), 1e-9));
        assert_eq!(b.service_workers(), 1);
        assert_eq!(clean.service_workers(), 3);
        assert!(b.is_impaired(1) && !b.is_impaired(3));
        let one = {
            let mut w = board();
            w.apply(point(1, 80.0), Seconds::ZERO);
            w.service_rate()
        };
        assert!((b.service_rate() - one).abs() < 1e-12);
    }

    #[test]
    fn transition_latency_reported_on_wake() {
        let mut b = board();
        let lat = b.apply(point(7, 80.0), Seconds::ZERO);
        assert!(lat.value() > 0.0);
        // Re-applying the same point is free.
        let lat2 = b.apply(point(7, 80.0), seconds(4.8));
        assert_eq!(lat2, Seconds::ZERO);
    }

    #[test]
    fn apply_with_bus_costs_more_than_direct_apply() {
        use crate::commands::CommandBus;
        let mut direct = board();
        let lat_direct = direct.apply(point(7, 80.0), Seconds::ZERO);

        let mut bussed = board();
        let mut bus = CommandBus::pama();
        let lat_bus = bussed.apply_with_bus(point(7, 80.0), Seconds::ZERO, &mut bus);
        assert!(
            lat_bus.value() > lat_direct.value(),
            "{lat_bus} vs {lat_direct}"
        );
        // Both boards end up at the same operating point and power.
        assert_eq!(bussed.operating_point(), direct.operating_point());
        assert!(bussed.power().approx_eq(direct.power(), 1e-9));
        // 7 workers × (freq + wake) commands issued.
        assert_eq!(bus.sent(), 14);
    }

    #[test]
    fn apply_with_bus_latency_still_tiny_vs_tau() {
        use crate::commands::CommandBus;
        let mut b = board();
        let mut bus = CommandBus::pama();
        let lat = b.apply_with_bus(point(7, 80.0), Seconds::ZERO, &mut bus);
        // Poll interval (1 ms) dominates; far below τ = 4.8 s — the
        // paper's zero-overhead simulation assumption is justified.
        assert!(lat.value() < 0.01, "{lat}");
    }

    #[test]
    fn scatter_gather_time_positive_with_workers() {
        let mut b = board();
        b.apply(point(7, 80.0), Seconds::ZERO);
        let t = b.scatter_gather_time(8192);
        assert!(t.value() > 0.0);
        assert!(b.ring().message_count() == 14);
    }
}
