//! RF-event arrival generators — realizations of the expected event-rate
//! schedule `u(t)`.
//!
//! The paper estimates `u(t)` from history/forecasts and lets reality
//! deviate; the simulator therefore separates the *forecast* (a
//! [`PowerSeries`] of rates fed to §4.1) from the *realization* (these
//! generators), so Algorithm 3's correction path is actually exercised.

use dpm_core::series::PowerSeries;
use dpm_core::units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pure arrival-accumulation kernel shared by [`ScheduleGenerator`] and
/// the fleet stepper ([`crate::fleet`]): add the expected arrivals for an
/// interval to the fractional carry and emit the whole events. Keeping
/// the floor/carry arithmetic in one place keeps the scalar and
/// struct-of-arrays event streams bit-identical.
#[inline]
pub fn accumulate_arrivals(expected: f64, carry: &mut f64) -> usize {
    let total = expected + *carry;
    let n = total.floor();
    *carry = total - n;
    n as usize
}

/// Produces event arrivals over simulation intervals.
pub trait EventGenerator: Send {
    /// Number of events arriving in `[t, t + dt)`.
    fn arrivals(&mut self, t: Seconds, dt: Seconds) -> usize;

    /// The expected rate at `t` (events/s), for governors that forecast.
    fn expected_rate(&self, t: Seconds) -> f64;
}

/// Deterministic generator: arrivals exactly follow the rate schedule,
/// with fractional events carried between intervals so long-run counts are
/// exact.
#[derive(Debug, Clone)]
pub struct ScheduleGenerator {
    rates: PowerSeries,
    carry: f64,
}

impl ScheduleGenerator {
    /// Wrap a rate schedule (events/s per slot).
    pub fn new(rates: PowerSeries) -> Self {
        Self { rates, carry: 0.0 }
    }
}

impl EventGenerator for ScheduleGenerator {
    fn arrivals(&mut self, t: Seconds, dt: Seconds) -> usize {
        let period = self.rates.period().value();
        let a = t.value().rem_euclid(period);
        let expected = self
            .rates
            .integral_wrapping(Seconds(a), Seconds(a + dt.value()))
            .value();
        accumulate_arrivals(expected, &mut self.carry)
    }

    fn expected_rate(&self, t: Seconds) -> f64 {
        self.rates.value_at(t).value()
    }
}

/// Poisson arrivals with the schedule as the (piecewise-constant) intensity.
#[derive(Debug)]
pub struct PoissonGenerator {
    rates: PowerSeries,
    rng: StdRng,
}

impl PoissonGenerator {
    /// Seeded Poisson process over the rate schedule.
    pub fn new(rates: PowerSeries, seed: u64) -> Self {
        Self {
            rates,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Knuth's algorithm; fine for the λ·dt ≤ ~30 this simulator sees.
    fn poisson(&mut self, lambda: f64) -> usize {
        if lambda <= 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // guard against pathological λ
            }
        }
    }
}

impl EventGenerator for PoissonGenerator {
    fn arrivals(&mut self, t: Seconds, dt: Seconds) -> usize {
        let period = self.rates.period().value();
        let a = t.value().rem_euclid(period);
        let lambda = self
            .rates
            .integral_wrapping(Seconds(a), Seconds(a + dt.value()))
            .value();
        self.poisson(lambda)
    }

    fn expected_rate(&self, t: Seconds) -> f64 {
        self.rates.value_at(t).value()
    }
}

/// A burst injector layered over another generator: adds `burst_size`
/// extra events the first time `t` crosses each trigger time. Models the
/// storm-passage surprises §4.3 is designed to absorb.
#[derive(Debug)]
pub struct BurstGenerator<G> {
    inner: G,
    bursts: Vec<(Seconds, usize)>,
    fired: Vec<bool>,
}

impl<G: EventGenerator> BurstGenerator<G> {
    /// Wrap `inner`, adding the given `(time, size)` bursts.
    pub fn new(inner: G, bursts: Vec<(Seconds, usize)>) -> Self {
        let fired = vec![false; bursts.len()];
        Self {
            inner,
            bursts,
            fired,
        }
    }
}

impl<G: EventGenerator> EventGenerator for BurstGenerator<G> {
    fn arrivals(&mut self, t: Seconds, dt: Seconds) -> usize {
        let mut n = self.inner.arrivals(t, dt);
        for (i, &(bt, size)) in self.bursts.iter().enumerate() {
            if !self.fired[i] && bt.value() >= t.value() && bt.value() < t.value() + dt.value() {
                self.fired[i] = true;
                n += size;
            }
        }
        n
    }

    fn expected_rate(&self, t: Seconds) -> f64 {
        self.inner.expected_rate(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::seconds;

    fn rates() -> PowerSeries {
        PowerSeries::new(
            seconds(4.8),
            vec![0.5, 0.1, 0.0, 0.3, 0.5, 0.2, 0.5, 0.1, 0.0, 0.3, 0.5, 0.2],
        )
        .unwrap()
    }

    #[test]
    fn schedule_generator_matches_integral_long_run() {
        let mut g = ScheduleGenerator::new(rates());
        let mut total = 0usize;
        let steps = 240; // 10 periods at dt = 2.4 s
        for i in 0..steps {
            total += g.arrivals(seconds(i as f64 * 2.4), seconds(2.4));
        }
        let expected = rates().integral().value() * 10.0;
        assert!(
            (total as f64 - expected).abs() <= 1.0,
            "{total} vs {expected}"
        );
    }

    #[test]
    fn schedule_generator_zero_rate_is_silent() {
        let mut g = ScheduleGenerator::new(PowerSeries::new(seconds(1.0), vec![0.0; 4]).unwrap());
        for i in 0..8 {
            assert_eq!(g.arrivals(seconds(i as f64), seconds(1.0)), 0);
        }
    }

    #[test]
    fn poisson_generator_mean_tracks_rate() {
        let mut g = PoissonGenerator::new(rates(), 11);
        let mut total = 0usize;
        let periods = 200;
        for p in 0..periods {
            for s in 0..12 {
                total += g.arrivals(seconds((p * 12 + s) as f64 * 4.8), seconds(4.8));
            }
        }
        let expected = rates().integral().value() * periods as f64;
        let rel = (total as f64 - expected).abs() / expected;
        assert!(rel < 0.1, "total {total}, expected {expected}");
    }

    #[test]
    fn poisson_is_seed_deterministic() {
        let mut a = PoissonGenerator::new(rates(), 5);
        let mut b = PoissonGenerator::new(rates(), 5);
        for i in 0..24 {
            let t = seconds(i as f64 * 4.8);
            assert_eq!(a.arrivals(t, seconds(4.8)), b.arrivals(t, seconds(4.8)));
        }
    }

    #[test]
    fn burst_fires_exactly_once() {
        let inner = ScheduleGenerator::new(PowerSeries::new(seconds(1.0), vec![0.0; 60]).unwrap());
        let mut g = BurstGenerator::new(inner, vec![(seconds(10.5), 7)]);
        let mut total = 0;
        for i in 0..60 {
            total += g.arrivals(seconds(i as f64), seconds(1.0));
        }
        assert_eq!(total, 7);
        // Second pass over the same times: already fired.
        for i in 0..60 {
            assert_eq!(g.arrivals(seconds(i as f64), seconds(1.0)), 0);
        }
    }

    #[test]
    fn expected_rate_passthrough() {
        let g = ScheduleGenerator::new(rates());
        assert_eq!(g.expected_rate(seconds(0.1)), 0.5);
        let b = BurstGenerator::new(ScheduleGenerator::new(rates()), vec![]);
        assert_eq!(b.expected_rate(seconds(0.1)), 0.5);
    }
}
