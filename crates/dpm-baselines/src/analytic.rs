//! The closed-form governor: Eq. 18 instead of the Algorithm 2 table.
//!
//! Given the same §4.1 power allocation as the proposed controller, this
//! governor picks each slot's `(n, f)` straight from the continuous-space
//! policy of Eq. 18 and snaps to the hardware's discrete grid — no pair
//! table, no Pareto pruning, no feedback. It is the natural ablation for
//! "does Algorithm 2's table machinery buy anything over the closed
//! form?": the table wins whenever the discrete grid is coarse (rounding
//! the continuous point can land far from the best discrete point) and
//! whenever feedback matters, which the integration tests quantify.

use dpm_core::error::DpmError;
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::{continuous_operating_point, OperatingPoint};
use dpm_core::platform::Platform;
use dpm_core::series::PowerSeries;
use dpm_core::units::{watts, Hertz};

/// Eq. 18 applied per slot to a fixed allocation.
#[derive(Debug, Clone)]
pub struct AnalyticGovernor {
    platform: Platform,
    allocation: PowerSeries,
}

impl AnalyticGovernor {
    /// Build from the platform and a periodic power allocation.
    ///
    /// # Errors
    /// [`DpmError::InvalidPlatform`] on a degenerate platform.
    pub fn new(platform: Platform, allocation: PowerSeries) -> Result<Self, DpmError> {
        platform.validate()?;
        Ok(Self {
            platform,
            allocation,
        })
    }

    /// Snap a frequency to the nearest member of the discrete set.
    fn snap_frequency(&self, f: Hertz) -> Hertz {
        // The constructor validated the platform, so the set is non-empty.
        self.platform
            .frequencies
            .iter()
            .min_by(|a, b| {
                (a.value() - f.value())
                    .abs()
                    .total_cmp(&(b.value() - f.value()).abs())
            })
            .copied()
            .unwrap_or(f)
    }
}

impl Governor for AnalyticGovernor {
    fn name(&self) -> &str {
        "analytic-eq18"
    }

    fn uses_surplus_energy(&self) -> bool {
        true // same semantics as the proposed controller it ablates
    }

    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        let gross = self
            .allocation
            .get((obs.slot as usize) % self.allocation.len());
        // Eq. 18 is derived from the idealized Power = c2·n·f·v² — no
        // controller chip, no standby floor. Hand it the *worker* share of
        // the slot budget: gross minus the controller's draw (which tracks
        // the worker clock) and the idle chips' floor, estimated at the
        // reserved:worker ratio.
        let reserved_share = self.platform.reserved as f64
            / (self.platform.reserved + self.platform.workers()) as f64;
        let floor = self.platform.power.all_standby().value();
        let net = (gross * (1.0 - reserved_share) - floor).max(0.0);
        if net <= 1e-9 {
            return Ok(OperatingPoint::OFF);
        }
        let pt = continuous_operating_point(&self.platform, watts(net));
        // Floor the continuous count: rounding up systematically overdraws
        // the battery (the closed form has no feedback to repay it).
        let n = (pt.n.floor() as usize).clamp(1, self.platform.workers());
        let f = self.snap_frequency(pt.f);
        Ok(match self.platform.voltage_for(f) {
            Some(v) => OperatingPoint::new(n, f, v),
            None => OperatingPoint::OFF,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::{joules, seconds, Joules, Seconds};

    fn allocation() -> PowerSeries {
        PowerSeries::new(
            seconds(4.8),
            vec![2.2, 2.0, 1.2, 1.2, 2.0, 2.3, 1.2, 0.9, 0.5, 0.5, 0.9, 1.1],
        )
        .unwrap()
    }

    fn obs(slot: u64) -> SlotObservation {
        SlotObservation {
            slot,
            time: Seconds(slot as f64 * 4.8),
            battery: joules(8.0),
            used_last: Joules::ZERO,
            supplied_last: Joules::ZERO,
            backlog: 1,
        }
    }

    #[test]
    fn snaps_to_discrete_frequencies() {
        let mut g = AnalyticGovernor::new(Platform::pama(), allocation()).unwrap();
        for slot in 0..12 {
            let p = g.decide(&obs(slot)).unwrap();
            if !p.is_off() {
                assert!(
                    Platform::pama().frequencies.contains(&p.frequency),
                    "slot {slot}: {p}"
                );
                assert!(p.workers >= 1 && p.workers <= 7);
            }
        }
    }

    #[test]
    fn bigger_budget_means_no_less_power() {
        let platform = Platform::pama();
        let mut g = AnalyticGovernor::new(platform.clone(), allocation()).unwrap();
        let power_of = |p: OperatingPoint| {
            if p.is_off() {
                0.0
            } else {
                platform.board_power(p.workers, p.frequency).value()
            }
        };
        // Slot 5 (2.3 W budget) draws at least slot 8 (0.5 W budget).
        let big = power_of(g.decide(&obs(5)).unwrap());
        let small = power_of(g.decide(&obs(8)).unwrap());
        assert!(big >= small, "{big} vs {small}");
    }

    #[test]
    fn starvation_budget_turns_off() {
        let tiny = PowerSeries::constant(seconds(4.8), 12, 0.01).unwrap();
        let mut g = AnalyticGovernor::new(Platform::pama(), tiny).unwrap();
        assert!(g.decide(&obs(0)).unwrap().is_off());
    }

    #[test]
    fn cycles_per_period() {
        let mut g = AnalyticGovernor::new(Platform::pama(), allocation()).unwrap();
        let a = g.decide(&obs(2)).unwrap();
        let b = g.decide(&obs(14)).unwrap(); // same slot next period
        assert_eq!(a, b);
    }
}
