//! Acceptance contract for the topology campaign: under provider-fault
//! plans the flat (topology-blind) arm must emit a trace the audit's
//! topology-legality family rejects, while the broker arm — same
//! governor, same faults — must come out green; and the whole campaign
//! (CSV and telemetry) must be byte-identical for any worker count.

use dpm_bench::topology;
use dpm_telemetry::Recorder;
use dpm_trace::{audit, AuditConfig, Trace};

const SEEDS: u64 = 3;
const PERIODS: usize = 4;

fn campaign_trace(jobs: usize) -> (String, String) {
    let telemetry = Recorder::enabled("topology");
    let outcome = topology::run_with(SEEDS, jobs, PERIODS, &telemetry).unwrap();
    assert_eq!(outcome.failures, 0, "{}", outcome.csv);
    (outcome.csv, telemetry.to_jsonl())
}

#[test]
fn flat_arm_fails_the_topology_audit_while_broker_stays_green() {
    let (csv, jsonl) = campaign_trace(2);
    let trace = Trace::parse(&jsonl).expect("trace parses");
    let report = audit(&trace, &AuditConfig::default());

    // Every violation must name a flat scope; the broker arms replay the
    // same provider faults through ordered revocations and stay legal.
    let flat: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.scope.starts_with("topology/flat/"))
        .collect();
    let broker: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.scope.starts_with("topology/broker/"))
        .collect();
    assert!(
        !flat.is_empty(),
        "flat arm produced no topology violations:\n{csv}"
    );
    assert!(
        flat.iter().any(|v| v.invariant == "broker.legality"),
        "expected broker.legality among {flat:?}"
    );
    assert!(broker.is_empty(), "broker arm not green: {broker:?}");
    assert_eq!(
        report.violations.len(),
        flat.len(),
        "violations outside the flat arms: {:?}",
        report.violations
    );

    // The fault plans actually exercised the topology: each broker row
    // records at least one cascade, and the flat rows record none of the
    // broker's retry bookkeeping.
    for line in csv.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        let cascades: u64 = cols[10].parse().unwrap();
        assert!(cascades >= 1, "no cascade in row: {line}");
    }
}

#[test]
fn topology_campaign_is_byte_identical_across_worker_counts() {
    let (csv_serial, trace_serial) = campaign_trace(1);
    let (csv_parallel, trace_parallel) = campaign_trace(4);
    assert_eq!(csv_serial, csv_parallel);
    assert_eq!(trace_serial, trace_parallel);
}
