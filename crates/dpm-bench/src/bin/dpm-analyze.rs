//! `dpm-analyze` — trace analysis over the telemetry layer's schema-v1
//! documents (see docs/TRACE_SCHEMA.md).
//!
//! ```text
//! dpm-analyze audit <trace> [--tolerance <J>]
//! dpm-analyze diff <left> <right> [--context <N>]
//! dpm-analyze summary <trace>
//! dpm-analyze fleet <trace>
//! dpm-analyze bench <profile> --name <name> [--out <path>]
//! dpm-analyze bench <profile> --check <baseline> [--tolerance <pct>]
//! dpm-analyze profile <profile> [--collapse]
//! dpm-analyze profile <profile> --name <name> [--out <path>]
//! dpm-analyze profile <profile> --check <baseline> [--tolerance <pct>]
//! ```
//!
//! - `audit` replays a trace against the machine-checked invariants
//!   (battery window, energy conservation, safety-transition legality,
//!   undersupply monotonicity) and exits 1 on the first violation,
//!   pinpointed as `(scope, seq, slot)`.
//! - `diff` compares two traces and reports the first diverging line
//!   with context and a decoded hint — the CI determinism gate.
//! - `summary` renders a per-run report: activity counters, safety
//!   transition census, histogram quantiles, ASCII battery trajectories.
//! - `fleet` aggregates the per-shard `fleet.*` metrics of a
//!   `campaign --fleet` trace into one population report — survival
//!   fraction, battery-floor percentiles (p1/p10/p50), shed census —
//!   and exits 1 when the trace carries no fleet metrics.
//! - `bench` condenses the *flat* span aggregates of a wall-clock
//!   `.profile` document into a `BENCH_<name>.json` baseline, or checks
//!   a fresh profile against a committed baseline and exits 1 on
//!   regression.
//! - `profile` reads the *hierarchical* span-tree lines of a `.profile`
//!   document and renders the call tree with per-node self-time
//!   (total minus direct children) plus a self-time ranking.
//!   `--collapse` emits collapsed-stack lines (`path self_µs`) for
//!   flamegraph tools; `--name`/`--check` write or gate a span-tree
//!   baseline exactly like `bench` does for flat spans.
//!
//! A `<trace>` argument of `-` reads the document from stdin, so a live
//! `dpm-serve` session trace pipes straight into `audit -`/`summary -`.
//!
//! Exit codes: 0 success, 1 violation/divergence/regression or
//! unreadable input, 2 usage error.

use dpm_telemetry::{parse_profile_doc, ProfileLine, SpanNodeLine};
use dpm_trace::{audit, bench_check, first_divergence, render_fleet, render_summary};
use dpm_trace::{profile, summarize_fleet, AuditConfig, BenchBaseline, Trace};

const USAGE: &str = "usage:
  dpm-analyze audit <trace> [--tolerance <J>]
  dpm-analyze diff <left> <right> [--context <N>]
  dpm-analyze summary <trace>
  dpm-analyze fleet <trace>
  dpm-analyze bench <profile> --name <name> [--out <path>]
  dpm-analyze bench <profile> --check <baseline> [--tolerance <pct>]
  dpm-analyze profile <profile> [--collapse]
  dpm-analyze profile <profile> --name <name> [--out <path>]
  dpm-analyze profile <profile> --check <baseline> [--tolerance <pct>]

<trace> may be `-` to read the document from stdin (e.g. piping a
dpm-serve session trace into `audit -` or `summary -`).";

fn usage_exit(message: &str) -> ! {
    eprintln!("dpm-analyze: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Read a document from a path, or from stdin when the path is `-` —
/// so live streams pipe straight in (`dpm-serve ... | dpm-analyze
/// audit -`).
fn read_file(path: &str) -> String {
    if path == "-" {
        let mut body = String::new();
        match std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut body) {
            Ok(_) => return body,
            Err(e) => {
                eprintln!("dpm-analyze: cannot read stdin: {e}");
                std::process::exit(1);
            }
        }
    }
    match std::fs::read_to_string(path) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("dpm-analyze: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_trace(path: &str) -> Trace {
    match Trace::parse(&read_file(path)) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("dpm-analyze: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::vec::IntoIter<String>, flag: &str) -> T {
    match args.next().and_then(|v| v.parse::<T>().ok()) {
        Some(v) => v,
        None => usage_exit(&format!("{flag} requires a value")),
    }
}

fn cmd_audit(mut args: std::vec::IntoIter<String>) -> i32 {
    let mut path: Option<String> = None;
    let mut cfg = AuditConfig::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => cfg.tolerance_j = parse_flag(&mut args, "--tolerance"),
            _ if path.is_none() => path = Some(a),
            _ => usage_exit(&format!("unexpected argument `{a}`")),
        }
    }
    let Some(path) = path else {
        usage_exit("audit requires a trace path");
    };
    let trace = parse_trace(&path);
    let report = audit(&trace, &cfg);
    for note in &report.notes {
        eprintln!("note: {note}");
    }
    if report.ok() {
        println!(
            "audit OK: {} checks across {} scopes, {} events, 0 violations",
            report.checks,
            report.scopes,
            trace.events.len()
        );
        0
    } else {
        for v in &report.violations {
            eprintln!("violation: {v}");
        }
        eprintln!(
            "audit FAILED: {} violation(s) in {} checks across {} scopes",
            report.violations.len(),
            report.checks,
            report.scopes
        );
        1
    }
}

fn cmd_diff(mut args: std::vec::IntoIter<String>) -> i32 {
    let mut paths: Vec<String> = Vec::new();
    let mut context = 3usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--context" => context = parse_flag(&mut args, "--context"),
            _ if paths.len() < 2 => paths.push(a),
            _ => usage_exit(&format!("unexpected argument `{a}`")),
        }
    }
    let [left_path, right_path] = &paths[..] else {
        usage_exit("diff requires two trace paths");
    };
    let left = read_file(left_path);
    let right = read_file(right_path);
    match first_divergence(&left, &right, context) {
        None => {
            println!("traces are identical ({} lines)", left.lines().count());
            0
        }
        Some(d) => {
            eprintln!("traces differ: {left_path} (<) vs {right_path} (>)");
            eprint!("{d}");
            1
        }
    }
}

fn cmd_summary(mut args: std::vec::IntoIter<String>) -> i32 {
    let Some(path) = args.next() else {
        usage_exit("summary requires a trace path");
    };
    if let Some(extra) = args.next() {
        usage_exit(&format!("unexpected argument `{extra}`"));
    }
    print!("{}", render_summary(&parse_trace(&path)));
    0
}

fn cmd_fleet(mut args: std::vec::IntoIter<String>) -> i32 {
    let Some(path) = args.next() else {
        usage_exit("fleet requires a trace path");
    };
    if let Some(extra) = args.next() {
        usage_exit(&format!("unexpected argument `{extra}`"));
    }
    match summarize_fleet(&parse_trace(&path)) {
        Some(summary) => {
            print!("{}", render_fleet(&summary));
            0
        }
        None => {
            eprintln!("dpm-analyze: {path}: no fleet.* metrics (not a fleet-campaign trace)");
            1
        }
    }
}

/// Read and parse a `.profile` document (flat lines + span-tree lines),
/// exiting 1 with a pinpointed message on malformed input.
fn parse_profile(path: &str) -> (Vec<ProfileLine>, Vec<SpanNodeLine>) {
    match parse_profile_doc(&read_file(path)) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("dpm-analyze: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_bench(mut args: std::vec::IntoIter<String>) -> i32 {
    let mut profile_path: Option<String> = None;
    let mut name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance_pct = 25.0f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--name" => name = Some(parse_flag(&mut args, "--name")),
            "--out" => out = Some(parse_flag(&mut args, "--out")),
            "--check" => check_path = Some(parse_flag(&mut args, "--check")),
            "--tolerance" => tolerance_pct = parse_flag(&mut args, "--tolerance"),
            _ if profile_path.is_none() => profile_path = Some(a),
            _ => usage_exit(&format!("unexpected argument `{a}`")),
        }
    }
    let Some(profile_path) = profile_path else {
        usage_exit("bench requires a profile path");
    };
    // A profile document carries both flat aggregates and span-tree
    // lines; `bench` gates on the flat side only (`profile` owns the
    // tree).
    let (profile, _) = parse_profile(&profile_path);

    if let Some(check_path) = check_path {
        let baseline = match BenchBaseline::parse(&read_file(&check_path)) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("dpm-analyze: {check_path}: {e}");
                return 1;
            }
        };
        let regressions = bench_check(&baseline, &profile, tolerance_pct);
        if regressions.is_empty() {
            println!(
                "bench OK: {} span(s) within {tolerance_pct}% of baseline \"{}\"",
                baseline.spans.len(),
                baseline.name
            );
            return 0;
        }
        for r in &regressions {
            eprintln!("regression: {}: {}", r.span, r.message);
        }
        eprintln!(
            "bench FAILED: {} regression(s) against baseline \"{}\" at {tolerance_pct}% tolerance",
            regressions.len(),
            baseline.name
        );
        return 1;
    }

    let Some(name) = name else {
        usage_exit("bench requires --name <name> (to write) or --check <baseline>");
    };
    let baseline = BenchBaseline::from_profile(&name, &profile);
    let out = out.unwrap_or_else(|| format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&out, baseline.to_json()) {
        eprintln!("dpm-analyze: cannot write {out}: {e}");
        return 1;
    }
    println!(
        "wrote baseline \"{name}\" ({} spans) to {out}",
        baseline.spans.len()
    );
    0
}

fn cmd_profile(mut args: std::vec::IntoIter<String>) -> i32 {
    let mut profile_path: Option<String> = None;
    let mut collapse = false;
    let mut name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance_pct = 25.0f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--collapse" => collapse = true,
            "--name" => name = Some(parse_flag(&mut args, "--name")),
            "--out" => out = Some(parse_flag(&mut args, "--out")),
            "--check" => check_path = Some(parse_flag(&mut args, "--check")),
            "--tolerance" => tolerance_pct = parse_flag(&mut args, "--tolerance"),
            _ if profile_path.is_none() => profile_path = Some(a),
            _ => usage_exit(&format!("unexpected argument `{a}`")),
        }
    }
    let Some(profile_path) = profile_path else {
        usage_exit("profile requires a profile path");
    };
    let (_, tree) = parse_profile(&profile_path);

    if let Some(check_path) = check_path {
        let baseline = match BenchBaseline::parse(&read_file(&check_path)) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("dpm-analyze: {check_path}: {e}");
                return 1;
            }
        };
        let regressions = profile::check(&baseline, &tree, tolerance_pct);
        if regressions.is_empty() {
            println!(
                "profile OK: {} span-tree node(s) within {tolerance_pct}% of baseline \"{}\"",
                baseline.spans.len(),
                baseline.name
            );
            return 0;
        }
        for r in &regressions {
            eprintln!("regression: {}: {}", r.span, r.message);
        }
        eprintln!(
            "profile FAILED: {} regression(s) against baseline \"{}\" at {tolerance_pct}% tolerance",
            regressions.len(),
            baseline.name
        );
        return 1;
    }

    if let Some(name) = name {
        let baseline = profile::baseline(&name, &tree);
        let out = out.unwrap_or_else(|| format!("BENCH_{name}.json"));
        if let Err(e) = std::fs::write(&out, baseline.to_json()) {
            eprintln!("dpm-analyze: cannot write {out}: {e}");
            return 1;
        }
        println!(
            "wrote span-tree baseline \"{name}\" ({} spans) to {out}",
            baseline.spans.len()
        );
        return 0;
    }

    if collapse {
        print!("{}", profile::collapse(&tree));
    } else {
        print!("{}", profile::render(&tree));
    }
    if tree.is_empty() && collapse {
        eprintln!("dpm-analyze: {profile_path}: no span-tree lines to collapse");
        return 1;
    }
    0
}

fn main() {
    let mut args = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    let code = match args.next().as_deref() {
        Some("audit") => cmd_audit(args),
        Some("diff") => cmd_diff(args),
        Some("summary") => cmd_summary(args),
        Some("fleet") => cmd_fleet(args),
        Some("bench") => cmd_bench(args),
        Some("profile") => cmd_profile(args),
        Some(other) => usage_exit(&format!("unknown command `{other}`")),
        None => usage_exit("a command is required"),
    };
    std::process::exit(code);
}
