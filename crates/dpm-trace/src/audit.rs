//! The invariant engine: replay a trace against everything the paper
//! (and DESIGN.md §9–10) guarantees about a run, and pinpoint the first
//! line that breaks a guarantee as a `(scope, seq, slot)` triple.
//!
//! Since PR 9 the engine is **incremental**: [`AuditState`] consumes
//! [`TraceLine`]s one at a time (the live `dpm-serve` path), flagging
//! event-anchored violations on the very push that carries them, and
//! [`audit`] is a thin loop that feeds a parsed [`Trace`] through the
//! same state — batch and live verdicts share one code path and can
//! never diverge.
//!
//! Five invariant families:
//!
//! 1. **Well-formedness** — the meta header's event count matches the
//!    body, and sequence numbers are strictly monotonic within each scope
//!    (the absorb contract).
//! 2. **Battery envelope** — every `sim.slot` event's battery level stays
//!    inside the `[C_min, C_max]` window the run advertised in its
//!    `sim.c_min_j`/`sim.c_max_j` gauges (Algorithm 1's reshape
//!    guarantee), with the remaining slack computed per slot.
//! 3. **Energy conservation** — the per-slot supplied/used streams must
//!    re-add to the end-of-run gauges, and for a battery that advertises
//!    exact accounting (`sim.energy_conserving` = 1) the closing balance
//!    `offered − wasted − rate_loss − delivered − ΔE` must vanish (Eq. 8's
//!    supply/dissipation balance over the period).
//! 4. **Safety-machine legality** — `safety.*` transitions may only move
//!    the degradation level one hysteresis step at a time, retries must
//!    respect the configured backoff dwell, the failure counter must count
//!    consecutively, and an engaged static fallback is terminal.
//!    Cumulative undersupply may never decrease.
//! 5. **Topology legality** — traces that declare a power-element
//!    topology (`broker.element` / `broker.edge`) are replayed level
//!    change by level change: after *every* `broker.level` event no
//!    element may sit powered above what its providers support (which is
//!    also the ordering invariant — a revocation applied provider-first
//!    or a restore applied child-first leaves an illegal intermediate
//!    state and is flagged at that exact event), each change must chain
//!    from the previous level, terminal shutdown must be monotone
//!    (levels only fall) and final (no level events after
//!    `broker.shutdown_complete`), and the `broker.revocations` /
//!    `broker.restores` counters must agree with the event stream.
//!
//! ## Online vs canonical verdicts
//!
//! [`AuditState::push`] returns the violations *newly observable* at that
//! line using everything seen so far; [`AuditState::finish`] re-walks the
//! retained per-scope buffers against the **final** gauge/counter maps and
//! assembles the canonical [`AuditReport`] — byte-identical to what the
//! whole-file [`audit`] always produced. The split exists because a batch
//! document serializes gauges *after* events: the online pass can only use
//! config gauges that have already streamed (the live emitter sends them
//! before the first slot), while the canonical pass always sees the final
//! maps. Gauge-anchored checks (stream sums, Eq. 8 closing balance, event
//! censuses) need the end-of-run gauges by construction, so they land in
//! `finish()` — which a live server calls immediately after the closing
//! gauges arrive, still within one slot of their emission.
//!
//! Slot-sum checks are skipped (with a note) when the trace reports
//! dropped events: a saturated ring truncates the per-slot streams, and a
//! sum over a truncated stream would report phantom violations.

use crate::model::{split_scoped, Trace};
use dpm_telemetry::{Event, TraceLine, TraceMeta};
use std::collections::BTreeMap;
use std::fmt;

/// Tunables for an audit pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Absolute tolerance (J) for every energy comparison.
    pub tolerance_j: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self { tolerance_j: 1e-6 }
    }
}

/// One broken invariant, pinpointed to where it was observed.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Invariant family identifier (`"battery.window"`, …).
    pub invariant: &'static str,
    /// Scope of the offending line (empty for the root scope).
    pub scope: String,
    /// Sequence number of the offending event, when the violation is
    /// anchored to one.
    pub seq: Option<u64>,
    /// Slot of the offending event, when it has one.
    pub slot: Option<u64>,
    /// Human-readable account of what was expected and what was found.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] scope=\"{}\"", self.invariant, self.scope)?;
        match self.seq {
            Some(seq) => write!(f, " seq={seq}")?,
            None => write!(f, " seq=-")?,
        }
        match self.slot {
            Some(slot) => write!(f, " slot={slot}")?,
            None => write!(f, " slot=-")?,
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of an audit pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// Broken invariants in deterministic discovery order (meta first,
    /// then scopes in sorted order, events in ring order within a scope).
    pub violations: Vec<Violation>,
    /// Non-fatal observations: checks that were skipped and why, minimum
    /// battery slack seen, etc.
    pub notes: Vec<String>,
    /// Scopes that carried at least one auditable signal.
    pub scopes: usize,
    /// Individual comparisons performed.
    pub checks: usize,
}

impl AuditReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation in discovery order, if any.
    pub fn first(&self) -> Option<&Violation> {
        self.violations.first()
    }
}

/// Running minimum battery slack: `(slack, scope, slot)`.
type MinSlack = Option<(f64, String, u64)>;

/// Look up a scope-qualified gauge in a final-value map.
fn gauge_of(gauges: &BTreeMap<String, f64>, scope: &str, metric: &str) -> Option<f64> {
    if scope.is_empty() {
        gauges.get(metric).copied()
    } else {
        gauges.get(&format!("{scope}/{metric}")).copied()
    }
}

/// Look up a scope-qualified counter in a final-value map.
fn counter_of(counters: &BTreeMap<String, u64>, scope: &str, metric: &str) -> Option<u64> {
    if scope.is_empty() {
        counters.get(metric).copied()
    } else {
        counters.get(&format!("{scope}/{metric}")).copied()
    }
}

/// Sequence numbers must be strictly increasing within a scope.
#[derive(Default)]
struct SeqPass {
    prev: Option<u64>,
}

impl SeqPass {
    fn step(&mut self, scope: &str, e: &Event, report: &mut AuditReport) {
        report.checks += 1;
        if let Some(p) = self.prev {
            if e.seq <= p {
                report.violations.push(Violation {
                    invariant: "seq.monotonic",
                    scope: scope.to_string(),
                    seq: Some(e.seq),
                    slot: e.slot,
                    message: format!("sequence number {} follows {} in the same scope", e.seq, p),
                });
            }
        }
        self.prev = Some(e.seq);
    }
}

/// Battery-envelope, slot-order, and undersupply machine over `sim.slot`
/// events of one scope.
#[derive(Default)]
struct SlotPass {
    last_slot: Option<u64>,
    last_under: Option<f64>,
    sum_used: f64,
    sum_supplied: f64,
    last_battery: Option<f64>,
    anchor_seq: Option<u64>,
    anchor_slot: Option<u64>,
}

impl SlotPass {
    /// One `sim.slot` event against the capacity `window` known so far.
    fn step(
        &mut self,
        scope: &str,
        e: &Event,
        window: (Option<f64>, Option<f64>),
        tol: f64,
        report: &mut AuditReport,
        min_slack: &mut MinSlack,
    ) {
        let slot = e.slot;
        self.anchor_seq = Some(e.seq);
        self.anchor_slot = slot;
        // Slot numbers must advance.
        report.checks += 1;
        if let (Some(prev), Some(cur)) = (self.last_slot, slot) {
            if cur <= prev {
                report.violations.push(Violation {
                    invariant: "slot.order",
                    scope: scope.to_string(),
                    seq: Some(e.seq),
                    slot,
                    message: format!("slot {cur} follows slot {prev}"),
                });
            }
        }
        self.last_slot = slot.or(self.last_slot);

        let battery = Trace::field(e, "battery_j");
        match battery {
            None => report.violations.push(Violation {
                invariant: "slot.fields",
                scope: scope.to_string(),
                seq: Some(e.seq),
                slot,
                message: "sim.slot event carries no battery_j field".into(),
            }),
            Some(b) => {
                self.last_battery = Some(b);
                if let (Some(c_min), Some(c_max)) = window {
                    report.checks += 1;
                    let slack = (b - c_min).min(c_max - b);
                    let is_tighter = match min_slack {
                        Some((s, _, _)) => slack < *s,
                        None => true,
                    };
                    if is_tighter {
                        *min_slack = Some((slack, scope.to_string(), slot.unwrap_or(u64::MAX)));
                    }
                    if b < c_min - tol || b > c_max + tol {
                        report.violations.push(Violation {
                            invariant: "battery.window",
                            scope: scope.to_string(),
                            seq: Some(e.seq),
                            slot,
                            message: format!(
                                "battery {b} J outside [{c_min}, {c_max}] J (slack {slack:.6} J)"
                            ),
                        });
                    }
                }
            }
        }

        self.sum_used += Trace::field(e, "used_j").unwrap_or(0.0);
        self.sum_supplied += Trace::field(e, "supplied_j").unwrap_or(0.0);

        if let Some(u) = Trace::field(e, "undersupplied_j") {
            report.checks += 1;
            if let Some(prev) = self.last_under {
                if u + tol < prev {
                    report.violations.push(Violation {
                        invariant: "undersupply.monotonic",
                        scope: scope.to_string(),
                        seq: Some(e.seq),
                        slot,
                        message: format!("cumulative undersupply fell from {prev} J to {u} J"),
                    });
                }
            }
            self.last_under = Some(u);
        }
    }

    /// Slot-stream sums against the end-of-run gauges — only meaningful
    /// when no event was dropped from the ring.
    fn finish(
        &self,
        scope: &str,
        gauges: &BTreeMap<String, f64>,
        tol: f64,
        dropped: u64,
        report: &mut AuditReport,
    ) {
        if dropped > 0 {
            return;
        }
        let anchor_seq = self.anchor_seq;
        let anchor_slot = self.anchor_slot;
        let mut check_sum = |metric: &str, sum: f64, invariant: &'static str| {
            if let Some(gauge) = gauge_of(gauges, scope, metric) {
                report.checks += 1;
                if (sum - gauge).abs() > tol {
                    report.violations.push(Violation {
                        invariant,
                        scope: scope.to_string(),
                        seq: anchor_seq,
                        slot: anchor_slot,
                        message: format!(
                            "slot stream sums to {sum} J but the {metric} gauge reads {gauge} J"
                        ),
                    });
                }
            }
        };
        check_sum("sim.delivered_j", self.sum_used, "energy.delivered");
        check_sum("sim.offered_j", self.sum_supplied, "energy.offered");
        if let (Some(last), Some(gauge)) = (
            self.last_battery,
            gauge_of(gauges, scope, "sim.final_battery_j"),
        ) {
            report.checks += 1;
            if (last - gauge).abs() > tol {
                report.violations.push(Violation {
                    invariant: "battery.final",
                    scope: scope.to_string(),
                    seq: anchor_seq,
                    slot: anchor_slot,
                    message: format!(
                        "last slot battery {last} J disagrees with sim.final_battery_j {gauge} J"
                    ),
                });
            }
        }
        if let (Some(last), Some(gauge)) = (
            self.last_under,
            gauge_of(gauges, scope, "sim.undersupplied_j"),
        ) {
            report.checks += 1;
            if (last - gauge).abs() > tol {
                report.violations.push(Violation {
                    invariant: "undersupply.final",
                    scope: scope.to_string(),
                    seq: anchor_seq,
                    slot: anchor_slot,
                    message: format!(
                        "last slot undersupply {last} J disagrees with sim.undersupplied_j {gauge} J"
                    ),
                });
            }
        }
    }
}

/// Safety-machine state while walking one scope's `safety.*` events.
#[derive(Default)]
struct SafetyPass {
    last_level: Option<f64>,
    consecutive_failures: f64,
    /// `(slot, failures)` of the most recent failure, for the dwell check.
    last_failure: Option<(u64, f64)>,
    fallback_engaged: bool,
    last_slot: Option<u64>,
    events_seen: u64,
}

impl SafetyPass {
    /// One `safety.*` event against the config gauges known so far:
    /// `(shed_step, backoff_slots, max_replan_failures)`.
    fn step(
        &mut self,
        scope: &str,
        e: &Event,
        config: (Option<f64>, Option<f64>, Option<f64>),
        report: &mut AuditReport,
    ) {
        let (shed_step, backoff, max_failures) = config;
        self.events_seen += 1;
        report.checks += 1;

        let fail = |invariant: &'static str, message: String, report: &mut AuditReport| {
            report.violations.push(Violation {
                invariant,
                scope: scope.to_string(),
                seq: Some(e.seq),
                slot: e.slot,
                message,
            });
        };

        // Safety transitions happen at governor decision points; their
        // slots may repeat (several transitions in one slot) but never
        // run backwards.
        if let (Some(prev), Some(cur)) = (self.last_slot, e.slot) {
            if cur < prev {
                fail(
                    "safety.slot_order",
                    format!("transition at slot {cur} follows one at slot {prev}"),
                    report,
                );
            }
        }
        self.last_slot = e.slot.or(self.last_slot);

        let replan_kind = matches!(
            e.name.as_str(),
            "safety.replan_failed" | "safety.replan_recovered" | "safety.fallback_engaged"
        );
        if self.fallback_engaged && replan_kind {
            fail(
                "safety.fallback_terminal",
                format!("{} after the static fallback engaged", e.name),
                report,
            );
        }

        match e.name.as_str() {
            "safety.shed" | "safety.recover" => {
                let (Some(from), Some(to)) =
                    (Trace::field(e, "from_level"), Trace::field(e, "to_level"))
                else {
                    fail(
                        "safety.fields",
                        format!("{} event lacks from_level/to_level", e.name),
                        report,
                    );
                    return;
                };
                if let Some(last) = self.last_level {
                    if from != last {
                        fail(
                            "safety.level_chain",
                            format!("transition starts at level {from} but the previous one ended at {last}"),
                            report,
                        );
                    }
                }
                if e.name == "safety.shed" {
                    let step_cap = shed_step.unwrap_or(f64::INFINITY);
                    if to <= from || to - from > step_cap {
                        fail(
                            "safety.shed_step",
                            format!(
                                "shed moved {from} → {to}; must rise by 1..={step_cap} ranks per slot"
                            ),
                            report,
                        );
                    }
                } else if to != from - 1.0 {
                    fail(
                        "safety.recover_step",
                        format!("recovery moved {from} → {to}; hysteresis relaxes exactly one rank per slot"),
                        report,
                    );
                }
                self.last_level = Some(to);
            }
            "safety.replan_failed" => {
                let Some(failures) = Trace::field(e, "failures") else {
                    fail(
                        "safety.fields",
                        "replan_failed event lacks a failures field".into(),
                        report,
                    );
                    return;
                };
                let expected = self.consecutive_failures + 1.0;
                if failures != expected {
                    fail(
                        "safety.failure_count",
                        format!(
                            "failure counter reads {failures}, expected {expected} (consecutive)"
                        ),
                        report,
                    );
                }
                if let (Some((prev_slot, prev_failures)), Some(b), Some(cur)) =
                    (self.last_failure, backoff, e.slot)
                {
                    let earliest = prev_slot as f64 + 1.0 + b * prev_failures;
                    if (cur as f64) < earliest {
                        fail(
                            "safety.retry_dwell",
                            format!(
                                "inner governor consulted at slot {cur}, before the backoff dwell ends at slot {earliest}"
                            ),
                            report,
                        );
                    }
                }
                self.consecutive_failures = failures;
                if let Some(cur) = e.slot {
                    self.last_failure = Some((cur, failures));
                }
            }
            "safety.replan_recovered" => {
                let after = Trace::field(e, "after").unwrap_or(-1.0);
                if self.consecutive_failures < 1.0 {
                    fail(
                        "safety.recovered_without_failure",
                        "replan recovery with no preceding failure".into(),
                        report,
                    );
                } else if after != self.consecutive_failures {
                    fail(
                        "safety.failure_count",
                        format!(
                            "recovery reports {after} preceding failures, the stream shows {}",
                            self.consecutive_failures
                        ),
                        report,
                    );
                }
                self.consecutive_failures = 0.0;
                self.last_failure = None;
            }
            "safety.fallback_engaged" => {
                let failures = Trace::field(e, "failures").unwrap_or(-1.0);
                if let Some(budget) = max_failures {
                    if failures != budget {
                        fail(
                            "safety.fallback_budget",
                            format!(
                                "fallback engaged after {failures} failures; the configured budget is {budget}"
                            ),
                            report,
                        );
                    }
                }
                self.fallback_engaged = true;
            }
            _ => {}
        }
    }

    /// The degradation counter must agree with the event stream (only
    /// provable when the ring dropped nothing).
    fn finish(
        &self,
        scope: &str,
        counters: &BTreeMap<String, u64>,
        dropped: u64,
        report: &mut AuditReport,
    ) {
        if dropped != 0 {
            return;
        }
        if let Some(counted) = counter_of(counters, scope, "safety.degradations") {
            report.checks += 1;
            if counted != self.events_seen {
                report.violations.push(Violation {
                    invariant: "safety.event_count",
                    scope: scope.to_string(),
                    seq: None,
                    slot: None,
                    message: format!(
                        "safety.degradations counter reads {counted} but {} safety.* events are in the trace",
                        self.events_seen
                    ),
                });
            }
        }
    }
}

/// Power-topology machine for one scope: replay `broker.level` events
/// against the declared `broker.element`/`broker.edge` structure.
#[derive(Default)]
struct BrokerPass {
    /// element index → (max_level, name).
    elements: BTreeMap<u64, (f64, String)>,
    edges: Vec<(u64, u64, f64)>,
    level: BTreeMap<u64, f64>,
    shutdown_started: bool,
    shutdown_complete: bool,
    shutdowns: u64,
    downs: u64,
    ups: u64,
}

impl BrokerPass {
    /// Absorb a `broker.element` / `broker.edge` declaration; other
    /// events are ignored. Declarations make the trace self-describing.
    fn declare(&mut self, e: &Event) {
        match e.name.as_str() {
            "broker.element" => {
                if let Some(idx) = Trace::field(e, "element") {
                    let max = Trace::field(e, "max_level").unwrap_or(1.0);
                    let name = e.detail.clone().unwrap_or_default();
                    self.elements.insert(idx as u64, (max, name));
                    self.level.entry(idx as u64).or_insert(0.0);
                }
            }
            "broker.edge" => {
                if let (Some(c), Some(p)) = (Trace::field(e, "child"), Trace::field(e, "provider"))
                {
                    let req = Trace::field(e, "min_provider_level").unwrap_or(1.0);
                    self.edges.push((c as u64, p as u64, req));
                }
            }
            _ => {}
        }
    }

    /// Replay one `broker.shutdown_*` / `broker.level` event; declaration
    /// events are no-ops here.
    fn replay(&mut self, scope: &str, e: &Event, report: &mut AuditReport) {
        let fail = |invariant: &'static str, message: String, report: &mut AuditReport| {
            report.violations.push(Violation {
                invariant,
                scope: scope.to_string(),
                seq: Some(e.seq),
                slot: e.slot,
                message,
            });
        };
        match e.name.as_str() {
            "broker.shutdown_start" => {
                self.shutdowns += 1;
                report.checks += 1;
                if self.shutdowns > 1 {
                    fail(
                        "broker.shutdown_once",
                        "a second terminal shutdown started; the walk is final".into(),
                        report,
                    );
                }
                self.shutdown_started = true;
            }
            "broker.shutdown_complete" => self.shutdown_complete = true,
            "broker.level" => {
                report.checks += 1;
                let (Some(el), Some(from), Some(to)) = (
                    Trace::field(e, "element"),
                    Trace::field(e, "from"),
                    Trace::field(e, "to"),
                ) else {
                    fail(
                        "broker.fields",
                        "broker.level event lacks element/from/to".into(),
                        report,
                    );
                    return;
                };
                let el = el as u64;
                if self.shutdown_complete {
                    fail(
                        "broker.shutdown_final",
                        "level change after broker.shutdown_complete".into(),
                        report,
                    );
                }
                if self.shutdown_started && to > from {
                    fail(
                        "broker.shutdown_monotone",
                        format!("element {el} rose {from} → {to} during terminal shutdown"),
                        report,
                    );
                }
                match self.elements.get(&el) {
                    None => fail(
                        "broker.unknown_element",
                        format!("level change on undeclared element {el}"),
                        report,
                    ),
                    Some((max, name)) => {
                        if to > *max {
                            fail(
                                "broker.level_range",
                                format!("element {el} ({name}) raised to {to}, above max {max}"),
                                report,
                            );
                        }
                    }
                }
                if let Some(cur) = self.level.get(&el) {
                    if from != *cur {
                        fail(
                            "broker.level_chain",
                            format!(
                                "element {el} change starts at {from} but the replayed level is {cur}"
                            ),
                            report,
                        );
                    }
                }
                if to < from {
                    self.downs += 1;
                } else if to > from {
                    self.ups += 1;
                }
                self.level.insert(el, to);
                // The core invariant, holding after *every* change: no
                // powered element above an under-level provider. This
                // doubles as the ordering check — any provider-first
                // drop or child-first raise trips it mid-reconciliation.
                report.checks += 1;
                for &(child, provider, req) in &self.edges {
                    let cl = self.level.get(&child).copied().unwrap_or(0.0);
                    let pl = self.level.get(&provider).copied().unwrap_or(0.0);
                    if cl >= 1.0 && pl < req {
                        fail(
                            "broker.legality",
                            format!(
                                "element {child} powered at {cl} while provider {provider} sits at {pl} (needs {req})"
                            ),
                            report,
                        );
                    }
                }
            }
            _ => {}
        }
    }

    /// Census: the counters must agree with the replayed stream (only
    /// provable when the ring dropped nothing).
    fn finish(
        &self,
        scope: &str,
        counters: &BTreeMap<String, u64>,
        dropped: u64,
        report: &mut AuditReport,
    ) {
        if dropped != 0 {
            return;
        }
        let mut check = |counter: &str, seen: u64| {
            if let Some(counted) = counter_of(counters, scope, counter) {
                report.checks += 1;
                if counted != seen {
                    report.violations.push(Violation {
                        invariant: "broker.census",
                        scope: scope.to_string(),
                        seq: None,
                        slot: None,
                        message: format!(
                            "{counter} counter reads {counted} but the stream replays {seen}"
                        ),
                    });
                }
            }
        };
        check("broker.revocations", self.downs);
        check("broker.restores", self.ups);
        check("broker.terminal_shutdowns", self.shutdowns);
    }
}

/// Online invariant machines for one scope, fed as lines arrive.
#[derive(Default)]
struct OnlineScope {
    seq: SeqPass,
    slots: SlotPass,
    safety: SafetyPass,
    broker: BrokerPass,
}

/// Everything retained about one scope: the event buffer for the
/// canonical finish pass, plus the live machines.
#[derive(Default)]
struct ScopeState {
    events: Vec<Event>,
    online: OnlineScope,
}

/// Incremental audit engine: push [`TraceLine`]s as they arrive, collect
/// immediate (event-anchored) violations from each push, and call
/// [`AuditState::finish`] for the canonical whole-stream report.
///
/// See the module docs for the online-vs-canonical contract. The online
/// pass uses only the gauges already streamed, so emitters that want live
/// battery-window and safety-config checks must send their config gauges
/// before the first event — which the simulator and `dpm-serve` both do.
pub struct AuditState {
    cfg: AuditConfig,
    /// The advertised header, when one was pushed (batch documents always
    /// carry one first; live streams may append it at close).
    meta: Option<TraceMeta>,
    /// Number of meta lines pushed — a second one is itself a violation.
    meta_lines: u64,
    /// Events pushed so far (the body count the meta must match).
    body_events: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    scopes: BTreeMap<String, ScopeState>,
    /// Every violation the online pass has flagged, in push order.
    online: Vec<Violation>,
    /// Scratch min-slack for the online slot machines (the canonical one
    /// is recomputed in `finish` over sorted scopes).
    online_min_slack: MinSlack,
}

impl AuditState {
    /// A fresh auditor.
    pub fn new(cfg: AuditConfig) -> Self {
        Self {
            cfg,
            meta: None,
            meta_lines: 0,
            body_events: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            scopes: BTreeMap::new(),
            online: Vec::new(),
            online_min_slack: None,
        }
    }

    /// Consume one line; returns the violations that became observable at
    /// exactly this line (empty for a healthy stream). Gauge-anchored
    /// end-of-run checks are deferred to [`AuditState::finish`].
    pub fn push(&mut self, line: &TraceLine) -> Vec<Violation> {
        let mut fresh = AuditReport::default();
        match line {
            TraceLine::Meta(m) => {
                self.meta_lines += 1;
                if self.meta.is_some() {
                    fresh.violations.push(Violation {
                        invariant: "meta.duplicate",
                        scope: String::new(),
                        seq: None,
                        slot: None,
                        message: "a second meta header arrived mid-stream".into(),
                    });
                } else {
                    self.meta = Some(m.clone());
                }
            }
            TraceLine::Event(e) => {
                self.body_events += 1;
                let tol = self.cfg.tolerance_j;
                let window = (
                    gauge_of(&self.gauges, &e.scope, "sim.c_min_j"),
                    gauge_of(&self.gauges, &e.scope, "sim.c_max_j"),
                );
                let safety_cfg = (
                    gauge_of(&self.gauges, &e.scope, "safety.shed_step"),
                    gauge_of(&self.gauges, &e.scope, "safety.backoff_slots"),
                    gauge_of(&self.gauges, &e.scope, "safety.max_replan_failures"),
                );
                let state = self.scopes.entry(e.scope.clone()).or_default();
                state.online.seq.step(&e.scope, e, &mut fresh);
                if e.name == "sim.slot" {
                    state.online.slots.step(
                        &e.scope,
                        e,
                        window,
                        tol,
                        &mut fresh,
                        &mut self.online_min_slack,
                    );
                } else if e.name.starts_with("safety.") {
                    state
                        .online
                        .safety
                        .step(&e.scope, e, safety_cfg, &mut fresh);
                } else if e.name.starts_with("broker.") {
                    state.online.broker.declare(e);
                    // The replay needs the declared structure; until the
                    // first declaration arrives level events are held for
                    // the canonical pass (which sees the whole buffer).
                    if !state.online.broker.elements.is_empty() {
                        state.online.broker.replay(&e.scope, e, &mut fresh);
                    }
                }
                state.events.push(e.clone());
            }
            TraceLine::Counter(c) => {
                self.counters.insert(c.name.clone(), c.value);
            }
            TraceLine::Gauge(g) => {
                self.gauges.insert(g.name.clone(), g.value);
            }
            TraceLine::Histogram(_) | TraceLine::Span(_) => {}
        }
        self.online.extend(fresh.violations.iter().cloned());
        fresh.violations
    }

    /// Whether the online pass has flagged anything so far.
    pub fn ok_so_far(&self) -> bool {
        self.online.is_empty()
    }

    /// Every violation the online pass has flagged, in push order.
    pub fn online_violations(&self) -> &[Violation] {
        &self.online
    }

    /// Assemble the canonical report: re-walk the retained buffers against
    /// the final gauge/counter maps, exactly as the whole-file audit
    /// always has. Identical to `audit(&trace, &cfg)` when the pushed
    /// lines came from a parsed trace, in any chunking.
    pub fn finish(&self) -> AuditReport {
        let mut report = AuditReport::default();
        let tol = self.cfg.tolerance_j;

        // 1. Meta consistency.
        match &self.meta {
            Some(meta) => {
                report.checks += 1;
                if meta.events != self.body_events {
                    report.violations.push(Violation {
                        invariant: "meta.events",
                        scope: String::new(),
                        seq: None,
                        slot: None,
                        message: format!(
                            "meta advertises {} events but the body holds {}",
                            meta.events, self.body_events
                        ),
                    });
                }
            }
            None => report
                .notes
                .push("no meta header seen — event-count check skipped".to_string()),
        }
        if self.meta_lines > 1 {
            report.violations.push(Violation {
                invariant: "meta.duplicate",
                scope: String::new(),
                seq: None,
                slot: None,
                message: format!("{} meta headers in one stream", self.meta_lines),
            });
        }
        let dropped = self.meta.as_ref().map_or(0, |m| m.dropped);
        if dropped > 0 {
            report.notes.push(format!(
                "{dropped} events were dropped at the ring capacity: slot-sum and event-count checks skipped"
            ));
        }

        report.scopes = self.scopes.len();
        let mut min_slack: MinSlack = None;

        for (scope, state) in &self.scopes {
            let events = &state.events;

            // Sequence monotonicity over every event.
            let mut seq = SeqPass::default();
            for e in events {
                seq.step(scope, e, &mut report);
            }

            // Battery envelope / slot order / undersupply.
            let has_slots = events.iter().any(|e| e.name == "sim.slot");
            if has_slots {
                let window = (
                    gauge_of(&self.gauges, scope, "sim.c_min_j"),
                    gauge_of(&self.gauges, scope, "sim.c_max_j"),
                );
                if window.0.is_none() || window.1.is_none() {
                    report.notes.push(format!(
                        "scope \"{scope}\": no sim.c_min_j/sim.c_max_j gauges — battery-window check skipped"
                    ));
                }
                let mut slots = SlotPass::default();
                for e in events.iter().filter(|e| e.name == "sim.slot") {
                    slots.step(scope, e, window, tol, &mut report, &mut min_slack);
                }
                slots.finish(scope, &self.gauges, tol, dropped, &mut report);
            }

            // Safety-machine legality.
            let safety_cfg = (
                gauge_of(&self.gauges, scope, "safety.shed_step"),
                gauge_of(&self.gauges, scope, "safety.backoff_slots"),
                gauge_of(&self.gauges, scope, "safety.max_replan_failures"),
            );
            let mut safety = SafetyPass::default();
            for e in events.iter().filter(|e| e.name.starts_with("safety.")) {
                safety.step(scope, e, safety_cfg, &mut report);
            }
            safety.finish(scope, &self.counters, dropped, &mut report);

            // Topology legality: collect every declaration first (the
            // batch contract — declarations anywhere in the stream apply
            // to the whole replay), then walk the level changes.
            let broker_events: Vec<&Event> = events
                .iter()
                .filter(|e| e.name.starts_with("broker."))
                .collect();
            if !broker_events.is_empty() {
                let mut broker = BrokerPass::default();
                for e in &broker_events {
                    broker.declare(e);
                }
                let has_levels = broker_events.iter().any(|e| e.name == "broker.level");
                if broker.elements.is_empty() {
                    if has_levels {
                        report.notes.push(format!(
                            "scope \"{scope}\": broker.level events without broker.element declarations — legality replay skipped"
                        ));
                    }
                } else {
                    for e in &broker_events {
                        broker.replay(scope, e, &mut report);
                    }
                    broker.finish(scope, &self.counters, dropped, &mut report);
                }
            }
        }

        // Gauge-only closing balance, independent of the event ring.
        audit_energy_balance(&self.gauges, tol, &mut report);

        if let Some((slack, scope, slot)) = min_slack {
            report.notes.push(format!(
                "minimum battery slack to the window edge: {slack:.6} J (scope \"{scope}\", slot {slot})"
            ));
        }
        report
    }
}

/// Audit `trace` against every invariant family; a thin loop over
/// [`AuditState`] — see the module docs.
pub fn audit(trace: &Trace, cfg: &AuditConfig) -> AuditReport {
    let mut state = AuditState::new(*cfg);
    state.push(&TraceLine::Meta(trace.meta.clone()));
    for e in &trace.events {
        state.push(&TraceLine::Event(e.clone()));
    }
    // Counters and gauges are last-write-wins maps: replaying only the
    // final values is exactly what the serialized document does.
    for (name, &value) in &trace.counters {
        state.push(&TraceLine::Counter(dpm_telemetry::CounterLine {
            name: name.clone(),
            value,
        }));
    }
    for (name, &value) in &trace.gauges {
        state.push(&TraceLine::Gauge(dpm_telemetry::GaugeLine {
            name: name.clone(),
            value,
        }));
    }
    state.finish()
}

/// Closing energy balance from gauges alone (Eq. 8 over the whole run):
/// `offered − wasted − rate_loss − delivered − (final − initial) ≈ 0`,
/// for every scope that advertises exact accounting.
fn audit_energy_balance(gauges: &BTreeMap<String, f64>, tol: f64, report: &mut AuditReport) {
    // Enumerate scopes from the gauge map so the check also covers scopes
    // whose events were dropped from the ring.
    let mut scopes: BTreeMap<&str, ()> = BTreeMap::new();
    for name in gauges.keys() {
        let (scope, metric) = split_scoped(name);
        if metric == "sim.final_battery_j" {
            scopes.insert(scope, ());
        }
    }
    for (scope, ()) in scopes {
        let conserving = gauge_of(gauges, scope, "sim.energy_conserving");
        if conserving != Some(1.0) {
            if conserving == Some(0.0) {
                report.notes.push(format!(
                    "scope \"{scope}\": battery does not conserve energy exactly — balance check skipped"
                ));
            }
            continue;
        }
        let needed = [
            gauge_of(gauges, scope, "sim.offered_j"),
            gauge_of(gauges, scope, "sim.wasted_j"),
            gauge_of(gauges, scope, "sim.rate_loss_j"),
            gauge_of(gauges, scope, "sim.delivered_j"),
            gauge_of(gauges, scope, "sim.initial_battery_j"),
            gauge_of(gauges, scope, "sim.final_battery_j"),
        ];
        let [Some(offered), Some(wasted), Some(rate_loss), Some(delivered), Some(initial), Some(fin)] =
            needed
        else {
            report.notes.push(format!(
                "scope \"{scope}\": incomplete sim.* gauges — balance check skipped"
            ));
            continue;
        };
        report.checks += 1;
        let residual = offered - wasted - rate_loss - delivered - (fin - initial);
        if residual.abs() > tol {
            report.violations.push(Violation {
                invariant: "energy.balance",
                scope: scope.to_string(),
                seq: None,
                slot: None,
                message: format!(
                    "offered {offered} − wasted {wasted} − rate_loss {rate_loss} − delivered {delivered} − ΔE {} leaves {residual} J unaccounted",
                    fin - initial
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_telemetry::{parse_trace_jsonl, Recorder};

    /// A minimal healthy single-scope run: 3 slots, window [0.5, 16].
    fn healthy_recorder() -> Recorder {
        let rec = Recorder::enabled("unit");
        rec.gauge("sim.c_min_j", 0.5);
        rec.gauge("sim.c_max_j", 16.0);
        rec.gauge("sim.initial_battery_j", 8.0);
        rec.gauge("sim.energy_conserving", 1.0);
        // Start at 8 J; each slot nets +0.5 J (supplied 1.0, used 0.5),
        // so Eq. 8 closes exactly: 3 − 0 − 0 − 1.5 − 1.5 = 0.
        let levels = [8.5, 9.0, 9.5];
        let supplied = 1.0; // per slot
        let used = 0.5; // per slot
        for (i, level) in levels.iter().enumerate() {
            rec.event(
                "sim.slot",
                Some(i as u64),
                i as f64 * 4.8,
                &[
                    ("battery_j", *level),
                    ("used_j", used),
                    ("supplied_j", supplied),
                    ("undersupplied_j", 0.0),
                    ("jobs", 1.0),
                    ("backlog", 0.0),
                ],
            );
        }
        rec.gauge("sim.final_battery_j", 9.5);
        rec.gauge("sim.delivered_j", 1.5);
        rec.gauge("sim.offered_j", 3.0);
        rec.gauge("sim.wasted_j", 0.0);
        rec.gauge("sim.rate_loss_j", 0.0);
        rec.gauge("sim.undersupplied_j", 0.0);
        rec
    }

    fn audit_str(jsonl: &str) -> AuditReport {
        let trace = Trace::parse(jsonl).unwrap();
        audit(&trace, &AuditConfig::default())
    }

    #[test]
    fn healthy_trace_passes_with_slack_note() {
        let report = audit_str(&healthy_recorder().to_jsonl());
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.checks > 5);
        assert!(
            report.notes.iter().any(|n| n.contains("slack")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn battery_outside_the_window_is_pinpointed() {
        let rec = healthy_recorder();
        rec.event(
            "sim.slot",
            Some(3),
            14.4,
            &[
                ("battery_j", 21.0), // past C_max = 16
                ("used_j", 0.0),
                ("supplied_j", 0.0),
                ("undersupplied_j", 0.0),
            ],
        );
        let report = audit_str(&rec.to_jsonl());
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "battery.window")
            .expect("window violation");
        assert_eq!(v.slot, Some(3));
        assert_eq!(v.seq, Some(3));
        assert_eq!(v.scope, "");
        // The late extra slot also breaks the stream-vs-gauge anchors.
        assert!(!report.ok());
    }

    #[test]
    fn undersupply_must_not_decrease() {
        let rec = Recorder::enabled("unit");
        rec.event(
            "sim.slot",
            Some(0),
            0.0,
            &[("battery_j", 1.0), ("undersupplied_j", 2.0)],
        );
        rec.event(
            "sim.slot",
            Some(1),
            4.8,
            &[("battery_j", 1.0), ("undersupplied_j", 1.0)],
        );
        let report = audit_str(&rec.to_jsonl());
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "undersupply.monotonic")
            .expect("monotonicity violation");
        assert_eq!(v.slot, Some(1));
    }

    #[test]
    fn sum_mismatch_against_gauges_is_flagged() {
        let rec = healthy_recorder();
        rec.gauge("sim.delivered_j", 99.0); // stream sums to 1.5
        let report = audit_str(&rec.to_jsonl());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "energy.delivered"));
    }

    #[test]
    fn closing_balance_catches_unaccounted_energy() {
        let rec = healthy_recorder();
        rec.gauge("sim.offered_j", 5.0); // breaks both the sum and Eq. 8
        let report = audit_str(&rec.to_jsonl());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "energy.offered"));
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "energy.balance"));
    }

    #[test]
    fn non_conserving_batteries_skip_the_balance() {
        let rec = healthy_recorder();
        rec.gauge("sim.energy_conserving", 0.0);
        rec.gauge("sim.offered_j", 5.0); // would break Eq. 8
        let report = audit_str(&rec.to_jsonl());
        assert!(!report
            .violations
            .iter()
            .any(|v| v.invariant == "energy.balance"));
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("balance check skipped")));
    }

    fn safety_config(rec: &Recorder) {
        rec.gauge("safety.shed_step", 1.0);
        rec.gauge("safety.backoff_slots", 1.0);
        rec.gauge("safety.max_replan_failures", 3.0);
    }

    #[test]
    fn legal_safety_stream_passes() {
        let rec = Recorder::enabled("unit");
        safety_config(&rec);
        rec.event(
            "safety.shed",
            Some(0),
            0.0,
            &[("from_level", 0.0), ("to_level", 1.0)],
        );
        rec.event(
            "safety.shed",
            Some(1),
            4.8,
            &[("from_level", 1.0), ("to_level", 2.0)],
        );
        rec.event(
            "safety.recover",
            Some(3),
            14.4,
            &[("from_level", 2.0), ("to_level", 1.0)],
        );
        rec.event("safety.replan_failed", Some(4), 19.2, &[("failures", 1.0)]);
        rec.event("safety.replan_recovered", Some(6), 28.8, &[("after", 1.0)]);
        rec.incr("safety.degradations", 5);
        let report = audit_str(&rec.to_jsonl());
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn out_of_order_shed_levels_are_pinpointed() {
        let rec = Recorder::enabled("unit");
        safety_config(&rec);
        rec.event(
            "safety.shed",
            Some(0),
            0.0,
            &[("from_level", 0.0), ("to_level", 1.0)],
        );
        // Chain break: previous transition ended at 1, this one starts at 3.
        rec.event(
            "safety.shed",
            Some(1),
            4.8,
            &[("from_level", 3.0), ("to_level", 4.0)],
        );
        rec.incr("safety.degradations", 2);
        let report = audit_str(&rec.to_jsonl());
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "safety.level_chain")
            .expect("chain violation");
        assert_eq!((v.seq, v.slot), (Some(1), Some(1)));
    }

    #[test]
    fn oversized_shed_and_multi_rank_recovery_are_illegal() {
        let rec = Recorder::enabled("unit");
        safety_config(&rec); // shed_step = 1
        rec.event(
            "safety.shed",
            Some(0),
            0.0,
            &[("from_level", 0.0), ("to_level", 2.0)],
        );
        rec.event(
            "safety.recover",
            Some(1),
            4.8,
            &[("from_level", 2.0), ("to_level", 0.0)],
        );
        rec.incr("safety.degradations", 2);
        let report = audit_str(&rec.to_jsonl());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "safety.shed_step"));
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "safety.recover_step"));
    }

    #[test]
    fn fallback_is_terminal_and_respects_the_budget() {
        let rec = Recorder::enabled("unit");
        safety_config(&rec);
        rec.event("safety.replan_failed", Some(0), 0.0, &[("failures", 1.0)]);
        rec.event("safety.replan_failed", Some(3), 14.4, &[("failures", 2.0)]);
        rec.event("safety.replan_failed", Some(7), 33.6, &[("failures", 3.0)]);
        rec.event(
            "safety.fallback_engaged",
            Some(7),
            33.6,
            &[("failures", 3.0)],
        );
        // Illegal: the inner governor must never be consulted again.
        rec.event("safety.replan_failed", Some(9), 43.2, &[("failures", 4.0)]);
        rec.incr("safety.degradations", 5);
        let report = audit_str(&rec.to_jsonl());
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "safety.fallback_terminal")
            .expect("terminal violation");
        assert_eq!(v.slot, Some(9));
    }

    #[test]
    fn retry_before_the_dwell_is_illegal() {
        let rec = Recorder::enabled("unit");
        safety_config(&rec); // backoff_slots = 1
        rec.event("safety.replan_failed", Some(4), 19.2, &[("failures", 1.0)]);
        // Earliest legal retry: slot 4 + 1 + 1·1 = 6. Slot 5 is too soon.
        rec.event("safety.replan_failed", Some(5), 24.0, &[("failures", 2.0)]);
        rec.incr("safety.degradations", 2);
        let report = audit_str(&rec.to_jsonl());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "safety.retry_dwell"));
    }

    #[test]
    fn degradation_counter_must_match_the_event_stream() {
        let rec = Recorder::enabled("unit");
        rec.event(
            "safety.shed",
            Some(0),
            0.0,
            &[("from_level", 0.0), ("to_level", 1.0)],
        );
        rec.incr("safety.degradations", 7);
        let report = audit_str(&rec.to_jsonl());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "safety.event_count"));
    }

    /// Declare a bus → ring → chip chain and optionally some activity.
    fn broker_recorder() -> Recorder {
        let rec = Recorder::enabled("unit");
        for (i, name) in ["bus", "ring", "chip"].iter().enumerate() {
            rec.event_with_detail(
                "broker.element",
                None,
                0.0,
                &[("element", i as f64), ("max_level", 1.0), ("floor", 0.0)],
                name,
            );
        }
        for (child, provider) in [(1.0, 0.0), (2.0, 1.0)] {
            rec.event(
                "broker.edge",
                None,
                0.0,
                &[
                    ("child", child),
                    ("provider", provider),
                    ("min_provider_level", 1.0),
                ],
            );
        }
        rec
    }

    fn level(rec: &Recorder, slot: u64, element: f64, from: f64, to: f64, cause: &str) {
        rec.event_with_detail(
            "broker.level",
            Some(slot),
            slot as f64 * 4.8,
            &[("element", element), ("from", from), ("to", to)],
            cause,
        );
        if to < from {
            rec.incr("broker.revocations", 1);
        } else {
            rec.incr("broker.restores", 1);
        }
    }

    #[test]
    fn legal_broker_stream_passes() {
        let rec = broker_recorder();
        // Providers-first raise, leaves-first revoke: legal throughout.
        level(&rec, 0, 0.0, 0.0, 1.0, "grant");
        level(&rec, 0, 1.0, 0.0, 1.0, "grant");
        level(&rec, 0, 2.0, 0.0, 1.0, "grant");
        level(&rec, 3, 2.0, 1.0, 0.0, "revoke");
        level(&rec, 3, 1.0, 1.0, 0.0, "revoke");
        level(&rec, 3, 0.0, 1.0, 0.0, "revoke");
        let report = audit_str(&rec.to_jsonl());
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn child_powered_above_a_dead_provider_is_flagged() {
        let rec = broker_recorder();
        level(&rec, 0, 0.0, 0.0, 1.0, "grant");
        level(&rec, 0, 1.0, 0.0, 1.0, "grant");
        level(&rec, 0, 2.0, 0.0, 1.0, "grant");
        // Flat-style fault: the ring dies, the chip stays at level 1.
        level(&rec, 2, 1.0, 1.0, 0.0, "cascade");
        let report = audit_str(&rec.to_jsonl());
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "broker.legality")
            .expect("legality violation");
        assert_eq!(v.slot, Some(2));
        assert!(v.message.contains("element 2"), "{}", v.message);
    }

    #[test]
    fn provider_first_drop_order_is_flagged_mid_reconciliation() {
        let rec = broker_recorder();
        level(&rec, 0, 0.0, 0.0, 1.0, "grant");
        level(&rec, 0, 1.0, 0.0, 1.0, "grant");
        level(&rec, 0, 2.0, 0.0, 1.0, "grant");
        // Wrong order: the ring drops before its dependent chip.
        level(&rec, 1, 1.0, 1.0, 0.0, "revoke");
        level(&rec, 1, 2.0, 1.0, 0.0, "revoke");
        let report = audit_str(&rec.to_jsonl());
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "broker.legality")
            .expect("ordering flagged via legality");
        // Anchored to the provider's drop, the first illegal state.
        assert_eq!(v.slot, Some(1));
    }

    #[test]
    fn level_chain_breaks_and_range_overruns_are_flagged() {
        let rec = broker_recorder();
        level(&rec, 0, 0.0, 0.0, 1.0, "grant");
        // Chain break: bus is at 1 but this change claims from = 0.
        level(&rec, 1, 0.0, 0.0, 2.0, "grant");
        let report = audit_str(&rec.to_jsonl());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "broker.level_chain"));
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "broker.level_range"));
    }

    #[test]
    fn terminal_shutdown_must_be_monotone_and_final() {
        let rec = broker_recorder();
        level(&rec, 0, 0.0, 0.0, 1.0, "grant");
        level(&rec, 0, 1.0, 0.0, 1.0, "grant");
        rec.event("broker.shutdown_start", Some(2), 9.6, &[("elements", 3.0)]);
        rec.incr("broker.terminal_shutdowns", 1);
        level(&rec, 2, 1.0, 1.0, 0.0, "shutdown");
        // Illegal: a rise mid-shutdown.
        level(&rec, 2, 2.0, 0.0, 1.0, "shutdown");
        rec.event(
            "broker.shutdown_complete",
            Some(2),
            9.6,
            &[("changes", 2.0)],
        );
        // Illegal: any level change after the walk completes.
        level(&rec, 3, 0.0, 1.0, 0.0, "revoke");
        let report = audit_str(&rec.to_jsonl());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "broker.shutdown_monotone"));
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "broker.shutdown_final"));
    }

    #[test]
    fn broker_census_must_match_the_stream() {
        let rec = broker_recorder();
        level(&rec, 0, 0.0, 0.0, 1.0, "grant");
        rec.incr("broker.restores", 5); // stream shows 1, counter 6
        let report = audit_str(&rec.to_jsonl());
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "broker.census")
            .expect("census violation");
        assert!(v.message.contains("broker.restores"), "{}", v.message);
    }

    #[test]
    fn undeclared_topology_skips_replay_with_a_note() {
        let rec = Recorder::enabled("unit");
        rec.event_with_detail(
            "broker.level",
            Some(0),
            0.0,
            &[("element", 0.0), ("from", 0.0), ("to", 1.0)],
            "grant",
        );
        let report = audit_str(&rec.to_jsonl());
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("legality replay skipped")));
    }

    #[test]
    fn non_monotonic_seq_is_caught() {
        // Hand-build a trace with a rewound sequence number.
        let rec = Recorder::enabled("unit");
        rec.event("a", Some(0), 0.0, &[]);
        rec.event("b", Some(1), 1.0, &[]);
        let mut jsonl = rec.to_jsonl();
        jsonl = jsonl.replace("\"seq\":1", "\"seq\":0");
        let report = audit_str(&jsonl);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "seq.monotonic"));
    }

    #[test]
    fn meta_event_count_mismatch_is_caught() {
        let rec = Recorder::enabled("unit");
        rec.event("a", Some(0), 0.0, &[]);
        let jsonl = rec.to_jsonl().replace("\"events\":1", "\"events\":5");
        let report = audit_str(&jsonl);
        assert_eq!(report.first().map(|v| v.invariant), Some("meta.events"));
    }

    #[test]
    fn dropped_events_skip_sum_checks_with_a_note() {
        let rec = Recorder::with_capacity("unit", 2);
        rec.gauge("sim.delivered_j", 99.0); // would fail the sum check
        for i in 0..5u64 {
            rec.event(
                "sim.slot",
                Some(i),
                i as f64,
                &[("battery_j", 1.0), ("used_j", 0.1), ("supplied_j", 0.1)],
            );
        }
        let report = audit_str(&rec.to_jsonl());
        assert!(!report
            .violations
            .iter()
            .any(|v| v.invariant == "energy.delivered"));
        assert!(report.notes.iter().any(|n| n.contains("dropped")));
    }

    #[test]
    fn violations_render_with_their_anchor() {
        let v = Violation {
            invariant: "battery.window",
            scope: "table1/0".into(),
            seq: Some(12),
            slot: Some(4),
            message: "out of window".into(),
        };
        let s = v.to_string();
        assert!(
            s.contains("battery.window") && s.contains("table1/0"),
            "{s}"
        );
        assert!(s.contains("seq=12") && s.contains("slot=4"), "{s}");
    }

    // ---- incremental engine -------------------------------------------

    /// Feed a JSONL document line-by-line through an [`AuditState`].
    fn replay_lines(jsonl: &str) -> AuditState {
        let mut state = AuditState::new(AuditConfig::default());
        for line in parse_trace_jsonl(jsonl).unwrap() {
            state.push(&line);
        }
        state
    }

    #[test]
    fn incremental_replay_equals_batch_audit() {
        // A trace exercising every family at once: slots + safety +
        // broker + a deliberate window violation and census mismatch.
        let rec = healthy_recorder();
        safety_config(&rec);
        rec.event(
            "safety.shed",
            Some(0),
            0.0,
            &[("from_level", 0.0), ("to_level", 1.0)],
        );
        rec.incr("safety.degradations", 3); // census mismatch
        rec.event(
            "sim.slot",
            Some(9),
            43.2,
            &[("battery_j", 99.0), ("used_j", 0.0), ("supplied_j", 0.0)],
        );
        let jsonl = rec.to_jsonl();
        let batch = audit_str(&jsonl);
        let incremental = replay_lines(&jsonl).finish();
        assert_eq!(batch, incremental);
        assert!(!batch.ok());
    }

    #[test]
    fn incremental_replay_is_chunking_invariant() {
        let jsonl = healthy_recorder().to_jsonl();
        let lines = parse_trace_jsonl(&jsonl).unwrap();
        let whole = audit_str(&jsonl);
        // Any split point yields the same canonical report.
        for split in 0..=lines.len() {
            let mut state = AuditState::new(AuditConfig::default());
            for line in &lines[..split] {
                state.push(line);
            }
            for line in &lines[split..] {
                state.push(line);
            }
            assert_eq!(state.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn online_window_violation_is_flagged_on_the_offending_push() {
        // Live order: config gauges first, then events — the emitter
        // contract that makes the online window check possible.
        let mut state = AuditState::new(AuditConfig::default());
        state.push(&TraceLine::Gauge(dpm_telemetry::GaugeLine {
            name: "sim.c_min_j".into(),
            value: 0.5,
        }));
        state.push(&TraceLine::Gauge(dpm_telemetry::GaugeLine {
            name: "sim.c_max_j".into(),
            value: 16.0,
        }));
        let healthy = Event {
            seq: 0,
            scope: String::new(),
            name: "sim.slot".into(),
            slot: Some(0),
            time: 0.0,
            fields: vec![("battery_j".into(), 8.0)],
            detail: None,
        };
        assert!(state.push(&TraceLine::Event(healthy.clone())).is_empty());
        assert!(state.ok_so_far());
        let mut bad = healthy;
        bad.seq = 1;
        bad.slot = Some(1);
        bad.fields = vec![("battery_j".into(), 21.0)];
        let fresh = state.push(&TraceLine::Event(bad));
        assert_eq!(fresh.len(), 1, "{fresh:?}");
        assert_eq!(fresh[0].invariant, "battery.window");
        assert_eq!(fresh[0].slot, Some(1));
        assert!(!state.ok_so_far());
        assert_eq!(state.online_violations().len(), 1);
    }

    #[test]
    fn online_safety_and_seq_violations_fire_immediately() {
        let mut state = AuditState::new(AuditConfig::default());
        let shed = |seq: u64, slot: u64, from: f64, to: f64| {
            TraceLine::Event(Event {
                seq,
                scope: String::new(),
                name: "safety.shed".into(),
                slot: Some(slot),
                time: slot as f64 * 4.8,
                fields: vec![("from_level".into(), from), ("to_level".into(), to)],
                detail: None,
            })
        };
        assert!(state.push(&shed(0, 0, 0.0, 1.0)).is_empty());
        // Chain break flagged on this very push.
        let fresh = state.push(&shed(1, 1, 3.0, 4.0));
        assert!(
            fresh.iter().any(|v| v.invariant == "safety.level_chain"),
            "{fresh:?}"
        );
        // A rewound seq too.
        let fresh = state.push(&shed(0, 2, 4.0, 5.0));
        assert!(
            fresh.iter().any(|v| v.invariant == "seq.monotonic"),
            "{fresh:?}"
        );
    }

    #[test]
    fn duplicate_meta_is_flagged_online_and_in_the_report() {
        let meta = TraceLine::Meta(TraceMeta {
            schema: dpm_telemetry::SCHEMA_VERSION,
            source: "unit".into(),
            events: 0,
            dropped: 0,
        });
        let mut state = AuditState::new(AuditConfig::default());
        assert!(state.push(&meta).is_empty());
        let fresh = state.push(&meta);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].invariant, "meta.duplicate");
        let report = state.finish();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "meta.duplicate"));
    }

    #[test]
    fn metaless_stream_skips_the_count_check_with_a_note() {
        let mut state = AuditState::new(AuditConfig::default());
        state.push(&TraceLine::Event(Event {
            seq: 0,
            scope: String::new(),
            name: "a".into(),
            slot: None,
            time: 0.0,
            fields: Vec::new(),
            detail: None,
        }));
        let report = state.finish();
        assert!(report.ok(), "{:?}", report.violations);
        assert!(
            report.notes.iter().any(|n| n.contains("no meta header")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn trailing_meta_still_anchors_the_count_check() {
        // Live sessions append the header at close; the count check must
        // work no matter where the meta line sat in the stream.
        let rec = Recorder::enabled("unit");
        rec.event("a", Some(0), 0.0, &[]);
        let lines = parse_trace_jsonl(&rec.to_jsonl()).unwrap();
        let mut state = AuditState::new(AuditConfig::default());
        for line in lines.iter().skip(1) {
            state.push(line);
        }
        state.push(&lines[0]);
        let report = state.finish();
        assert!(report.ok(), "{:?}", report.violations);

        // And a lying trailing header is still caught.
        let mut state = AuditState::new(AuditConfig::default());
        state.push(&TraceLine::Meta(TraceMeta {
            schema: dpm_telemetry::SCHEMA_VERSION,
            source: "unit".into(),
            events: 5,
            dropped: 0,
        }));
        let report = state.finish();
        assert_eq!(report.first().map(|v| v.invariant), Some("meta.events"));
    }
}
