//! Offline stand-in for `rand`.
//!
//! Provides `rngs::StdRng`, `Rng`, and `SeedableRng` with the exact call
//! surface this workspace uses: `seed_from_u64`, `gen::<f64>()`, and
//! `gen_range` over float/integer ranges. Backed by SplitMix64 — not
//! cryptographic, but deterministic per seed, which is all the simulator
//! and workload generators require.

use std::ops::{Range, RangeInclusive};

/// Core RNG surface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its full/natural range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample(rng) * (hi - lo)
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize);

/// Standard RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}
