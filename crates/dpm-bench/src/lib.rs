//! # dpm-bench
//!
//! The reproduction harness: deterministic experiment functions for every
//! table and figure in the paper ([`experiments`]), text renderers in the
//! paper's layouts ([`mod@format`]), the parallel experiment runner that
//! fans independent jobs across cores ([`runner`]), the sweep library the
//! `sweep` binary is a thin shell over ([`sweeps`]), the fault-injection
//! survival campaigns behind the `campaign` binary ([`campaign`]), the
//! sharded struct-of-arrays fleet campaigns behind its `--fleet` mode
//! ([`fleet`]), and the `repro` binary that prints the tables. The criterion benches under
//! `benches/` reuse the same experiment functions so performance numbers
//! and correctness numbers cannot drift apart.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod experiments;
pub mod fleet;
pub mod format;
pub mod runner;
pub mod sweeps;
pub mod telemetry_out;
pub mod topology;
