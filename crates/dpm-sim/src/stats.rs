//! Simulation reports: the paper's Table 1 metrics plus the supporting
//! detail a downstream user needs (throughput, latency, drops).

use serde::{Deserialize, Serialize};

/// Per-slot record of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: u64,
    /// Slot start time (s).
    pub time: f64,
    /// Worker count commanded.
    pub workers: usize,
    /// Frequency commanded (MHz).
    pub freq_mhz: f64,
    /// Energy the board drew this slot (J).
    pub used: f64,
    /// Energy offered by the source this slot (J).
    pub supplied: f64,
    /// Battery level at slot end (J).
    pub battery: f64,
    /// Jobs completed this slot.
    pub jobs: u64,
    /// Backlog at slot end.
    pub backlog: usize,
}

/// Aggregate outcome of a run — Table 1's rows come from here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Governor under test.
    pub governor: String,
    /// Simulated duration (s).
    pub duration: f64,
    /// Energy offered by the source (J).
    pub offered: f64,
    /// Energy wasted because the battery was full (J) — Table 1 metric 1.
    pub wasted: f64,
    /// Energy demanded but unavailable (J) — Table 1 metric 2.
    pub undersupplied: f64,
    /// Energy delivered to the board (J).
    pub delivered: f64,
    /// Energy delivered while the workers were computing (J).
    pub compute_energy: f64,
    /// Jobs completed.
    pub jobs_done: u64,
    /// Events dropped at the backlog cap.
    pub dropped: u64,
    /// Mean job latency (s).
    pub mean_latency: f64,
    /// Worst job latency (s).
    pub max_latency: f64,
    /// Battery level at the start (J).
    pub initial_battery: f64,
    /// Battery level at the end (J).
    pub final_battery: f64,
    /// Per-slot trace.
    pub slots: Vec<SlotRecord>,
}

impl SimReport {
    /// The paper's energy-utilization metric:
    /// (energy used for computation) / (energy available). Available
    /// energy is everything the run could have spent: the supply offered
    /// plus any net drawdown of the initial battery charge.
    pub fn utilization(&self) -> f64 {
        let drawdown = (self.initial_battery - self.final_battery).max(0.0);
        let available = self.offered + drawdown;
        if available <= 0.0 {
            0.0
        } else {
            self.compute_energy / available
        }
    }

    /// Jobs per joule delivered — an efficiency summary for the benches.
    pub fn jobs_per_joule(&self) -> f64 {
        if self.delivered <= 0.0 {
            0.0
        } else {
            self.jobs_done as f64 / self.delivered
        }
    }

    /// Throughput in jobs/s.
    pub fn throughput(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.jobs_done as f64 / self.duration
        }
    }

    /// Per-slot trace as CSV (header + one row per slot) for external
    /// plotting tools.
    pub fn slots_csv(&self) -> String {
        let mut out =
            String::from("slot,time_s,workers,freq_mhz,used_j,supplied_j,battery_j,jobs,backlog\n");
        for s in &self.slots {
            out.push_str(&format!(
                "{},{:.3},{},{:.1},{:.6},{:.6},{:.6},{},{}\n",
                s.slot,
                s.time,
                s.workers,
                s.freq_mhz,
                s.used,
                s.supplied,
                s.battery,
                s.jobs,
                s.backlog
            ));
        }
        out
    }

    /// One-line summary for console reports.
    pub fn summary(&self) -> String {
        format!(
            "{:<14} wasted {:>8.2} J  undersupplied {:>8.2} J  jobs {:>5}  util {:>5.1}%",
            self.governor,
            self.wasted,
            self.undersupplied,
            self.jobs_done,
            100.0 * self.utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            governor: "test".into(),
            duration: 100.0,
            offered: 200.0,
            wasted: 10.0,
            undersupplied: 5.0,
            delivered: 150.0,
            compute_energy: 120.0,
            jobs_done: 30,
            dropped: 2,
            mean_latency: 6.0,
            max_latency: 12.0,
            initial_battery: 8.0,
            final_battery: 8.0,
            slots: Vec::new(),
        }
    }

    #[test]
    fn utilization_ratio() {
        assert!((report().utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_offered_is_zero_utilization() {
        let mut r = report();
        r.offered = 0.0;
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn throughput_and_efficiency() {
        let r = report();
        assert!((r.throughput() - 0.3).abs() < 1e-12);
        assert!((r.jobs_per_joule() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = report();
        r.slots.push(SlotRecord {
            slot: 0,
            time: 0.0,
            workers: 3,
            freq_mhz: 40.0,
            used: 5.0,
            supplied: 6.0,
            battery: 8.0,
            jobs: 2,
            backlog: 1,
        });
        let csv = r.slots_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("slot,time_s"));
        assert!(lines[1].starts_with("0,0.000,3,40.0"));
    }

    #[test]
    fn summary_mentions_the_metrics() {
        let s = report().summary();
        assert!(s.contains("wasted"));
        assert!(s.contains("undersupplied"));
        assert!(s.contains("test"));
    }
}
