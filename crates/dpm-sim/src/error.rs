//! The simulator's error type.
//!
//! `dpm-sim` follows the same fallibility doctrine as `dpm-core`
//! (see `dpm_core::error`): conditions reachable from caller-supplied
//! inputs — a malformed battery configuration, a degenerate run
//! configuration, a governor whose plan cannot serve a slot — surface as
//! [`SimError`] values. Invariants that validated constructors already
//! guarantee stay as `debug_assert!`.

use dpm_broker::BrokerError;
use dpm_core::error::DpmError;
use std::fmt;

/// Everything that can go wrong assembling or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A core-model error propagated from `dpm-core` (the governor's plan,
    /// the platform description, a schedule, …).
    Core(DpmError),
    /// The simulated clock was asked to move backwards — a scheduling bug
    /// in the caller's event script.
    ClockRegression {
        /// Time the clock was at (s).
        from: f64,
        /// Earlier time it was asked to move to (s).
        to: f64,
    },
    /// The battery configuration is physically meaningless.
    BatteryMisconfigured(String),
    /// The run configuration cannot produce a simulation (zero periods,
    /// zero slots, zero sub-steps).
    InvalidConfig(String),
    /// A worker thread running this job in a parallel experiment harness
    /// panicked. The panic is caught at the job boundary so sibling jobs
    /// keep their results; the payload message is preserved here.
    WorkerPanic(String),
    /// A power-topology governance error propagated from `dpm-broker`
    /// (a malformed topology, a bad lease — see `crate::topo`).
    Broker(BrokerError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "{e}"),
            Self::ClockRegression { from, to } => {
                write!(f, "clock cannot run backwards: {from} s -> {to} s")
            }
            Self::BatteryMisconfigured(msg) => write!(f, "battery misconfigured: {msg}"),
            Self::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            Self::WorkerPanic(msg) => write!(f, "worker thread panicked: {msg}"),
            Self::Broker(e) => write!(f, "power topology: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::Broker(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DpmError> for SimError {
    fn from(e: DpmError) -> Self {
        Self::Core(e)
    }
}

impl From<BrokerError> for SimError {
    fn from(e: BrokerError) -> Self {
        Self::Broker(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = SimError::ClockRegression { from: 5.0, to: 4.0 };
        assert!(e.to_string().contains("backwards"));
        let e = SimError::BatteryMisconfigured("efficiency 2".into());
        assert!(e.to_string().contains("battery"));
    }

    #[test]
    fn core_errors_convert_and_chain() {
        let e: SimError = DpmError::EmptyScheduleWindow.into();
        assert_eq!(e.to_string(), DpmError::EmptyScheduleWindow.to_string());
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
