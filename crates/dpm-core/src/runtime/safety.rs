//! Graceful degradation: a wrapper that keeps *any* governor inside the
//! battery's safe envelope when the world misbehaves (DESIGN.md §9).
//!
//! The paper's controller assumes its plan is feasible and its inputs are
//! honest. Under fault injection neither holds: charging can drop out
//! mid-eclipse, processors can fail-stop, the gauge can lie, and a replan
//! can return an error. [`SafetyGovernor`] wraps an inner [`Governor`]
//! with three mechanisms:
//!
//! 1. **Load shedding.** When the measured charge enters the *guard band*
//!    — within [`SafetyConfig::guard_band`] joules of `C_min` — the
//!    wrapper steps the commanded operating point down the Pareto
//!    frontier by [`SafetyConfig::shed_step`] ranks per slot, regardless
//!    of what the inner governor asked for. Once the charge climbs back
//!    above the *recover band* the shed level relaxes one rank per slot,
//!    so recovery is deliberately slower than degradation (hysteresis —
//!    no chatter at the band edge).
//! 2. **Bounded replan retries.** An inner `decide` error does not abort
//!    the mission. The wrapper holds the last good operating point,
//!    backs off for [`SafetyConfig::backoff_slots`]·failures slots, and
//!    retries. After [`SafetyConfig::max_replan_failures`] consecutive
//!    failures it stops consulting the inner governor entirely and
//!    engages a **static fallback**: the cheapest running frontier point,
//!    which by construction draws barely more than the standby floor.
//! 3. **A degradation trace.** Every shed, recover, failure, retry
//!    success, and fallback engagement is recorded as a
//!    [`DegradationRecord`] with the slot, time, and measured charge at
//!    the transition — the fault-campaign survival reports count these.
//!
//! The wrapper never returns an error from [`Governor::decide`]; its
//! whole contract is that degraded service beats no service.

use crate::error::DpmError;
use crate::governor::{Governor, SlotObservation};
use crate::params::{OperatingPoint, ParetoTable};
use crate::platform::Platform;
use crate::units::Joules;
use dpm_telemetry::Recorder;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Tunables for the safety wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyConfig {
    /// Shed load when the measured charge is within this many joules of
    /// `C_min`.
    pub guard_band: Joules,
    /// Start relaxing the shed level once the measured charge exceeds
    /// `C_min` by this much; must be ≥ `guard_band` (hysteresis width).
    pub recover_band: Joules,
    /// Frontier ranks dropped per slot while inside the guard band.
    pub shed_step: usize,
    /// Consecutive inner-governor failures tolerated before the static
    /// fallback engages permanently.
    pub max_replan_failures: u32,
    /// Backoff between retries grows by this many slots per consecutive
    /// failure (0 = retry every slot).
    pub backoff_slots: u64,
}

impl SafetyConfig {
    /// Conservative defaults scaled to the platform's battery window:
    /// guard band at 10% of the window, recovery at 20%, one rank shed
    /// per slot, fallback after 3 consecutive replan failures with
    /// linearly growing backoff.
    pub fn default_for(platform: &Platform) -> Self {
        let window = platform.battery.window();
        Self {
            guard_band: window * 0.10,
            recover_band: window * 0.20,
            shed_step: 1,
            max_replan_failures: 3,
            backoff_slots: 1,
        }
    }

    fn validate(&self) -> Result<(), DpmError> {
        if !self.guard_band.value().is_finite() || self.guard_band.value() < 0.0 {
            return Err(DpmError::InvalidParameter {
                name: "guard_band",
                reason: format!("must be finite and >= 0, got {}", self.guard_band.value()),
            });
        }
        if !self.recover_band.value().is_finite()
            || self.recover_band.value() < self.guard_band.value()
        {
            return Err(DpmError::InvalidParameter {
                name: "recover_band",
                reason: format!(
                    "must be finite and >= guard_band ({}), got {}",
                    self.guard_band.value(),
                    self.recover_band.value()
                ),
            });
        }
        if self.shed_step == 0 {
            return Err(DpmError::InvalidParameter {
                name: "shed_step",
                reason: "must be >= 1".into(),
            });
        }
        if self.max_replan_failures == 0 {
            return Err(DpmError::InvalidParameter {
                name: "max_replan_failures",
                reason: "must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// One state change of the safety machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SafetyTransition {
    /// The guard band forced the shed level up (deeper degradation).
    Shed {
        /// Shed level before.
        from_level: usize,
        /// Shed level after.
        to_level: usize,
    },
    /// Charge recovered past the recover band; shed level relaxed.
    Recover {
        /// Shed level before.
        from_level: usize,
        /// Shed level after.
        to_level: usize,
    },
    /// The inner governor's `decide` returned an error.
    ReplanFailed {
        /// Consecutive failures including this one.
        failures: u32,
        /// The inner error, stringified for the trace.
        error: String,
    },
    /// The inner governor succeeded again after one or more failures.
    ReplanRecovered {
        /// Consecutive failures that preceded this success.
        after: u32,
    },
    /// The failure budget is spent; the static fallback point now serves
    /// every remaining slot.
    FallbackEngaged {
        /// Consecutive failures that triggered the fallback.
        failures: u32,
    },
}

/// A trace entry: when and under what conditions a transition happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationRecord {
    /// Slot of the transition.
    pub slot: u64,
    /// Simulated time at the slot boundary (s).
    pub time: f64,
    /// Measured battery charge at the transition (J) — the gauge reading,
    /// which under sensor faults is not the physical level.
    pub battery: f64,
    /// What changed.
    pub transition: SafetyTransition,
}

/// A graceful-degradation wrapper around any [`Governor`]; see the module
/// docs for the contract.
pub struct SafetyGovernor<G> {
    inner: G,
    name: String,
    config: SafetyConfig,
    c_min: Joules,
    pareto: Arc<ParetoTable>,
    fallback: OperatingPoint,
    shed_level: usize,
    consecutive_failures: u32,
    retry_at: u64,
    fallback_engaged: bool,
    last_good: OperatingPoint,
    trace: Vec<DegradationRecord>,
    /// Telemetry sink (disabled by default); every [`DegradationRecord`]
    /// is mirrored into it as a `safety.*` event.
    telemetry: Recorder,
}

impl<G: Governor> SafetyGovernor<G> {
    /// Wrap `inner` for `platform` with explicit tunables.
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] on a malformed [`SafetyConfig`] and
    /// anything [`ParetoTable::build`] reports for the platform.
    pub fn new(inner: G, platform: &Platform, config: SafetyConfig) -> Result<Self, DpmError> {
        let pareto = Arc::new(ParetoTable::build(platform)?);
        Self::with_table(inner, platform, config, pareto)
    }

    /// [`Self::new`] with a pre-built frontier shared across governors
    /// (the campaign harness wraps four arms per seed on one platform —
    /// one table serves them all). The table must have been built for
    /// `platform`.
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] on a malformed [`SafetyConfig`].
    pub fn with_table(
        inner: G,
        platform: &Platform,
        config: SafetyConfig,
        pareto: Arc<ParetoTable>,
    ) -> Result<Self, DpmError> {
        config.validate()?;
        // The static fallback: the cheapest point that still runs — one
        // rank above the all-off floor, so a fallback mission keeps
        // (minimal) service instead of going dark.
        let fallback = pareto
            .frontier()
            .iter()
            .find(|r| !r.point.is_off())
            .map_or(OperatingPoint::OFF, |r| r.point);
        let name = format!("safe({})", inner.name());
        Ok(Self {
            inner,
            name,
            config,
            c_min: platform.battery.c_min,
            pareto,
            fallback,
            shed_level: 0,
            consecutive_failures: 0,
            retry_at: 0,
            fallback_engaged: false,
            last_good: OperatingPoint::OFF,
            trace: Vec::new(),
            telemetry: Recorder::disabled(),
        })
    }

    /// Attach a telemetry recorder: every degradation transition is then
    /// emitted as a structured `safety.*` event alongside the
    /// [`DegradationRecord`] trace (same slot, time, and payload — one
    /// unified stream instead of two divergent ones). The tunables land
    /// as `safety.*` gauges so a trace auditor can check transition
    /// legality (step sizes, retry dwell, the fallback budget) against
    /// the configuration that actually ran.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        if telemetry.is_enabled() {
            telemetry.gauge("safety.guard_band_j", self.config.guard_band.value());
            telemetry.gauge("safety.recover_band_j", self.config.recover_band.value());
            telemetry.gauge("safety.shed_step", self.config.shed_step as f64);
            telemetry.gauge(
                "safety.max_replan_failures",
                f64::from(self.config.max_replan_failures),
            );
            telemetry.gauge("safety.backoff_slots", self.config.backoff_slots as f64);
        }
        self.telemetry = telemetry;
        self
    }

    /// Wrap `inner` with [`SafetyConfig::default_for`] the platform.
    ///
    /// # Errors
    /// Same conditions as [`SafetyGovernor::new`].
    pub fn with_defaults(inner: G, platform: &Platform) -> Result<Self, DpmError> {
        let config = SafetyConfig::default_for(platform);
        Self::new(inner, platform, config)
    }

    /// The degradation/recovery trace so far.
    pub fn trace(&self) -> &[DegradationRecord] {
        &self.trace
    }

    /// Drain the trace, leaving it empty.
    pub fn take_trace(&mut self) -> Vec<DegradationRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Transitions recorded so far.
    pub fn degradation_count(&self) -> u64 {
        self.trace.len() as u64
    }

    /// Current shed depth in frontier ranks (0 = passing the inner
    /// governor's choice through unchanged).
    pub fn shed_level(&self) -> usize {
        self.shed_level
    }

    /// Whether service is currently degraded: load shed, in a retry
    /// backoff, or running on the static fallback.
    pub fn is_degraded(&self) -> bool {
        self.shed_level > 0 || self.consecutive_failures > 0 || self.fallback_engaged
    }

    /// Whether the static fallback has permanently engaged.
    pub fn fallback_engaged(&self) -> bool {
        self.fallback_engaged
    }

    /// Unwrap, discarding the safety state.
    pub fn into_inner(self) -> G {
        self.inner
    }

    fn record(&mut self, obs: &SlotObservation, transition: SafetyTransition) {
        self.emit(obs, &transition);
        self.trace.push(DegradationRecord {
            slot: obs.slot,
            time: obs.time.value(),
            battery: obs.battery.value(),
            transition,
        });
    }

    /// Mirror a transition into the telemetry stream.
    fn emit(&self, obs: &SlotObservation, transition: &SafetyTransition) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.incr("safety.degradations", 1);
        let slot = Some(obs.slot);
        let time = obs.time.value();
        let battery = obs.battery.value();
        match transition {
            SafetyTransition::Shed {
                from_level,
                to_level,
            } => self.telemetry.event(
                "safety.shed",
                slot,
                time,
                &[
                    ("battery_j", battery),
                    ("from_level", *from_level as f64),
                    ("to_level", *to_level as f64),
                ],
            ),
            SafetyTransition::Recover {
                from_level,
                to_level,
            } => self.telemetry.event(
                "safety.recover",
                slot,
                time,
                &[
                    ("battery_j", battery),
                    ("from_level", *from_level as f64),
                    ("to_level", *to_level as f64),
                ],
            ),
            SafetyTransition::ReplanFailed { failures, error } => self.telemetry.event_with_detail(
                "safety.replan_failed",
                slot,
                time,
                &[("battery_j", battery), ("failures", f64::from(*failures))],
                error,
            ),
            SafetyTransition::ReplanRecovered { after } => self.telemetry.event(
                "safety.replan_recovered",
                slot,
                time,
                &[("battery_j", battery), ("after", f64::from(*after))],
            ),
            SafetyTransition::FallbackEngaged { failures } => self.telemetry.event(
                "safety.fallback_engaged",
                slot,
                time,
                &[("battery_j", battery), ("failures", f64::from(*failures))],
            ),
        }
    }

    /// What the inner layer wants this slot, with the retry/fallback
    /// machinery applied.
    fn desired(&mut self, obs: &SlotObservation) -> OperatingPoint {
        if self.fallback_engaged {
            return self.fallback;
        }
        if obs.slot < self.retry_at {
            return self.last_good;
        }
        match self.inner.decide(obs) {
            Ok(point) => {
                // Any successful decide clears the failure streak —
                // including a post-retry success while the guard band
                // holds the output at a shed level. Without the
                // unconditional reset, separate transient bursts would
                // accumulate across the run and eventually walk the
                // governor into permanent fallback.
                let after = self.consecutive_failures;
                self.consecutive_failures = 0;
                if after > 0 {
                    self.record(obs, SafetyTransition::ReplanRecovered { after });
                }
                self.last_good = point;
                point
            }
            Err(e) => {
                self.consecutive_failures += 1;
                let failures = self.consecutive_failures;
                self.record(
                    obs,
                    SafetyTransition::ReplanFailed {
                        failures,
                        error: e.to_string(),
                    },
                );
                if failures >= self.config.max_replan_failures {
                    self.fallback_engaged = true;
                    self.record(obs, SafetyTransition::FallbackEngaged { failures });
                    self.fallback
                } else {
                    self.retry_at = obs.slot + 1 + self.config.backoff_slots * u64::from(failures);
                    self.last_good
                }
            }
        }
    }

    /// Move the shed level for this slot's measured charge.
    fn apply_guard_band(&mut self, obs: &SlotObservation) {
        let charge = obs.battery.value();
        let floor = self.c_min.value();
        if charge < floor + self.config.guard_band.value() {
            let cap = self.pareto.frontier().len();
            let to_level = (self.shed_level + self.config.shed_step).min(cap);
            if to_level != self.shed_level {
                let from_level = self.shed_level;
                self.shed_level = to_level;
                self.record(
                    obs,
                    SafetyTransition::Shed {
                        from_level,
                        to_level,
                    },
                );
            }
        } else if charge >= floor + self.config.recover_band.value() && self.shed_level > 0 {
            let from_level = self.shed_level;
            self.shed_level -= 1;
            self.record(
                obs,
                SafetyTransition::Recover {
                    from_level,
                    to_level: self.shed_level,
                },
            );
        }
    }

    /// Demote `desired` by the current shed level along the frontier.
    /// Rank 0 of the frontier is the all-off point, so a deep enough shed
    /// always bottoms out at the standby floor.
    fn shed(&self, desired: OperatingPoint) -> OperatingPoint {
        if self.shed_level == 0 || desired.is_off() {
            return desired;
        }
        let frontier = self.pareto.frontier();
        // An off-frontier request (possible with a hand-rolled inner
        // governor) sheds from the top of the table.
        let idx = frontier
            .iter()
            .position(|r| r.point == desired)
            .unwrap_or(frontier.len().saturating_sub(1));
        let target = idx.saturating_sub(self.shed_level);
        frontier
            .get(target)
            .map_or(OperatingPoint::OFF, |r| r.point)
    }
}

impl<G: Governor> Governor for SafetyGovernor<G> {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        let desired = self.desired(obs);
        self.apply_guard_band(obs);
        Ok(self.shed(desired))
    }

    fn uses_surplus_energy(&self) -> bool {
        self.inner.uses_surplus_energy()
    }

    /// Exhausted once the static fallback is engaged: the replan budget
    /// is spent and there is no path back to planned operation.
    fn exhausted(&self) -> bool {
        self.fallback_engaged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::joules;

    struct Pinned(OperatingPoint);
    impl Governor for Pinned {
        fn name(&self) -> &str {
            "pinned"
        }
        fn decide(&mut self, _o: &SlotObservation) -> Result<OperatingPoint, DpmError> {
            Ok(self.0)
        }
    }

    /// Fails every decision from slot `fail_from` onward.
    struct Flaky {
        fail_from: u64,
        point: OperatingPoint,
    }
    impl Governor for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn decide(&mut self, o: &SlotObservation) -> Result<OperatingPoint, DpmError> {
            if o.slot >= self.fail_from {
                Err(DpmError::EmptyScheduleWindow)
            } else {
                Ok(self.point)
            }
        }
    }

    fn obs(slot: u64, battery: f64) -> SlotObservation {
        SlotObservation {
            slot,
            time: crate::units::seconds(slot as f64 * 4.8),
            battery: joules(battery),
            used_last: Joules::ZERO,
            supplied_last: Joules::ZERO,
            backlog: 0,
        }
    }

    fn peak_point(platform: &Platform) -> OperatingPoint {
        ParetoTable::build(platform).unwrap().peak().point
    }

    #[test]
    fn passes_through_when_healthy() {
        let platform = Platform::pama();
        let peak = peak_point(&platform);
        let mut g = SafetyGovernor::with_defaults(Pinned(peak), &platform).unwrap();
        assert_eq!(g.name(), "safe(pinned)");
        // 8 J is far above the guard band (C_min 0.5 + 10% of 15.5 ≈ 2.05).
        let p = g.decide(&obs(0, 8.0)).unwrap();
        assert_eq!(p, peak);
        assert!(!g.is_degraded());
        assert!(g.trace().is_empty());
    }

    #[test]
    fn sheds_inside_the_guard_band_and_recovers_with_hysteresis() {
        let platform = Platform::pama();
        let peak = peak_point(&platform);
        let mut g = SafetyGovernor::with_defaults(Pinned(peak), &platform).unwrap();
        // Inside the guard band: one rank down per slot.
        let p1 = g.decide(&obs(0, 1.0)).unwrap();
        let frontier_len = ParetoTable::build(&platform).unwrap().frontier().len();
        assert_eq!(g.shed_level(), 1);
        assert_ne!(p1, peak);
        let _ = g.decide(&obs(1, 1.0)).unwrap();
        assert_eq!(g.shed_level(), 2);
        assert!(g.is_degraded());
        // Between the bands: the level holds (hysteresis).
        let mid = 0.5 + 0.15 * 15.5;
        let _ = g.decide(&obs(2, mid)).unwrap();
        assert_eq!(g.shed_level(), 2);
        // Above the recover band: one rank back per slot.
        let _ = g.decide(&obs(3, 8.0)).unwrap();
        assert_eq!(g.shed_level(), 1);
        let p = g.decide(&obs(4, 8.0)).unwrap();
        assert_eq!(g.shed_level(), 0);
        assert_eq!(p, peak);
        assert!(g.shed_level() <= frontier_len);
        // Trace saw 2 sheds + 2 recovers.
        assert_eq!(g.degradation_count(), 4);
    }

    #[test]
    fn deep_shed_bottoms_out_at_off() {
        let platform = Platform::pama();
        let peak = peak_point(&platform);
        let config = SafetyConfig {
            shed_step: 64,
            ..SafetyConfig::default_for(&platform)
        };
        let mut g = SafetyGovernor::new(Pinned(peak), &platform, config).unwrap();
        let p = g.decide(&obs(0, 0.6)).unwrap();
        assert!(p.is_off(), "{p:?}");
    }

    #[test]
    fn replan_failures_back_off_then_engage_fallback() {
        let platform = Platform::pama();
        let peak = peak_point(&platform);
        let mut g = SafetyGovernor::with_defaults(
            Flaky {
                fail_from: 2,
                point: peak,
            },
            &platform,
        )
        .unwrap();
        assert_eq!(g.decide(&obs(0, 8.0)).unwrap(), peak);
        assert_eq!(g.decide(&obs(1, 8.0)).unwrap(), peak);
        // Failure 1: hold last good, back off (retry_at = 2 + 1 + 1 = 4).
        assert_eq!(g.decide(&obs(2, 8.0)).unwrap(), peak);
        assert!(g.is_degraded());
        // Slot 3 is inside the backoff: inner is NOT consulted.
        assert_eq!(g.decide(&obs(3, 8.0)).unwrap(), peak);
        // Failure 2 (slot 4) holds again; failure 3 (slot 7) spends the
        // budget and switches to the cheapest running point immediately.
        assert_eq!(g.decide(&obs(4, 8.0)).unwrap(), peak);
        let p = g.decide(&obs(7, 8.0)).unwrap();
        assert!(g.fallback_engaged());
        assert!(g.exhausted());
        assert!(!p.is_off());
        assert_ne!(p, peak);
        // From now on: the same fallback point, no more inner calls.
        assert_eq!(g.decide(&obs(8, 8.0)).unwrap(), p);
        let transitions: Vec<_> = g.trace().iter().map(|r| &r.transition).collect();
        assert!(matches!(
            transitions.last(),
            Some(SafetyTransition::FallbackEngaged { failures: 3 })
        ));
        assert_eq!(
            transitions
                .iter()
                .filter(|t| matches!(t, SafetyTransition::ReplanFailed { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn transient_failure_recovers_and_is_traced() {
        let platform = Platform::pama();
        let peak = peak_point(&platform);
        /// Fails exactly once, on slot 1.
        struct Once(OperatingPoint);
        impl Governor for Once {
            fn name(&self) -> &str {
                "once"
            }
            fn decide(&mut self, o: &SlotObservation) -> Result<OperatingPoint, DpmError> {
                if o.slot == 1 {
                    Err(DpmError::EmptyScheduleWindow)
                } else {
                    Ok(self.0)
                }
            }
        }
        let mut g = SafetyGovernor::with_defaults(Once(peak), &platform).unwrap();
        let _ = g.decide(&obs(0, 8.0)).unwrap();
        let _ = g.decide(&obs(1, 8.0)).unwrap(); // fails, holds
        let _ = g.decide(&obs(2, 8.0)).unwrap(); // backoff hold
        let p = g.decide(&obs(3, 8.0)).unwrap(); // retry succeeds
        assert_eq!(p, peak);
        assert!(!g.is_degraded());
        assert!(matches!(
            g.take_trace().last().map(|r| r.transition.clone()),
            Some(SafetyTransition::ReplanRecovered { after: 1 })
        ));
        assert_eq!(g.degradation_count(), 0, "take_trace drained it");
    }

    #[test]
    fn failure_streak_resets_on_any_ok_even_at_a_shed_level() {
        let platform = Platform::pama();
        let peak = peak_point(&platform);
        /// Fails in bursts of two consults, then succeeds once — each
        /// burst is shorter than the default budget of 3.
        struct Bursty {
            consults: u64,
            point: OperatingPoint,
        }
        impl Governor for Bursty {
            fn name(&self) -> &str {
                "bursty"
            }
            fn decide(&mut self, _o: &SlotObservation) -> Result<OperatingPoint, DpmError> {
                let n = self.consults;
                self.consults += 1;
                if n % 3 < 2 {
                    Err(DpmError::EmptyScheduleWindow)
                } else {
                    Ok(self.point)
                }
            }
        }
        let mut g = SafetyGovernor::with_defaults(
            Bursty {
                consults: 0,
                point: peak,
            },
            &platform,
        )
        .unwrap();
        // Battery pinned inside the guard band: every post-retry success
        // happens while the output is held at a nonzero shed level, the
        // exact path where the streak used to survive a recovery.
        for slot in 0..40 {
            let _ = g.decide(&obs(slot, 1.0)).unwrap();
        }
        assert!(g.shed_level() > 0);
        assert!(
            !g.fallback_engaged() && !g.exhausted(),
            "transient bursts shorter than the budget must never \
             accumulate into permanent fallback"
        );
        let recoveries: Vec<u32> = g
            .trace()
            .iter()
            .filter_map(|r| match r.transition {
                SafetyTransition::ReplanRecovered { after } => Some(after),
                _ => None,
            })
            .collect();
        assert!(recoveries.len() >= 2, "{recoveries:?}");
        assert!(
            recoveries.iter().all(|&after| after == 2),
            "each burst ends with the streak at its own length, \
             not an accumulated one: {recoveries:?}"
        );
    }

    #[test]
    fn bad_configs_are_rejected() {
        let platform = Platform::pama();
        let base = SafetyConfig::default_for(&platform);
        for config in [
            SafetyConfig {
                guard_band: joules(-1.0),
                ..base
            },
            SafetyConfig {
                recover_band: joules(0.0),
                ..base
            },
            SafetyConfig {
                shed_step: 0,
                ..base
            },
            SafetyConfig {
                max_replan_failures: 0,
                ..base
            },
        ] {
            assert!(matches!(
                SafetyGovernor::new(Pinned(OperatingPoint::OFF), &platform, config),
                Err(DpmError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn records_serialize_round_trip() {
        let rec = DegradationRecord {
            slot: 3,
            time: 14.4,
            battery: 1.25,
            transition: SafetyTransition::Shed {
                from_level: 0,
                to_level: 1,
            },
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: DegradationRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }
}
