//! `dpm-serve` — live session service and its load-generator client.
//!
//! ```text
//! dpm-serve serve   --addr 127.0.0.1:0 [--audit] [--trace PATH]
//! dpm-serve stdio   [--audit] [--trace PATH]
//! dpm-serve loadgen --addr HOST:PORT [--sessions N] [--scenario NAME]
//!                   [--governor ARM] [--periods N] [--seed N]
//!                   [--chunk N] [--corrupt-session I] [--metrics PATH]
//!                   [--shutdown]
//! ```
//!
//! Exit codes: 0 success, 1 failure (a session killed by the auditor in
//! stdio mode; a failed or expectedly-corrupted run in loadgen mode),
//! 2 usage error — and loadgen's special case: 2 when corruption was
//! requested but never detected.

use dpm_serve::loadgen::{self, LoadgenConfig};
use dpm_serve::server::{Server, ServerConfig};
use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;

const USAGE: &str = "usage:
  dpm-serve serve   --addr HOST:PORT [--audit] [--trace PATH]
  dpm-serve stdio   [--audit] [--trace PATH]
  dpm-serve loadgen --addr HOST:PORT [--sessions N] [--scenario NAME]
                    [--governor ARM] [--periods N] [--seed N]
                    [--chunk N] [--corrupt-session I] [--metrics PATH]
                    [--shutdown]

Sessions host one governed simulation each, driven by NDJSON requests
(one JSON document per line); `--audit` streams every session through
an incremental auditor that kills sessions on illegal telemetry.
`--addr 127.0.0.1:0` picks an ephemeral port and prints it.
loadgen's `--metrics PATH` scrapes the server's Prometheus-style
metrics snapshot after the run, validates the exposition grammar and
counters, and writes the text to PATH (`-` for stdout).";

fn usage_exit(msg: &str) -> ExitCode {
    eprintln!("dpm-serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Pull the value after a `--flag`; `None` (with a message) when
/// missing.
fn take_value(args: &mut std::vec::IntoIter<String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn write_trace(path: &str, server: &Server) -> Result<(), String> {
    std::fs::write(path, server.trace_jsonl())
        .map_err(|e| format!("cannot write trace to {path}: {e}"))
}

fn run_serve(args: Vec<String>) -> ExitCode {
    let mut addr = String::from("127.0.0.1:7070");
    let mut audit = false;
    let mut trace_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match take_value(&mut it, "--addr") {
                Ok(v) => addr = v,
                Err(e) => return usage_exit(&e),
            },
            "--audit" => audit = true,
            "--trace" => match take_value(&mut it, "--trace") {
                Ok(v) => trace_path = Some(v),
                Err(e) => return usage_exit(&e),
            },
            other => return usage_exit(&format!("unknown serve flag {other}")),
        }
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dpm-serve: cannot bind {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    let local = match listener.local_addr() {
        Ok(a) => a.to_string(),
        Err(_) => addr.clone(),
    };
    // CI and scripts parse this line to learn the ephemeral port.
    println!("dpm-serve: listening on {local}");
    let _ = std::io::stdout().flush();

    let server = Server::new(ServerConfig { audit });
    if let Err(e) = server.serve_tcp(listener) {
        eprintln!("dpm-serve: {e}");
        return ExitCode::from(1);
    }
    if let Some(path) = trace_path {
        if let Err(e) = write_trace(&path, &server) {
            eprintln!("dpm-serve: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

fn run_stdio(args: Vec<String>) -> ExitCode {
    let mut audit = false;
    let mut trace_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--audit" => audit = true,
            "--trace" => match take_value(&mut it, "--trace") {
                Ok(v) => trace_path = Some(v),
                Err(e) => return usage_exit(&e),
            },
            other => return usage_exit(&format!("unknown stdio flag {other}")),
        }
    }
    let server = Server::new(ServerConfig { audit });
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let code = server.run_stdio(BufReader::new(stdin.lock()), stdout.lock());
    if let Some(path) = trace_path {
        if let Err(e) = write_trace(&path, &server) {
            eprintln!("dpm-serve: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::from(code.clamp(0, u8::MAX as i32) as u8)
}

fn run_loadgen(args: Vec<String>) -> ExitCode {
    let mut cfg = LoadgenConfig::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let flag = arg.as_str();
        match flag {
            "--shutdown" => {
                cfg.shutdown = true;
                continue;
            }
            "--addr" | "--sessions" | "--scenario" | "--governor" | "--periods" | "--seed"
            | "--chunk" | "--corrupt-session" | "--metrics" => {}
            other => return usage_exit(&format!("unknown loadgen flag {other}")),
        }
        let value = match take_value(&mut it, flag) {
            Ok(v) => v,
            Err(e) => return usage_exit(&e),
        };
        let bad = |e: &dyn std::fmt::Display| format!("bad value for {flag}: {e}");
        match flag {
            "--addr" => cfg.addr = value,
            "--scenario" => cfg.scenario = value,
            "--governor" => cfg.governor = value,
            "--sessions" => match value.parse() {
                Ok(v) => cfg.sessions = v,
                Err(e) => return usage_exit(&bad(&e)),
            },
            "--periods" => match value.parse() {
                Ok(v) => cfg.periods = v,
                Err(e) => return usage_exit(&bad(&e)),
            },
            "--seed" => match value.parse() {
                Ok(v) => cfg.seed = v,
                Err(e) => return usage_exit(&bad(&e)),
            },
            "--chunk" => match value.parse() {
                Ok(v) => cfg.chunk = v,
                Err(e) => return usage_exit(&bad(&e)),
            },
            "--corrupt-session" => match value.parse() {
                Ok(v) => cfg.corrupt_session = Some(v),
                Err(e) => return usage_exit(&bad(&e)),
            },
            "--metrics" => cfg.metrics = Some(value),
            _ => {}
        }
    }
    match loadgen::run(&cfg) {
        Ok(code) => ExitCode::from(code.clamp(0, u8::MAX as i32) as u8),
        Err(e) => {
            eprintln!("dpm-serve: loadgen failed: {e}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage_exit("a subcommand is required");
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "serve" => run_serve(args),
        "stdio" => run_stdio(args),
        "loadgen" => run_loadgen(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => usage_exit(&format!("unknown subcommand {other}")),
    }
}
