//! The fleet core's load-bearing property: a 1-board fleet is
//! **bit-identical** to the scalar [`Simulation`] under a pinned
//! governor on the same platform, schedules, and fault plan.
//!
//! The struct-of-arrays stepper shares the scalar models' arithmetic
//! through the extracted pure kernels (`battery::kernel`,
//! `board::kernel`, `processor::chip_power`,
//! `events::accumulate_arrivals`), so the comparison below is exact
//! (`f64::to_bits`), not approximate: any drift — a reordered multiply,
//! a dropped clamp — fails the property instead of hiding inside an
//! epsilon.

use dpm_core::error::DpmError;
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::OperatingPoint;
use dpm_core::platform::Platform;
use dpm_core::series::PowerSeries;
use dpm_core::units::{joules, seconds, volts, Hertz};
use dpm_sim::fleet::{BoardSpec, FleetConfig, FleetState};
use dpm_sim::prelude::*;
use dpm_workloads::{generate_faults, FaultPlanConfig};
use proptest::prelude::*;

/// The open-loop governor the fleet's single-entry allocation table
/// mirrors: every slot, the same point.
struct Pinned(OperatingPoint);

impl Governor for Pinned {
    fn name(&self) -> &str {
        "pinned"
    }

    fn decide(&mut self, _obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        Ok(self.0)
    }
}

const TAU: f64 = 4.8;
const SLOTS: usize = 12;
const PERIODS: usize = 2;
const SUBSTEPS: usize = 8;

fn series(values: Vec<f64>) -> PowerSeries {
    PowerSeries::new(seconds(TAU), values).unwrap()
}

proptest! {
    /// One board through the SoA stepper ≡ the scalar simulation, for
    /// any operating point, charging/rate schedules, initial charge, and
    /// standard fault plan: per-slot battery trajectory and cumulative
    /// undersupply to the bit, jobs and drops to the count.
    #[test]
    fn one_board_fleet_is_bit_identical_to_the_scalar_simulation(
        workers in 1usize..=7,
        freq_idx in 0usize..3,
        initial in 0.6f64..16.0,
        charging_vals in prop::collection::vec(0.0f64..3.0, SLOTS..=SLOTS),
        rate_vals in prop::collection::vec(0.0f64..0.5, SLOTS..=SLOTS),
        fault_seed in any::<u64>(),
        with_faults in any::<bool>(),
    ) {
        let platform = Platform::pama();
        let freq = [20.0, 40.0, 80.0][freq_idx];
        let point = OperatingPoint::new(workers, Hertz::from_mhz(freq), volts(3.3));
        let charging = series(charging_vals);
        let rates = series(rate_vals);
        let horizon = seconds((PERIODS * SLOTS) as f64 * TAU);
        let plan = if with_faults {
            generate_faults(fault_seed, &FaultPlanConfig::standard(horizon))
        } else {
            dpm_workloads::FaultPlan::quiescent()
        };

        // Scalar reference run.
        let mut sim = Simulation::new(
            platform.clone(),
            Box::new(TraceSource::new(charging.clone())),
            Box::new(ScheduleGenerator::new(rates.clone())),
            joules(initial),
            SimConfig {
                periods: PERIODS,
                slots_per_period: SLOTS,
                substeps: SUBSTEPS,
                trace: true,
            },
        )
        .unwrap();
        plan.schedule(&mut sim);
        let scalar = sim.run(&mut Pinned(point)).unwrap();

        // The same board as a fleet of one.
        let mut cfg = FleetConfig::new(platform, charging, rates, vec![point]);
        cfg.periods = PERIODS;
        cfg.slots_per_period = SLOTS;
        cfg.substeps = SUBSTEPS;
        cfg.trace = true;
        let spec = BoardSpec {
            initial_charge: joules(initial),
            phase_slots: 0,
            faults: plan.events.iter().map(|e| (e.at, e.disturbance)).collect(),
        };
        let fleet = FleetState::new(cfg, &[spec]).unwrap().run();

        prop_assert_eq!(fleet.boards, 1);
        prop_assert_eq!(fleet.slots, PERIODS * SLOTS);

        // Per-slot trajectories, to the bit.
        let trace = fleet.trace.as_ref().unwrap();
        prop_assert_eq!(scalar.slots.len(), PERIODS * SLOTS);
        for (s, rec) in scalar.slots.iter().enumerate() {
            let i = trace.index(s, 0);
            prop_assert_eq!(
                trace.battery[i].to_bits(),
                rec.battery.to_bits(),
                "battery diverged at slot {} ({} vs {})",
                s, trace.battery[i], rec.battery
            );
            prop_assert_eq!(
                trace.undersupplied[i].to_bits(),
                rec.undersupplied.to_bits(),
                "undersupply diverged at slot {}", s
            );
            prop_assert_eq!(trace.jobs[i], rec.jobs, "jobs diverged at slot {}", s);
        }

        // Whole-run totals, to the bit where they are energies.
        prop_assert_eq!(fleet.final_battery[0].to_bits(), scalar.final_battery.to_bits());
        prop_assert_eq!(fleet.undersupplied[0].to_bits(), scalar.undersupplied.to_bits());
        prop_assert_eq!(fleet.offered[0].to_bits(), scalar.offered.to_bits());
        prop_assert_eq!(fleet.wasted[0].to_bits(), scalar.wasted.to_bits());
        prop_assert_eq!(fleet.delivered[0].to_bits(), scalar.delivered.to_bits());
        prop_assert_eq!(fleet.jobs_done[0], scalar.jobs_done);
        prop_assert_eq!(fleet.dropped[0], scalar.dropped);

        // No guard configured: the fleet must report zero shed events,
        // and its survival verdict must match the scalar criterion.
        prop_assert_eq!(fleet.sheds[0], 0);
        let survival = SurvivalReport::from_report(&scalar, fleet.c_min, 0.0, 0);
        prop_assert_eq!(fleet.survived[0], survival.survived);
        prop_assert_eq!(fleet.min_battery[0].to_bits(), survival.deepest_charge.to_bits());
    }
}
