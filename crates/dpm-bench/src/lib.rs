//! # dpm-bench
//!
//! The reproduction harness: deterministic experiment functions for every
//! table and figure in the paper ([`experiments`]), text renderers in the
//! paper's layouts ([`mod@format`]), and the `repro` binary that prints them.
//! The criterion benches under `benches/` reuse the same experiment
//! functions so performance numbers and correctness numbers cannot drift
//! apart.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod format;
