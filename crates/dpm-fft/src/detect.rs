//! The FORTE-style RF transient detector.
//!
//! FORTE's flight software triggers on an analogue threshold and then runs
//! digital signal processing "to check if it has the characteristics of an
//! interesting RF event" (§5). We reproduce that two-stage structure:
//!
//! 1. **Trigger** — the capture's time-domain energy must exceed a
//!    threshold (the analogue comparator's digital twin).
//! 2. **Spectral check** — window, FFT, power spectrum, then require (a)
//!    broadband occupancy: at least `min_occupied_fraction` of bins above
//!    the noise floor estimate, and (b) that the energy is not explained by
//!    a few narrowband carriers: the top `carrier_bins` bins must hold less
//!    than `max_carrier_fraction` of total band power.
//!
//! Lightning transients are broadband (many bins lit); carriers are
//! narrowband (few strong bins); noise is weak everywhere — the two
//! criteria separate the three cases.

use crate::fft::{quantize, Direction, FixedFft};
use crate::fixed::CQ15;
use crate::window::{Window, WindowKind};

/// Detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// FFT size (power of two).
    pub fft_size: usize,
    /// Time-domain mean-square trigger threshold (full scale² units).
    pub trigger_threshold: f64,
    /// Multiple of the median bin power that counts as "occupied".
    pub occupancy_factor: f64,
    /// Fraction of bins that must be occupied to call it broadband.
    pub min_occupied_fraction: f64,
    /// How many top bins model the carriers.
    pub carrier_bins: usize,
    /// Maximum fraction of band power the carriers may explain.
    pub max_carrier_fraction: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            fft_size: 2048,
            trigger_threshold: 2e-3,
            occupancy_factor: 4.0,
            min_occupied_fraction: 0.25,
            carrier_bins: 8,
            max_carrier_fraction: 0.65,
        }
    }
}

/// Why a capture was (or wasn't) classified as an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Stage-1 outcome.
    pub triggered: bool,
    /// Fraction of spectrum bins above the occupancy threshold.
    pub occupied_fraction: f64,
    /// Fraction of band power in the top `carrier_bins` bins.
    pub carrier_fraction: f64,
    /// Final verdict.
    pub is_event: bool,
}

/// The detector: owns the FFT plan and window so repeated captures reuse
/// the tables.
#[derive(Debug, Clone)]
pub struct TransientDetector {
    config: DetectorConfig,
    fft: FixedFft,
    window: Window,
}

impl TransientDetector {
    /// Build from a config.
    pub fn new(config: DetectorConfig) -> Self {
        let fft = FixedFft::new(config.fft_size);
        let window = Window::new(WindowKind::Hann, config.fft_size);
        Self {
            config,
            fft,
            window,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Run the full chain on a float capture.
    pub fn detect(&self, capture: &[(f64, f64)]) -> Detection {
        assert_eq!(capture.len(), self.config.fft_size, "capture length");
        let mut data = quantize(capture);
        self.detect_q15(&mut data)
    }

    /// Run the chain on an already-quantized capture (consumed as scratch).
    pub fn detect_q15(&self, data: &mut [CQ15]) -> Detection {
        // Stage 1: time-domain trigger.
        let ms: f64 = data.iter().map(|c| c.mag_sq()).sum::<f64>() / data.len() as f64;
        let triggered = ms >= self.config.trigger_threshold;
        if !triggered {
            return Detection {
                triggered,
                occupied_fraction: 0.0,
                carrier_fraction: 0.0,
                is_event: false,
            };
        }
        // Stage 2: spectral characteristics.
        self.window.apply(data);
        self.fft.transform(data, Direction::Forward);
        let spectrum = self.power_spectrum(data);
        let (occupied_fraction, carrier_fraction) = self.spectral_stats(&spectrum);
        let is_event = occupied_fraction >= self.config.min_occupied_fraction
            && carrier_fraction <= self.config.max_carrier_fraction;
        Detection {
            triggered,
            occupied_fraction,
            carrier_fraction,
            is_event,
        }
    }

    /// One-sided power spectrum (positive-frequency bins, DC excluded).
    fn power_spectrum(&self, data: &[CQ15]) -> Vec<f64> {
        data[1..data.len() / 2].iter().map(|c| c.mag_sq()).collect()
    }

    fn spectral_stats(&self, spectrum: &[f64]) -> (f64, f64) {
        let mut sorted = spectrum.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2].max(1e-12);
        let occupied = spectrum
            .iter()
            .filter(|&&p| p > self.config.occupancy_factor * median)
            .count();
        let occupied_fraction = occupied as f64 / spectrum.len() as f64;
        let total: f64 = spectrum.iter().sum::<f64>().max(1e-12);
        let top: f64 = sorted.iter().rev().take(self.config.carrier_bins).sum();
        (occupied_fraction, top / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{generate, CaptureSpec};

    fn detector() -> TransientDetector {
        TransientDetector::new(DetectorConfig::default())
    }

    #[test]
    fn transient_is_detected() {
        let d = detector();
        let mut hits = 0;
        for seed in 0..10 {
            let c = generate(&CaptureSpec::with_transient(), seed);
            if d.detect(&c).is_event {
                hits += 1;
            }
        }
        assert!(hits >= 8, "only {hits}/10 transients detected");
    }

    #[test]
    fn background_is_rejected() {
        let d = detector();
        let mut false_alarms = 0;
        for seed in 100..110 {
            let c = generate(&CaptureSpec::background_only(), seed);
            if d.detect(&c).is_event {
                false_alarms += 1;
            }
        }
        assert!(false_alarms <= 1, "{false_alarms}/10 false alarms");
    }

    #[test]
    fn silence_does_not_trigger() {
        let d = detector();
        let c = vec![(0.0, 0.0); 2048];
        let det = d.detect(&c);
        assert!(!det.triggered);
        assert!(!det.is_event);
    }

    #[test]
    fn carriers_alone_trigger_but_fail_spectral_check() {
        let d = detector();
        let spec = CaptureSpec {
            noise_rms: 0.005,
            carrier_amp: 0.3,
            transient_amp: 0.0,
            ..CaptureSpec::with_transient()
        };
        let c = generate(&spec, 5);
        let det = d.detect(&c);
        assert!(det.triggered, "strong carriers must trip the trigger");
        assert!(!det.is_event, "narrowband must be rejected: {det:?}");
        assert!(det.carrier_fraction > 0.65, "{}", det.carrier_fraction);
    }

    #[test]
    fn occupancy_rises_with_transient() {
        let d = detector();
        let bg = d.detect(&generate(&CaptureSpec::background_only(), 9));
        let tr = d.detect(&generate(&CaptureSpec::with_transient(), 9));
        if bg.triggered {
            assert!(tr.occupied_fraction > bg.occupied_fraction);
        } else {
            assert!(tr.occupied_fraction > 0.2);
        }
    }

    #[test]
    #[should_panic(expected = "capture length")]
    fn wrong_capture_length_rejected() {
        detector().detect(&vec![(0.0, 0.0); 64]);
    }
}
