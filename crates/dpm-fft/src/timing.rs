//! Cycle-accurate-ish execution-time model for the FFT job on the PIM.
//!
//! The paper pins one calibration point: the 2K-sample fixed-point FFT
//! takes **4.8 s at 20 MHz** on one M32R/D. An `N log N` work model with a
//! per-butterfly cycle cost reproduces that point and extrapolates to
//! other sizes, frequencies and processor counts (via the Fig. 2 fork-join
//! split), which is exactly what the simulator needs to schedule jobs.

use dpm_core::model::AmdahlWorkload;
use dpm_core::units::{seconds, Hertz, Seconds};

/// Work model: `cycles = cycles_per_butterfly · (N/2)·log₂N + overhead`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Cycles per radix-2 butterfly (covers the PIM's DRAM accesses too —
    /// hence far above an ALU-only count).
    pub cycles_per_butterfly: f64,
    /// Fixed per-job cycles (setup, windowing, detection thresholding).
    pub overhead_cycles: f64,
    /// Fraction of the job that is serial under the Fig. 2 decomposition
    /// (scatter, transpose, gather).
    pub serial_fraction: f64,
}

impl CycleModel {
    /// Calibrate `cycles_per_butterfly` against the paper's measurement:
    /// `fft_size` samples in `time` at `frequency`, assuming
    /// `overhead_fraction` of the time is fixed overhead.
    pub fn calibrated(
        fft_size: usize,
        time: Seconds,
        frequency: Hertz,
        overhead_fraction: f64,
        serial_fraction: f64,
    ) -> Self {
        assert!(fft_size.is_power_of_two() && fft_size >= 2);
        assert!((0.0..1.0).contains(&overhead_fraction));
        assert!((0.0..1.0).contains(&serial_fraction));
        let total_cycles = frequency.value() * time.value();
        let butterflies = butterflies(fft_size) as f64;
        Self {
            cycles_per_butterfly: total_cycles * (1.0 - overhead_fraction) / butterflies,
            overhead_cycles: total_cycles * overhead_fraction,
            serial_fraction,
        }
    }

    /// The paper's calibration point: 2048 samples, 4.8 s, 20 MHz, with 5%
    /// fixed overhead and 8% serial fraction.
    pub fn pama_fft() -> Self {
        Self::calibrated(2048, seconds(4.8), Hertz::from_mhz(20.0), 0.05, 0.08)
    }

    /// Total cycles for one job of `fft_size` samples on one processor.
    pub fn job_cycles(&self, fft_size: usize) -> f64 {
        self.cycles_per_butterfly * butterflies(fft_size) as f64 + self.overhead_cycles
    }

    /// Single-processor execution time at `frequency`.
    pub fn job_time(&self, fft_size: usize, frequency: Hertz) -> Seconds {
        assert!(frequency.value() > 0.0);
        seconds(self.job_cycles(fft_size) / frequency.value())
    }

    /// Fork-join execution time on `n` processors at `frequency` (Amdahl
    /// over the serial fraction).
    pub fn parallel_job_time(&self, fft_size: usize, n: usize, frequency: Hertz) -> Seconds {
        assert!(n >= 1);
        let t1 = self.job_time(fft_size, frequency).value();
        let ts = t1 * self.serial_fraction;
        seconds(ts + (t1 - ts) / n as f64)
    }

    /// Export as the [`AmdahlWorkload`] dpm-core's models consume, anchored
    /// at `f_ref`.
    pub fn as_workload(&self, fft_size: usize, f_ref: Hertz) -> AmdahlWorkload {
        let total = self.job_time(fft_size, f_ref);
        let serial = seconds(total.value() * self.serial_fraction);
        AmdahlWorkload::new(total, serial, f_ref)
            .expect("calibrated cycle models produce valid workloads")
    }
}

/// `(N/2)·log₂N` butterflies in a radix-2 transform.
pub fn butterflies(fft_size: usize) -> usize {
    fft_size / 2 * fft_size.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_the_paper_point() {
        let m = CycleModel::pama_fft();
        let t = m.job_time(2048, Hertz::from_mhz(20.0));
        assert!((t.value() - 4.8).abs() < 1e-9, "{t}");
    }

    #[test]
    fn time_scales_inversely_with_frequency() {
        let m = CycleModel::pama_fft();
        let t20 = m.job_time(2048, Hertz::from_mhz(20.0));
        let t80 = m.job_time(2048, Hertz::from_mhz(80.0));
        assert!((t20.value() / t80.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn larger_ffts_take_superlinearly_longer() {
        let m = CycleModel::pama_fft();
        let t2k = m.job_time(2048, Hertz::from_mhz(20.0)).value();
        let t4k = m.job_time(4096, Hertz::from_mhz(20.0)).value();
        // N log N: doubling N multiplies work by 2·(12/11) ≈ 2.18 (plus a
        // fixed overhead that dilutes it slightly).
        assert!(t4k / t2k > 2.0 && t4k / t2k < 2.3, "{}", t4k / t2k);
    }

    #[test]
    fn parallel_time_follows_amdahl() {
        let m = CycleModel::pama_fft();
        let t1 = m.parallel_job_time(2048, 1, Hertz::from_mhz(20.0)).value();
        let t7 = m.parallel_job_time(2048, 7, Hertz::from_mhz(20.0)).value();
        let speedup = t1 / t7;
        // Amdahl bound for 8% serial: 1/(0.08 + 0.92/7) ≈ 4.73.
        assert!((speedup - 4.73).abs() < 0.05, "{speedup}");
    }

    #[test]
    fn workload_export_matches_model() {
        let m = CycleModel::pama_fft();
        let w = m.as_workload(2048, Hertz::from_mhz(20.0));
        assert!((w.total.value() - 4.8).abs() < 1e-9);
        assert!((w.serial.value() - 0.08 * 4.8).abs() < 1e-9);
        assert!(
            (w.time_on(7).value() - m.parallel_job_time(2048, 7, Hertz::from_mhz(20.0)).value())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn butterfly_counts() {
        assert_eq!(butterflies(2048), 11264);
        assert_eq!(butterflies(2), 1);
    }
}
