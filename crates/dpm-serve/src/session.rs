//! One live session: a governed [`ActiveRun`] plus its private recorder
//! and (optionally) an incremental auditor over its own stream.
//!
//! The telemetry contract a session keeps with its client mirrors the
//! live-emitter contract of [`AuditState`]: config gauges first (at
//! open), the event tail after every advance (drained once per stepped
//! slot, so the auditor is never more than one slot behind the run), and
//! the closing counter/gauge lines at close — after which the canonical
//! [`AuditState::finish`] verdict is available immediately.

use dpm_baselines::StaticGovernor;
use dpm_core::alloc::InitialAllocator;
use dpm_core::governor::Governor;
use dpm_core::params::ParetoTable;
use dpm_core::platform::Platform;
use dpm_core::runtime::{DpmController, SafetyConfig, SafetyGovernor};
use dpm_core::series::PowerSeries;
use dpm_core::units::{joules, seconds};
use dpm_sim::prelude::{
    ActiveRun, Disturbance, Recorder, ScheduleGenerator, SimConfig, Simulation, TraceSource,
};
use dpm_telemetry::TraceLine;
use dpm_trace::{quantile, AuditConfig, AuditState, Rollup};
use dpm_workloads::{scenarios, Scenario};
use std::sync::Arc;

use crate::error::ServeError;
use crate::metrics::{SessionMetrics, QUANTILES};
use crate::protocol::SessionSpec;

/// Events a single slot can plausibly emit (sim + controller + safety +
/// broker + disturbances), used to size the session ring so a full-length
/// run keeps every event — the batch document must be complete for the
/// end-of-stream audit's event-count check to stay meaningful.
const EVENTS_PER_SLOT_BUDGET: usize = 8;

/// Ring headroom beyond the per-slot budget (open/close markers, config
/// bursts).
const EVENT_HEADROOM: usize = 64;

/// One of the four campaign governor arms, owned by value so a session
/// is self-contained.
enum SessionArm {
    /// The paper's controller, bare.
    Proposed(Box<DpmController>),
    /// The controller wrapped in the safety governor.
    ProposedSafe(Box<SafetyGovernor<DpmController>>),
    /// Full-power static baseline, bare.
    Static(StaticGovernor),
    /// The static baseline wrapped in the safety governor.
    StaticSafe(Box<SafetyGovernor<StaticGovernor>>),
}

impl SessionArm {
    fn as_governor(&mut self) -> &mut dyn Governor {
        match self {
            Self::Proposed(g) => g.as_mut(),
            Self::ProposedSafe(g) => g.as_mut(),
            Self::Static(g) => g,
            Self::StaticSafe(g) => g.as_mut(),
        }
    }

    fn name(&self) -> String {
        match self {
            Self::Proposed(g) => g.name().to_string(),
            Self::ProposedSafe(g) => g.name().to_string(),
            Self::Static(g) => g.name().to_string(),
            Self::StaticSafe(g) => g.name().to_string(),
        }
    }

    /// `(degradations, shed level, fallback engaged)` — zeros for the
    /// unwrapped arms, which cannot degrade.
    fn degradation(&self) -> (u64, usize, bool) {
        match self {
            Self::ProposedSafe(g) => (g.degradation_count(), g.shed_level(), g.fallback_engaged()),
            Self::StaticSafe(g) => (g.degradation_count(), g.shed_level(), g.fallback_engaged()),
            _ => (0, 0, false),
        }
    }
}

/// What one `advance` produced: progress, the fresh slice of the live
/// stream, and any violations the online auditor flagged while it ran.
pub struct AdvanceOutcome {
    /// Next slot to run (== slots completed).
    pub slot: u64,
    /// Whether the horizon is exhausted.
    pub done: bool,
    /// Fresh event lines, schema-v1 JSONL.
    pub telemetry: Vec<String>,
    /// Rendered online violations (empty when clean or unaudited).
    pub violations: Vec<String>,
}

/// What `close` produced: the canonical audit verdict and the complete
/// batch trace document.
pub struct CloseOutcome {
    /// No violations in the canonical end-of-stream audit (vacuously
    /// true when auditing is off).
    pub audit_ok: bool,
    /// Rendered violations from the canonical audit.
    pub violations: Vec<String>,
    /// Checks the canonical audit performed.
    pub checks: u64,
    /// Jobs the run completed.
    pub jobs_done: u64,
    /// Energy demanded but unavailable (J).
    pub undersupplied_j: f64,
    /// The batch trace document, one JSONL line per entry, meta first.
    pub trace: Vec<String>,
}

/// A live governed run with its own recorder and online auditor.
pub struct Session {
    name: String,
    run: Option<ActiveRun>,
    arm: SessionArm,
    telemetry: Recorder,
    auditor: Option<AuditState>,
    /// Absolute event cursor into the session recorder's ring.
    cursor: u64,
    period_slots: usize,
    /// Streaming rollup over the session's own line stream (window =
    /// one charging period), the source of the metrics-plane quantiles.
    rollup: Rollup,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("name", &self.name)
            .field("open", &self.run.is_some())
            .field("audited", &self.auditor.is_some())
            .field("cursor", &self.cursor)
            .finish()
    }
}

/// Serialize one trace line exactly as `Recorder::to_jsonl` does. The
/// schema types serialize infallibly; the fallback line keeps the
/// stream parseable if that ever changes.
fn encode_line(line: &TraceLine) -> String {
    serde_json::to_string(line).unwrap_or_else(|e| {
        format!("{{\"Gauge\":{{\"name\":\"serve.encode_error:{e}\",\"value\":0.0}}}}")
    })
}

fn find_scenario(name: &str) -> Result<Scenario, ServeError> {
    scenarios::all()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| ServeError::UnknownScenario(name.to_string()))
}

/// The scenario's event-rate schedule rotated left by `phase_slots`, so
/// this session's slot `s` carries the base schedule's slot
/// `s + phase_slots` (mod length) — the same convention as the fleet
/// core's phase offsets.
fn rotated_rates(
    scenario: &Scenario,
    platform: &Platform,
    phase_slots: usize,
) -> Result<PowerSeries, ServeError> {
    let base = scenario.event_rates(platform);
    if phase_slots == 0 {
        return Ok(base);
    }
    let values = base.values();
    let n = values.len();
    let rotated: Vec<f64> = (0..n).map(|i| values[(i + phase_slots) % n]).collect();
    PowerSeries::new(platform.tau, rotated).map_err(ServeError::from)
}

fn build_arm(
    spec: &SessionSpec,
    scenario: &Scenario,
    platform: &Arc<Platform>,
    telemetry: &Recorder,
) -> Result<SessionArm, ServeError> {
    match spec.governor.as_str() {
        "proposed" => {
            let alloc = InitialAllocator::new(scenario.allocation_problem(platform))?.compute()?;
            let pareto = Arc::new(ParetoTable::build(platform)?);
            let g = DpmController::with_table(
                Arc::clone(platform),
                &alloc,
                scenario.charging.clone(),
                pareto,
            )?
            .without_trace()
            .with_telemetry(telemetry.clone());
            Ok(SessionArm::Proposed(Box::new(g)))
        }
        "proposed+safe" => {
            let alloc = InitialAllocator::new(scenario.allocation_problem(platform))?.compute()?;
            let pareto = Arc::new(ParetoTable::build(platform)?);
            let inner = DpmController::with_table(
                Arc::clone(platform),
                &alloc,
                scenario.charging.clone(),
                Arc::clone(&pareto),
            )?
            .without_trace()
            .with_telemetry(telemetry.clone());
            let g = SafetyGovernor::with_table(
                inner,
                platform,
                SafetyConfig::default_for(platform),
                pareto,
            )?
            .with_telemetry(telemetry.clone());
            Ok(SessionArm::ProposedSafe(Box::new(g)))
        }
        "static" => Ok(SessionArm::Static(StaticGovernor::full_power(platform)?)),
        "static+safe" => {
            let inner = StaticGovernor::full_power(platform)?;
            let pareto = Arc::new(ParetoTable::build(platform)?);
            let g = SafetyGovernor::with_table(
                inner,
                platform,
                SafetyConfig::default_for(platform),
                pareto,
            )?
            .with_telemetry(telemetry.clone());
            Ok(SessionArm::StaticSafe(Box::new(g)))
        }
        other => Err(ServeError::UnknownGovernor(other.to_string())),
    }
}

impl Session {
    /// Open a session on the PAMA platform: build the governor arm,
    /// schedule the spec's faults, start the run (which emits the config
    /// gauges), and — when `audit` is on — seed the online auditor with
    /// those gauges so window and safety legality are checkable from the
    /// first event.
    ///
    /// # Errors
    /// [`ServeError::UnknownScenario`] / [`ServeError::UnknownGovernor`]
    /// on a bad spec; construction errors from the core and simulator
    /// layers otherwise.
    pub fn open(name: &str, spec: &SessionSpec, audit: bool) -> Result<Self, ServeError> {
        let scenario = find_scenario(&spec.scenario)?;
        let platform = Arc::new(Platform::pama());
        let period_slots = scenario.charging.len();
        let total_slots = spec.periods.saturating_mul(period_slots);
        let capacity = total_slots
            .saturating_mul(EVENTS_PER_SLOT_BUDGET)
            .saturating_add(EVENT_HEADROOM);
        let telemetry = Recorder::with_capacity("serve", capacity);

        let rates = rotated_rates(&scenario, &platform, spec.phase_slots)?;
        let initial_charge = match spec.initial_charge_j {
            Some(j) => joules(j),
            None => scenario.initial_charge,
        };
        let mut sim = Simulation::new(
            Arc::clone(&platform),
            Box::new(TraceSource::new(scenario.charging.clone())),
            Box::new(ScheduleGenerator::new(rates)),
            initial_charge,
            SimConfig {
                periods: spec.periods,
                slots_per_period: period_slots,
                substeps: 8,
                trace: true,
            },
        )?;
        for (at_s, disturbance) in &spec.faults {
            sim.schedule(seconds(*at_s), *disturbance);
        }
        let sim = sim.with_telemetry(telemetry.clone());

        let arm = build_arm(spec, &scenario, &platform, &telemetry)?;
        let run = sim.begin();
        telemetry.event_with_detail(
            "serve.open",
            Some(0),
            0.0,
            &[("total_slots", run.total_slots() as f64)],
            &spec.governor,
        );

        let auditor = if audit {
            let mut state = AuditState::new(AuditConfig::default());
            for gauge in telemetry.gauge_lines() {
                // Config gauges precede all events; fresh violations are
                // impossible here (gauges anchor no online check).
                let _ = state.push(&TraceLine::Gauge(gauge));
            }
            Some(state)
        } else {
            None
        };

        // The rollup windows by charging period and starts from the same
        // config gauges the auditor saw (C_min anchors battery slack).
        let mut rollup = Rollup::new(period_slots as u64);
        for gauge in telemetry.gauge_lines() {
            rollup.push(&TraceLine::Gauge(gauge));
        }

        Ok(Self {
            name: name.to_string(),
            run: Some(run),
            arm,
            telemetry,
            auditor,
            cursor: 0,
            period_slots,
            rollup,
        })
    }

    /// The session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Horizon in slots.
    pub fn total_slots(&self) -> u64 {
        self.run.as_ref().map_or(0, ActiveRun::total_slots)
    }

    /// Slot width (s).
    pub fn tau_s(&self) -> f64 {
        self.run.as_ref().map_or(0.0, ActiveRun::tau_s)
    }

    /// The config gauge lines recorded so far, schema-v1 JSONL — the
    /// head of the live stream a client should pipe to stream tooling.
    pub fn gauge_telemetry(&self) -> Vec<String> {
        self.telemetry
            .gauge_lines()
            .into_iter()
            .map(|g| encode_line(&TraceLine::Gauge(g)))
            .collect()
    }

    /// The session's recorder (absorbed into the server root at close).
    pub fn recorder(&self) -> &Recorder {
        &self.telemetry
    }

    /// Feed freshly recorded events to the online auditor and render
    /// them for the live stream. Returns `(lines, fresh violations)`.
    fn drain_events(&mut self) -> (Vec<String>, Vec<String>) {
        let (cursor, events) = self.telemetry.events_from(self.cursor);
        self.cursor = cursor;
        let mut lines = Vec::with_capacity(events.len());
        let mut fresh = Vec::new();
        for event in events {
            self.rollup.push_event(&event);
            let line = TraceLine::Event(event);
            if let Some(auditor) = self.auditor.as_mut() {
                for v in auditor.push(&line) {
                    fresh.push(v.to_string());
                }
            }
            lines.push(encode_line(&line));
        }
        if !fresh.is_empty() {
            self.telemetry.incr("serve.violations", fresh.len() as u64);
        }
        (lines, fresh)
    }

    /// Step up to `slots` slots, draining telemetry to the auditor after
    /// every slot so violations surface within one slot of emission.
    ///
    /// # Errors
    /// Propagates simulator step failures; the session stays open.
    pub fn advance(&mut self, slots: u64) -> Result<AdvanceOutcome, ServeError> {
        self.telemetry.incr("serve.advances", 1);
        let mut telemetry = Vec::new();
        let mut violations = Vec::new();
        let mut stepped = 0u64;
        loop {
            let more = match self.run.as_mut() {
                Some(run) if stepped < slots && !run.is_done() => {
                    let more = run.step(self.arm.as_governor())?;
                    stepped += 1;
                    more
                }
                _ => false,
            };
            let (mut lines, mut fresh) = self.drain_events();
            telemetry.append(&mut lines);
            violations.append(&mut fresh);
            if !more || stepped >= slots {
                break;
            }
        }
        self.telemetry.incr("serve.slots_stepped", stepped);
        let (slot, done) = self
            .run
            .as_ref()
            .map_or((0, true), |r| (r.slot(), r.is_done()));
        Ok(AdvanceOutcome {
            slot,
            done,
            telemetry,
            violations,
        })
    }

    /// Replace the event-rate schedule from the next slot on.
    ///
    /// # Errors
    /// Series validation errors for empty or non-finite rates.
    pub fn set_rates(&mut self, rates: Vec<f64>) -> Result<(), ServeError> {
        let tau = seconds(self.tau_s());
        let series = PowerSeries::new(tau, rates)?;
        if let Some(run) = self.run.as_mut() {
            run.set_events(Box::new(ScheduleGenerator::new(series)));
        }
        self.telemetry.incr("serve.rate_updates", 1);
        Ok(())
    }

    /// Queue a disturbance at absolute sim time `at_s`.
    pub fn disturb(&mut self, at_s: f64, disturbance: Disturbance) {
        if let Some(run) = self.run.as_mut() {
            run.schedule(seconds(at_s), disturbance);
        }
        self.telemetry.incr("serve.disturbances", 1);
    }

    /// `(next slot, workers, freq MHz, backlog)` from the last completed
    /// slot (zeros before the first).
    pub fn plan(&self) -> (u64, u64, f64, u64) {
        let Some(run) = self.run.as_ref() else {
            return (0, 0, 0.0, 0);
        };
        let (workers, freq) = run
            .slot_records()
            .last()
            .map_or((0, 0.0), |r| (r.workers as u64, r.freq_mhz));
        (run.slot(), workers, freq, run.backlog() as u64)
    }

    /// `(level, c_min, c_max, forecast over one charging period)`.
    pub fn battery(&self) -> (f64, f64, f64, Vec<f64>) {
        let Some(run) = self.run.as_ref() else {
            return (0.0, 0.0, 0.0, Vec::new());
        };
        let (c_min, c_max) = run.battery_limits_j();
        (
            run.battery_level_j(),
            c_min,
            c_max,
            run.forecast_battery_j(self.period_slots as u64),
        )
    }

    /// `(degradations, shed level, fallback engaged)`.
    pub fn degradation(&self) -> (u64, usize, bool) {
        self.arm.degradation()
    }

    /// Snapshot this session's metrics-plane row. All values derive
    /// from the deterministic recorder and the sim-time rollup, so the
    /// same request sequence yields a byte-identical row.
    pub fn metrics(&self) -> SessionMetrics {
        let c_min = self.rollup.gauge("sim.c_min_j").unwrap_or(0.0);
        let battery_slack_j = self
            .rollup
            .latest()
            .and_then(|(_, w)| w.histogram("sim.slot.battery_j"))
            .map(|h| {
                QUANTILES
                    .iter()
                    .map(|&(label, q)| (label, quantile(&h, q) - c_min))
                    .collect()
            })
            .unwrap_or_default();
        let replan_horizon_slots = self
            .rollup
            .totals()
            .histogram("core.replan.horizon_slots")
            .map(|h| {
                QUANTILES
                    .iter()
                    .map(|&(label, q)| (label, quantile(&h, q)))
                    .collect()
            })
            .unwrap_or_default();
        SessionMetrics {
            name: self.name.clone(),
            slot: self.run.as_ref().map_or(0, ActiveRun::slot),
            total_slots: self.total_slots(),
            advances: self.telemetry.counter("serve.advances"),
            slots_stepped: self.telemetry.counter("serve.slots_stepped"),
            violations: self.telemetry.counter("serve.violations"),
            rate_updates: self.telemetry.counter("serve.rate_updates"),
            disturbances: self.telemetry.counter("serve.disturbances"),
            replans: self.rollup.totals().count("core.replan"),
            windows: self.rollup.windows().count() as u64,
            battery_j: self.rollup.totals().last("sim.slot.battery_j"),
            battery_slack_j,
            replan_horizon_slots,
        }
    }

    /// Feed one raw trace line to the **auditor only**; the recorder is
    /// untouched, so the session's own trace stays exactly what the run
    /// emitted. Returns fresh violations the line triggered.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] when the line is not schema-v1 JSONL.
    pub fn inject(&mut self, line: &str) -> Result<Vec<String>, ServeError> {
        let parsed: TraceLine = serde_json::from_str(line)
            .map_err(|e| ServeError::BadRequest(format!("inject: {e}")))?;
        let mut fresh = Vec::new();
        if let Some(auditor) = self.auditor.as_mut() {
            for v in auditor.push(&parsed) {
                fresh.push(v.to_string());
            }
        }
        if !fresh.is_empty() {
            self.telemetry.incr("serve.violations", fresh.len() as u64);
        }
        Ok(fresh)
    }

    /// Close the session: finish the run (emitting the closing counters
    /// and gauges), stream the remaining lines into the auditor, take
    /// the canonical end-of-stream verdict, and return the complete
    /// batch document.
    pub fn close(&mut self) -> CloseOutcome {
        let governor = self.arm.name();
        let report = self.run.take().map(|run| {
            self.telemetry.event_with_detail(
                "serve.close",
                Some(run.slot()),
                run.slot() as f64 * run.tau_s(),
                &[],
                &governor,
            );
            run.finish(&governor)
        });

        // Tail events (serve.close, any finish-time emissions) reach the
        // auditor before the closing counter/gauge lines, preserving the
        // live-emitter ordering contract.
        let (_, mut violations) = self.drain_events();

        let snapshot = self.telemetry.snapshot();
        let mut trace = Vec::with_capacity(snapshot.len());
        for line in &snapshot {
            // Events were already pushed incrementally; pushing them
            // again would double the auditor's body count (and the
            // rollup's).
            if !matches!(line, TraceLine::Event(_)) {
                if let Some(auditor) = self.auditor.as_mut() {
                    for v in auditor.push(line) {
                        violations.push(v.to_string());
                    }
                }
                self.rollup.push(line);
            }
            trace.push(encode_line(line));
        }

        let (audit_ok, checks) = match self.auditor.as_ref() {
            Some(auditor) => {
                let verdict = auditor.finish();
                for v in &verdict.violations {
                    let rendered = v.to_string();
                    if !violations.contains(&rendered) {
                        violations.push(rendered);
                    }
                }
                (verdict.violations.is_empty(), verdict.checks as u64)
            }
            None => (true, 0),
        };

        let (jobs_done, undersupplied_j) =
            report.map_or((0, 0.0), |r| (r.jobs_done, r.undersupplied));
        CloseOutcome {
            audit_ok,
            violations,
            checks,
            jobs_done,
            undersupplied_j,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SessionSpec;
    use dpm_trace::{audit, Trace};

    fn spec(governor: &str, periods: usize) -> SessionSpec {
        SessionSpec::plain("scenario-1", governor, periods)
    }

    #[test]
    fn a_session_runs_to_the_horizon_and_audits_green() {
        let mut s = Session::open("t0", &spec("proposed+safe", 1), true).expect("open");
        let total = s.total_slots();
        assert!(total > 0);
        let out = s.advance(total + 5).expect("advance");
        assert!(out.done);
        assert_eq!(out.slot, total);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(!out.telemetry.is_empty());
        let closed = s.close();
        assert!(closed.audit_ok, "{:?}", closed.violations);
        assert!(closed.checks > 0);

        // The returned document is a complete, parseable batch trace
        // whose whole-file audit agrees with the live verdict.
        let doc = closed.trace.join("\n");
        let trace = Trace::parse(&doc).expect("batch document parses");
        let report = audit(&trace, &AuditConfig::default());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn every_governor_arm_opens() {
        for g in ["proposed", "proposed+safe", "static", "static+safe"] {
            let mut s = Session::open("t", &spec(g, 1), true).expect(g);
            let out = s.advance(2).expect("advance");
            assert_eq!(out.slot, 2, "{g}");
            assert!(out.violations.is_empty(), "{g}: {:?}", out.violations);
        }
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let err = Session::open("t", &SessionSpec::plain("no-such", "static", 1), false)
            .expect_err("scenario");
        assert!(matches!(err, ServeError::UnknownScenario(_)));
        let err = Session::open("t", &SessionSpec::plain("scenario-1", "turbo", 1), false)
            .expect_err("governor");
        assert!(matches!(err, ServeError::UnknownGovernor(_)));
    }

    #[test]
    fn queries_reflect_the_live_run() {
        let mut s = Session::open("t", &spec("proposed+safe", 1), false).expect("open");
        s.advance(3).expect("advance");
        let (slot, _workers, freq, _backlog) = s.plan();
        assert_eq!(slot, 3);
        assert!(freq >= 0.0);
        let (level, c_min, c_max, forecast) = s.battery();
        assert!(level >= c_min && level <= c_max);
        assert_eq!(forecast.len(), s.period_slots);
        let (degradations, shed, fallback) = s.degradation();
        assert!(
            shed == 0 || degradations > 0,
            "a nonzero shed level requires a recorded transition"
        );
        assert!(
            !fallback || degradations > 0,
            "engaging the fallback is itself a transition"
        );
    }

    #[test]
    fn injected_corruption_is_flagged_within_the_push() {
        let mut s = Session::open("t", &spec("static", 1), true).expect("open");
        s.advance(2).expect("advance");
        // A sequence regression in the session scope: seq 0 again.
        let bad = "{\"Event\":{\"seq\":0,\"scope\":\"\",\"name\":\"inject.corrupt\",\
                   \"slot\":null,\"time\":0.0,\"fields\":[],\"detail\":null}}";
        let fresh = s.inject(bad).expect("inject parses");
        assert!(
            !fresh.is_empty(),
            "seq regression must be flagged immediately"
        );
    }

    #[test]
    fn mid_run_rate_updates_and_disturbances_apply() {
        let mut s = Session::open("t", &spec("proposed+safe", 1), true).expect("open");
        s.advance(2).expect("advance");
        s.set_rates(vec![0.5; 4]).expect("rates");
        s.disturb(s.tau_s() * 4.0, Disturbance::EventBurst { count: 3 });
        let total = s.total_slots();
        let out = s.advance(total).expect("advance");
        assert!(out.done);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let closed = s.close();
        assert!(closed.audit_ok, "{:?}", closed.violations);
    }

    #[test]
    fn phase_rotation_changes_the_rate_schedule_not_its_mass() {
        let scenario = find_scenario("scenario-1").expect("scenario");
        let platform = Platform::pama();
        let base = rotated_rates(&scenario, &platform, 0).expect("base");
        let shifted = rotated_rates(&scenario, &platform, 3).expect("shifted");
        let sum = |s: &PowerSeries| s.values().iter().sum::<f64>();
        assert!((sum(&base) - sum(&shifted)).abs() < 1e-12);
        let n = base.values().len();
        assert_eq!(base.values()[3 % n], shifted.values()[0]);
    }
}
