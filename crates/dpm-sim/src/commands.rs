//! The controller→worker command protocol of §5.
//!
//! On PAMA the controller PIM "sends frequency and active/stand-by mode
//! change commands to other processors. Each processor checks the command
//! from the controller processor after each computation." Commands travel
//! the unidirectional ring, so a worker's command latency depends on its
//! hop distance, and a frequency change additionally passes through the
//! FPGA write → standby → 10-cycle wake sequence modelled in
//! [`crate::processor`].
//!
//! [`CommandBus`] models the delivery leg: per-command ring latency plus a
//! polling alignment (workers only look for commands between
//! computations). [`crate::board::PamaBoard::apply_with_bus`] composes it
//! with the chip-level transition latencies.

use crate::network::RingNetwork;
use dpm_core::units::{seconds, Hertz, Seconds};
use std::collections::VecDeque;

/// A command the controller can issue to one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// Enter active mode (wake from standby).
    Wake,
    /// Enter standby.
    Standby,
    /// Change the clock via the FPGA sequence.
    SetFrequency(Hertz),
}

/// A command in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InFlight {
    /// Destination processor id.
    pub dst: usize,
    /// When the worker will act on it.
    pub effective_at: Seconds,
    /// The command.
    pub command: Command,
}

/// The delivery model.
#[derive(Debug, Clone)]
pub struct CommandBus {
    /// Command payload size on the ring (a register write: address +
    /// data).
    payload_bytes: usize,
    /// Worst-case polling delay before a busy worker notices a delivered
    /// command (it checks "after each computation").
    poll_interval: Seconds,
    in_flight: VecDeque<InFlight>,
    sent: u64,
}

impl CommandBus {
    /// PAMA-like bus: 8-byte commands, workers poll every `poll_interval`.
    pub fn new(payload_bytes: usize, poll_interval: Seconds) -> Self {
        assert!(payload_bytes >= 1);
        assert!(poll_interval.value() >= 0.0);
        Self {
            payload_bytes,
            poll_interval,
            in_flight: VecDeque::new(),
            sent: 0,
        }
    }

    /// Default PAMA parameters: 8-byte command, 1 ms polling (a worker
    /// mid-FFT checks between butterfly blocks).
    pub fn pama() -> Self {
        Self::new(8, seconds(1e-3))
    }

    /// Commands issued so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Commands still awaiting their effective time.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// Issue `command` from the controller (node 0) to `dst` at time `t`.
    /// Returns the time the worker will act on it.
    pub fn send(
        &mut self,
        ring: &mut RingNetwork,
        dst: usize,
        command: Command,
        t: Seconds,
    ) -> Seconds {
        let transfer = ring.transfer_time(0, dst, self.payload_bytes);
        // Worst-case: the command lands just after the worker's check.
        let effective_at = seconds(t.value() + transfer.value() + self.poll_interval.value());
        self.in_flight.push_back(InFlight {
            dst,
            effective_at,
            command,
        });
        self.sent += 1;
        effective_at
    }

    /// Pop every command that has become effective by time `t`, in
    /// effective-time order.
    pub fn take_effective(&mut self, t: Seconds) -> Vec<InFlight> {
        let mut ready: Vec<InFlight> = Vec::new();
        self.in_flight.retain(|c| {
            if c.effective_at.value() <= t.value() {
                ready.push(*c);
                false
            } else {
                true
            }
        });
        ready.sort_by(|a, b| a.effective_at.value().total_cmp(&b.effective_at.value()));
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RingConfig;

    fn ring() -> RingNetwork {
        RingNetwork::new(RingConfig::pama())
    }

    #[test]
    fn delivery_latency_grows_with_hop_distance() {
        let mut r = ring();
        let mut bus = CommandBus::pama();
        let near = bus.send(&mut r, 1, Command::Wake, Seconds::ZERO);
        let far = bus.send(&mut r, 7, Command::Wake, Seconds::ZERO);
        assert!(far.value() > near.value(), "{far} vs {near}");
        assert_eq!(bus.sent(), 2);
    }

    #[test]
    fn poll_interval_dominates_short_transfers() {
        let mut r = ring();
        let mut bus = CommandBus::new(8, seconds(1e-3));
        let eff = bus.send(&mut r, 1, Command::Standby, Seconds::ZERO);
        // Ring transfer of 8 bytes over 1 hop ≈ 150 ns ≪ 1 ms poll.
        assert!(eff.value() > 1e-3 && eff.value() < 1.1e-3, "{eff}");
    }

    #[test]
    fn take_effective_respects_time_and_order() {
        let mut r = ring();
        let mut bus = CommandBus::new(8, seconds(0.0));
        bus.send(&mut r, 7, Command::Wake, Seconds::ZERO); // 7 hops: slowest
        bus.send(&mut r, 1, Command::Standby, Seconds::ZERO); // fastest
        assert_eq!(bus.pending(), 2);
        // Nothing effective immediately before any transfer completes.
        assert!(bus.take_effective(Seconds::ZERO).is_empty());
        let ready = bus.take_effective(seconds(1.0));
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[0].dst, 1, "nearest worker acts first");
        assert_eq!(ready[1].dst, 7);
        assert_eq!(bus.pending(), 0);
    }

    #[test]
    fn partial_drain_keeps_later_commands() {
        let mut r = ring();
        let mut bus = CommandBus::new(1024 * 1024, seconds(0.0)); // slow: ~13 ms/hop
        bus.send(&mut r, 1, Command::Wake, Seconds::ZERO);
        bus.send(&mut r, 7, Command::Wake, Seconds::ZERO);
        let early = bus.take_effective(seconds(0.02));
        assert_eq!(early.len(), 1);
        assert_eq!(early[0].dst, 1);
        assert_eq!(bus.pending(), 1);
    }

    #[test]
    fn frequency_command_carries_its_target() {
        let mut r = ring();
        let mut bus = CommandBus::pama();
        bus.send(
            &mut r,
            3,
            Command::SetFrequency(Hertz::from_mhz(40.0)),
            Seconds::ZERO,
        );
        let ready = bus.take_effective(seconds(1.0));
        match ready[0].command {
            Command::SetFrequency(f) => assert_eq!(f, Hertz::from_mhz(40.0)),
            other => panic!("wrong command {other:?}"),
        }
    }
}
