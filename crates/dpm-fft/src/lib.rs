//! # dpm-fft
//!
//! The FORTE signal-processing workload of the paper's §5, built from
//! scratch: Q15 fixed-point arithmetic (the M32R/D has no FPU), a radix-2
//! fixed-point FFT with per-stage scaling, analysis windows, the two-stage
//! RF transient detector, a fork-join parallel FFT realizing the Fig. 2
//! task graph, and a cycle model calibrated to the paper's measured
//! 4.8 s / 2K-FFT / 20 MHz point.
//!
//! ```
//! use dpm_fft::prelude::*;
//!
//! // Generate a synthetic FORTE capture and run the detector on it.
//! let capture = generate(&CaptureSpec::with_transient(), 42);
//! let detector = TransientDetector::new(DetectorConfig::default());
//! let result = detector.detect(&capture);
//! assert!(result.is_event);
//!
//! // The calibrated cycle model feeds dpm-core's Amdahl workload.
//! let model = CycleModel::pama_fft();
//! let t = model.job_time(2048, dpm_core::units::Hertz::from_mhz(20.0));
//! assert!((t.value() - 4.8).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod detect;
pub mod fft;
pub mod fixed;
pub mod parallel;
pub mod rfft;
pub mod signal;
pub mod spectrogram;
pub mod timing;
pub mod twiddle;
pub mod window;

/// One-stop imports.
pub mod prelude {
    pub use crate::detect::{Detection, DetectorConfig, TransientDetector};
    pub use crate::fft::{dequantize, quantize, reference_dft, Direction, FixedFft};
    pub use crate::fixed::{CQ15, Q15};
    pub use crate::parallel::{ForkJoinFft, StageTimes};
    pub use crate::rfft::RealFft;
    pub use crate::signal::{generate, CaptureSpec};
    pub use crate::spectrogram::Spectrogram;
    pub use crate::timing::{butterflies, CycleModel};
    pub use crate::window::{Window, WindowKind};
}
