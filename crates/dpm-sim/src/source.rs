//! External charging sources.
//!
//! §2: "a rechargeable battery that is charged by an external power source
//! that has a periodic power supply schedule" — canonically a solar panel
//! on a periodic orbit. Sources here are deterministic functions of time
//! (noise included, via a seeded hash of the time slot) so simulations are
//! reproducible.

use dpm_core::series::PowerSeries;
use dpm_core::units::{watts, Seconds, Watts};

/// A power source sampled by the simulator.
pub trait ChargingSource: Send {
    /// Instantaneous power offered at time `t`.
    fn power(&self, t: Seconds) -> Watts;

    /// Mean power over `[t, t + dt)`, integrated by midpoint sampling by
    /// default; trace sources override with exact integration.
    fn mean_power(&self, t: Seconds, dt: Seconds) -> Watts {
        self.power(Seconds(t.value() + 0.5 * dt.value()))
    }
}

/// A source that replays a periodic piecewise-constant trace — the
/// "expected charging schedule c(t)" made real.
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: PowerSeries,
}

impl TraceSource {
    /// Wrap a trace.
    pub fn new(trace: PowerSeries) -> Self {
        Self { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &PowerSeries {
        &self.trace
    }
}

impl ChargingSource for TraceSource {
    fn power(&self, t: Seconds) -> Watts {
        self.trace.value_at(t)
    }

    fn mean_power(&self, t: Seconds, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 {
            return self.power(t);
        }
        let period = self.trace.period().value();
        let a = t.value().rem_euclid(period);
        watts(
            self.trace
                .integral_wrapping(Seconds(a), Seconds(a + dt.value()))
                .value()
                / dt.value(),
        )
    }
}

/// A first-principles solar-orbit model: full panel power in sunlight,
/// zero in eclipse, with a short penumbra ramp at the transitions.
#[derive(Debug, Clone, Copy)]
pub struct SolarOrbitSource {
    /// Orbit period.
    pub period: Seconds,
    /// Fraction of the orbit spent in sunlight, `(0, 1)`.
    pub sunlit_fraction: f64,
    /// Panel output in full sun.
    pub panel_power: Watts,
    /// Penumbra ramp duration at each transition.
    pub penumbra: Seconds,
}

impl SolarOrbitSource {
    /// A low-Earth-orbit-like default scaled to the paper's 57.6 s period:
    /// 60% sunlit, 2.36 W panel (the scenario-I plateau), 2 s penumbra.
    pub fn pama_like() -> Self {
        Self {
            period: Seconds(57.6),
            sunlit_fraction: 0.6,
            panel_power: watts(2.36),
            penumbra: Seconds(2.0),
        }
    }
}

impl ChargingSource for SolarOrbitSource {
    fn power(&self, t: Seconds) -> Watts {
        let phase = t.value().rem_euclid(self.period.value());
        let sunset = self.sunlit_fraction * self.period.value();
        let ramp = self.penumbra.value().max(1e-9);
        // Sunrise ramp at phase 0, sunset ramp at `sunset`.
        let level = if phase < sunset {
            // Rising edge then plateau then falling edge.
            let rise = (phase / ramp).min(1.0);
            let fall = ((sunset - phase) / ramp).min(1.0);
            rise.min(fall)
        } else {
            0.0
        };
        self.panel_power * level
    }
}

/// Multiplicative noise wrapper: `power(t) = inner(t) · (1 + ε(t))`, with
/// `ε` drawn from `[−amplitude, amplitude]` by a deterministic hash of the
/// noise slot — reproducible without carrying an RNG.
#[derive(Debug, Clone)]
pub struct NoisySource<S> {
    inner: S,
    amplitude: f64,
    slot: Seconds,
    seed: u64,
}

impl<S: ChargingSource> NoisySource<S> {
    /// Wrap `inner` with relative noise of the given amplitude, re-drawn
    /// every `slot` seconds.
    pub fn new(inner: S, amplitude: f64, slot: Seconds, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&amplitude));
        assert!(slot.value() > 0.0);
        Self {
            inner,
            amplitude,
            slot,
            seed,
        }
    }

    fn epsilon(&self, t: Seconds) -> f64 {
        let k = (t.value() / self.slot.value()).floor() as i64 as u64;
        // SplitMix64 over (seed, slot index).
        let mut z = self.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (2.0 * u - 1.0) * self.amplitude
    }
}

impl<S: ChargingSource> ChargingSource for NoisySource<S> {
    fn power(&self, t: Seconds) -> Watts {
        let p = self.inner.power(t);
        watts((p.value() * (1.0 + self.epsilon(t))).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::seconds;

    fn scenario_trace() -> PowerSeries {
        PowerSeries::new(
            seconds(4.8),
            vec![
                2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn trace_source_replays_schedule() {
        let s = TraceSource::new(scenario_trace());
        assert_eq!(s.power(seconds(1.0)), watts(2.36));
        assert_eq!(s.power(seconds(30.0)), watts(0.0));
        // Periodic.
        assert_eq!(s.power(seconds(57.6 + 1.0)), watts(2.36));
    }

    #[test]
    fn trace_mean_power_is_exact_over_boundary() {
        let s = TraceSource::new(scenario_trace());
        // [26.4, 31.2) straddles the sun/eclipse edge at 28.8: half 2.36.
        let m = s.mean_power(seconds(26.4), seconds(4.8));
        assert!((m.value() - 1.18).abs() < 1e-9, "{m}");
    }

    #[test]
    fn trace_mean_power_wraps_period() {
        let s = TraceSource::new(scenario_trace());
        // [55.2, 60.0) wraps: 2.4 s of 0 then 2.4 s of 2.36.
        let m = s.mean_power(seconds(55.2), seconds(4.8));
        assert!((m.value() - 1.18).abs() < 1e-9, "{m}");
    }

    #[test]
    fn solar_orbit_eclipses() {
        let s = SolarOrbitSource::pama_like();
        assert!(s.power(seconds(15.0)).value() > 2.3); // mid-sun
        assert_eq!(s.power(seconds(50.0)), Watts::ZERO); // eclipse
                                                         // Penumbra: partially lit.
        let p = s.power(seconds(1.0));
        assert!(p.value() > 0.0 && p.value() < 2.36);
    }

    #[test]
    fn solar_orbit_is_periodic() {
        let s = SolarOrbitSource::pama_like();
        for k in 0..5 {
            let t = seconds(10.0 + 57.6 * k as f64);
            assert!(s.power(t).approx_eq(s.power(seconds(10.0)), 1e-9));
        }
    }

    #[test]
    fn noisy_source_is_deterministic() {
        let a = NoisySource::new(TraceSource::new(scenario_trace()), 0.2, seconds(4.8), 7);
        let b = NoisySource::new(TraceSource::new(scenario_trace()), 0.2, seconds(4.8), 7);
        for i in 0..24 {
            let t = seconds(i as f64 * 2.4);
            assert_eq!(a.power(t), b.power(t));
        }
    }

    #[test]
    fn noisy_source_stays_within_band_and_varies() {
        let s = NoisySource::new(TraceSource::new(scenario_trace()), 0.2, seconds(4.8), 3);
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..6 {
            let t = seconds(i as f64 * 4.8 + 0.1);
            let p = s.power(t).value();
            assert!((2.36 * 0.8 - 1e-9..=2.36 * 1.2 + 1e-9).contains(&p), "{p}");
            distinct.insert((p * 1e6) as i64);
        }
        assert!(distinct.len() > 2, "noise not varying");
    }

    #[test]
    fn noise_seed_changes_draws() {
        let a = NoisySource::new(TraceSource::new(scenario_trace()), 0.2, seconds(4.8), 1);
        let b = NoisySource::new(TraceSource::new(scenario_trace()), 0.2, seconds(4.8), 2);
        let t = seconds(0.1);
        assert_ne!(a.power(t), b.power(t));
    }
}
