//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the deriving type's definition directly from the token stream
//! (no `syn`/`quote` available offline) and emits `Serialize`/`Deserialize`
//! impls against the simplified `Content` data model. Supports exactly the
//! shapes this workspace uses: named-field structs, tuple structs, and
//! enums with unit, tuple, and struct variants. Container attributes such
//! as `#[serde(transparent)]` are accepted and ignored — a newtype struct
//! already serializes as its inner value here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Unnamed(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) tokens.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' then the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a comma-separated token list at top level, tracking `<...>` depth
/// so commas inside generic arguments don't split fields.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_commas(group_tokens)
        .into_iter()
        .filter_map(|field| {
            let i = skip_meta(&field, 0);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_fields_group(g: &proc_macro::Group) -> Fields {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    match g.delimiter() {
        Delimiter::Brace => Fields::Named(parse_named_fields(&tokens)),
        Delimiter::Parenthesis => Fields::Unnamed(split_commas(&tokens).len()),
        _ => Fields::Unit,
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stand-in does not support generic types");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) => parse_fields_group(g),
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                other => panic!("unexpected token after struct name: {other:?}"),
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("expected enum body, got {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let variants = split_commas(&body_tokens)
                .into_iter()
                .filter(|v| !v.is_empty())
                .map(|v| {
                    let j = skip_meta(&v, 0);
                    let vname = match &v[j] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => panic!("expected variant name, got {other}"),
                    };
                    let fields = match v.get(j + 1) {
                        Some(TokenTree::Group(g)) => parse_fields_group(g),
                        _ => Fields::Unit,
                    };
                    Variant {
                        name: vname,
                        fields,
                    }
                })
                .collect();
            Input::Enum { name, variants }
        }
        other => panic!("cannot derive for {other}"),
    }
}

fn serialize_fields(fields: &Fields, access: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|n| {
                    format!("(\"{n}\".to_string(), serde::Serialize::to_content(&{access}{n}))")
                })
                .collect();
            format!("serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Fields::Unnamed(1) => format!("serde::Serialize::to_content(&{access}0)"),
        Fields::Unnamed(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_content(&{access}{k})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Fields::Unit => "serde::Content::Null".to_string(),
    }
}

fn deserialize_named(names: &[String], constructor: &str, ty: &str) -> String {
    let mut body = String::new();
    for n in names {
        body.push_str(&format!(
            "let {n} = serde::Deserialize::from_content(content.get(\"{n}\")\
             .ok_or_else(|| serde::DeError(format!(\"missing field `{n}` in {ty}\")))?)?;\n"
        ));
    }
    body.push_str(&format!("Ok({constructor} {{ {} }})", names.join(", ")));
    body
}

fn deserialize_unnamed(n: usize, constructor: &str, ty: &str) -> String {
    if n == 1 {
        return format!("Ok({constructor}(serde::Deserialize::from_content(content)?))");
    }
    let mut body = format!(
        "let items = match content {{\n\
         serde::Content::Seq(items) if items.len() == {n} => items,\n\
         other => return Err(serde::DeError(format!(\"expected {n}-element seq for {ty}, got {{other:?}}\"))),\n\
         }};\n"
    );
    let args: Vec<String> = (0..n)
        .map(|k| format!("serde::Deserialize::from_content(&items[{k}])?"))
        .collect();
    body.push_str(&format!("Ok({constructor}({}))", args.join(", ")));
    body
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => {
            let body = serialize_fields(fields, "self.");
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => serde::Content::Str(\"{vn}\".to_string()),")
                        }
                        Fields::Named(names) => {
                            let binds = names.join(", ");
                            let entries: Vec<String> = names
                                .iter()
                                .map(|n| {
                                    format!(
                                        "(\"{n}\".to_string(), serde::Serialize::to_content({n}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Content::Map(vec![\
                                 (\"{vn}\".to_string(), serde::Content::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Fields::Unnamed(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let payload = if *n == 1 {
                                "serde::Serialize::to_content(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_content({b})"))
                                    .collect();
                                format!("serde::Content::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => serde::Content::Map(vec![\
                                 (\"{vn}\".to_string(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> serde::Content {{\n\
                 match self {{ {} }}\n\
                 }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => deserialize_named(names, "Self", name),
                Fields::Unnamed(n) => deserialize_unnamed(*n, "Self", name),
                Fields::Unit => "Ok(Self)".to_string(),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {{\n\
                 {body}\n\
                 }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let ctor = format!("{name}::{vn}");
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(names) => {
                            let inner = deserialize_named(names, &ctor, name)
                                .replace("content.get", "payload.get");
                            Some(format!(
                                "\"{vn}\" => {{ let payload = value; return (|| -> Result<Self, serde::DeError> {{ {inner} }})(); }}"
                            ))
                        }
                        Fields::Unnamed(n) => {
                            let inner = deserialize_unnamed(*n, &ctor, name)
                                .replace("from_content(content)", "from_content(value)")
                                .replace("match content", "match value");
                            Some(format!(
                                "\"{vn}\" => {{ return (|| -> Result<Self, serde::DeError> {{ {inner} }})(); }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {{\n\
                 if let serde::Content::Str(tag) = content {{\n\
                 match tag.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
                 if let serde::Content::Map(entries) = content {{\n\
                 if entries.len() == 1 {{\n\
                 let (tag, value) = (&entries[0].0, &entries[0].1);\n\
                 match tag.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
                 }}\n\
                 Err(serde::DeError(format!(\"no variant of {name} matches {{content:?}}\")))\n\
                 }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
