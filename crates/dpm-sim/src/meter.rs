//! The power-measurement board: sampled power and per-interval energy
//! accounting ("A power measurement board is used to measure real-time
//! power consumption", §5). The controller's Algorithm 3 feedback loop
//! reads its per-slot energies.

use dpm_core::units::{joules, watts, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One sample in the meter's trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeterSample {
    /// Sample time (s).
    pub time: f64,
    /// Measured power (W).
    pub power: f64,
}

/// Accumulating energy meter with an optional sampled trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PowerMeter {
    total: f64,
    interval: f64,
    trace: Vec<MeterSample>,
    keep_trace: bool,
}

impl PowerMeter {
    /// A meter that only accumulates energies.
    pub fn new() -> Self {
        Self::default()
    }

    /// A meter that also records every sample.
    pub fn with_trace() -> Self {
        Self {
            keep_trace: true,
            ..Self::default()
        }
    }

    /// Record `power` drawn over `[t, t + dt)`.
    pub fn record(&mut self, t: Seconds, dt: Seconds, power: Watts) {
        assert!(dt.value() >= 0.0 && power.value() >= 0.0);
        let e = power.value() * dt.value();
        self.total += e;
        self.interval += e;
        if self.keep_trace {
            self.trace.push(MeterSample {
                time: t.value(),
                power: power.value(),
            });
        }
    }

    /// Energy since the last [`Self::lap`], and reset the interval counter
    /// — the controller calls this once per `τ`.
    pub fn lap(&mut self) -> Joules {
        let e = self.interval;
        self.interval = 0.0;
        joules(e)
    }

    /// Total energy ever recorded.
    pub fn total(&self) -> Joules {
        joules(self.total)
    }

    /// The sampled trace (empty unless built with [`Self::with_trace`]).
    pub fn trace(&self) -> &[MeterSample] {
        &self.trace
    }

    /// Mean power over the full recording, given its duration.
    pub fn mean_power(&self, duration: Seconds) -> Watts {
        watts(self.total / duration.value().max(1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::seconds;

    #[test]
    fn accumulates_energy() {
        let mut m = PowerMeter::new();
        m.record(seconds(0.0), seconds(2.0), watts(3.0));
        m.record(seconds(2.0), seconds(1.0), watts(1.0));
        assert!(m.total().approx_eq(joules(7.0), 1e-12));
    }

    #[test]
    fn lap_resets_interval_only() {
        let mut m = PowerMeter::new();
        m.record(seconds(0.0), seconds(1.0), watts(2.0));
        assert_eq!(m.lap(), joules(2.0));
        assert_eq!(m.lap(), Joules::ZERO);
        m.record(seconds(1.0), seconds(1.0), watts(4.0));
        assert_eq!(m.lap(), joules(4.0));
        assert_eq!(m.total(), joules(6.0));
    }

    #[test]
    fn trace_is_optional() {
        let mut plain = PowerMeter::new();
        plain.record(seconds(0.0), seconds(1.0), watts(1.0));
        assert!(plain.trace().is_empty());

        let mut tracing = PowerMeter::with_trace();
        tracing.record(seconds(0.0), seconds(1.0), watts(1.0));
        tracing.record(seconds(1.0), seconds(1.0), watts(2.0));
        assert_eq!(tracing.trace().len(), 2);
        assert_eq!(tracing.trace()[1].power, 2.0);
    }

    #[test]
    fn mean_power_over_duration() {
        let mut m = PowerMeter::new();
        m.record(seconds(0.0), seconds(4.0), watts(2.0));
        assert!((m.mean_power(seconds(8.0)).value() - 1.0).abs() < 1e-12);
    }
}
