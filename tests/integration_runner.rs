//! End-to-end contract tests for the parallel experiment runner: the same
//! sweep/table produced serially and in parallel must be byte-identical,
//! and one failing point must not take its siblings down.

use dpm_bench::experiments::{self, GovernorSpec, MatrixCell};
use dpm_bench::sweeps;
use dpm_core::platform::{BatteryLimits, Platform};
use dpm_core::units::joules;
use dpm_sim::prelude::SimError;
use dpm_workloads::scenarios;
use std::sync::Arc;

/// Short horizon: these tests exercise the harness, not the physics.
const PERIODS: usize = 2;

#[test]
fn sweep_csv_is_byte_identical_for_any_worker_count() {
    let all: Vec<String> = Vec::new();
    let (serial, _) = sweeps::run(&all, 1, PERIODS)
        .map(|o| (o.csv, o.failures))
        .expect("serial sweep");
    for jobs in [2, 4, 8] {
        let out = sweeps::run(&all, jobs, PERIODS).expect("parallel sweep");
        assert_eq!(out.failures, 0, "jobs = {jobs}");
        assert_eq!(serial, out.csv, "CSV diverged at jobs = {jobs}");
    }
}

#[test]
fn table1_is_identical_for_any_worker_count() {
    let platform = Platform::pama();
    let scenarios = scenarios::all();
    let serial = experiments::table1(&platform, &scenarios, PERIODS).expect("serial table1");
    for jobs in [2, 4, 13] {
        let parallel = experiments::table1_jobs(&platform, &scenarios, PERIODS, jobs)
            .expect("parallel table1");
        assert_eq!(serial, parallel, "rows diverged at jobs = {jobs}");
    }
}

#[test]
fn one_infeasible_cell_does_not_abort_its_siblings() {
    let good = Arc::new(Platform::pama());
    // A battery window too tight for the allocator to converge in: the
    // proposed governor's cell must fail, everyone else's must not.
    let mut tight = Platform::pama();
    tight.battery = BatteryLimits::new(joules(0.5), joules(2.0)).expect("limits");
    let tight = Arc::new(tight);
    let mut scenario = scenarios::scenario_one();
    scenario.initial_charge = joules(1.25);
    let scenario = Arc::new(scenario);
    let good_scenario = Arc::new(scenarios::scenario_one());

    let cells = vec![
        MatrixCell {
            platform: Arc::clone(&good),
            scenario: Arc::clone(&good_scenario),
            governor: GovernorSpec::Proposed,
            periods: PERIODS,
        },
        MatrixCell {
            platform: Arc::clone(&tight),
            scenario: Arc::clone(&scenario),
            governor: GovernorSpec::Proposed,
            periods: PERIODS,
        },
        MatrixCell {
            platform: Arc::clone(&good),
            scenario: Arc::clone(&good_scenario),
            governor: GovernorSpec::Static,
            periods: PERIODS,
        },
    ];
    let (results, stats) = experiments::run_matrix(&cells, 3);
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert!(results[1].is_err(), "infeasible cell should fail");
    assert!(results[2].is_ok(), "{:?}", results[2]);
    assert_eq!(stats.jobs, 3);
}

#[test]
fn worker_panic_surfaces_as_a_structured_sim_error() {
    // run_matrix maps a caught worker panic to SimError::WorkerPanic so a
    // panicking cell lands in its own result slot like any other failure.
    let e = SimError::WorkerPanic("job 3 panicked: boom".into());
    assert!(e.to_string().contains("worker thread panicked"));
    assert!(e.to_string().contains("boom"));
}
