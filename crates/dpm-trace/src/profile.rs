//! Hierarchical span-tree analysis over `.profile` documents.
//!
//! The profiler ([`dpm_telemetry::Recorder::span`]) emits collapsed-stack
//! [`SpanNodeLine`]s next to the flat per-name aggregates. This module
//! derives parent/child attribution from those paths: **self time**
//! (a node's total minus its direct children's totals) versus **total
//! time**, a DFS tree rendering, a collapsed-stack flamegraph export,
//! and a committed-baseline check reusing the [`crate::bench`] gate so
//! the hottest span (ROADMAP item 3 names the §4.2 parameter scheduler)
//! is a CI-tracked number rather than a guess.

use crate::bench::{self, BenchBaseline, Regression};
use dpm_telemetry::{ProfileLine, SpanNodeLine};
use std::fmt::Write as _;

/// One analyzed span-tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Collapsed-stack path (`;`-separated frames, root first).
    pub path: String,
    /// The leaf frame (last path segment).
    pub name: String,
    /// Nesting depth (0 for a root frame).
    pub depth: usize,
    /// Completed executions of exactly this path.
    pub count: u64,
    /// Total wall-clock seconds, children included.
    pub total_s: f64,
    /// Longest single execution (s).
    pub max_s: f64,
    /// Wall-clock seconds spent in this frame itself: total minus the
    /// direct children's totals, floored at zero (timer noise can make
    /// children sum marginally past their parent).
    pub self_s: f64,
}

/// The parent path of a collapsed-stack path (`"a;b;c"` → `"a;b"`).
fn parent_of(path: &str) -> Option<&str> {
    path.rfind(';').map(|i| &path[..i])
}

/// Whether `child` is a *direct* child path of `parent`.
fn is_direct_child(parent: &str, child: &str) -> bool {
    child.len() > parent.len()
        && child.starts_with(parent)
        && child.as_bytes().get(parent.len()) == Some(&b';')
        && !child[parent.len() + 1..].contains(';')
}

/// Derive self-time attribution from raw span-tree lines; the result is
/// sorted by path. Duplicate paths (possible after concatenating
/// documents) are merged.
pub fn analyze(lines: &[SpanNodeLine]) -> Vec<SpanNode> {
    let mut nodes: Vec<SpanNode> = Vec::with_capacity(lines.len());
    for line in lines {
        match nodes.iter_mut().find(|n| n.path == line.path) {
            Some(n) => {
                n.count += line.count;
                n.total_s += line.total_s;
                n.max_s = n.max_s.max(line.max_s);
            }
            None => {
                let name = line
                    .path
                    .rsplit(';')
                    .next()
                    .unwrap_or(line.path.as_str())
                    .to_string();
                nodes.push(SpanNode {
                    path: line.path.clone(),
                    name,
                    depth: line.path.matches(';').count(),
                    count: line.count,
                    total_s: line.total_s,
                    max_s: line.max_s,
                    self_s: 0.0,
                });
            }
        }
    }
    nodes.sort_by(|a, b| a.path.cmp(&b.path));
    for i in 0..nodes.len() {
        let children_total: f64 = nodes
            .iter()
            .filter(|c| is_direct_child(&nodes[i].path, &c.path))
            .map(|c| c.total_s)
            .sum();
        nodes[i].self_s = (nodes[i].total_s - children_total).max(0.0);
    }
    nodes
}

fn render_subtree(out: &mut String, nodes: &[SpanNode], path: &str, indent: usize) {
    for node in nodes.iter().filter(|n| n.path == path) {
        let _ = writeln!(
            out,
            "  {:>8}x  total {:>10.6}s  self {:>10.6}s  max {:>10.6}s  {:indent$}{}",
            node.count,
            node.total_s,
            node.self_s,
            node.max_s,
            "",
            node.name,
            indent = indent * 2,
        );
    }
    let children: Vec<&SpanNode> = nodes
        .iter()
        .filter(|c| is_direct_child(path, &c.path))
        .collect();
    for child in children {
        render_subtree(out, nodes, &child.path, indent + 1);
    }
}

/// Render the span tree (DFS, indented by depth) followed by a
/// self-time ranking, hottest first. The header carries the same
/// wall-clock disclaimer as the stderr summary: none of this is a
/// determinism surface.
pub fn render(lines: &[SpanNodeLine]) -> String {
    let nodes = analyze(lines);
    let mut out = String::new();
    if nodes.is_empty() {
        let _ = writeln!(out, "profile: no span-tree lines (profiler not wired?)");
        return out;
    }
    let _ = writeln!(
        out,
        "span tree ({} nodes, WALL CLOCK — non-deterministic, excluded from the trace):",
        nodes.len()
    );
    let roots: Vec<String> = nodes
        .iter()
        .filter(|n| parent_of(&n.path).is_none_or(|p| !nodes.iter().any(|other| other.path == p)))
        .map(|n| n.path.clone())
        .collect();
    for root in roots {
        render_subtree(&mut out, &nodes, &root, 0);
    }

    let mut ranked: Vec<&SpanNode> = nodes.iter().collect();
    ranked.sort_by(|a, b| b.self_s.total_cmp(&a.self_s).then(a.path.cmp(&b.path)));
    let _ = writeln!(out, "\nself-time ranking:");
    for node in &ranked {
        let _ = writeln!(
            out,
            "  self {:>10.6}s  total {:>10.6}s  {:>8}x  {}",
            node.self_s, node.total_s, node.count, node.path,
        );
    }
    if let Some(hottest) = ranked.first() {
        let _ = writeln!(
            out,
            "\nhottest self-time: {} ({:.6}s across {} calls)",
            hottest.path, hottest.self_s, hottest.count,
        );
    }
    out
}

/// Collapsed-stack flamegraph export: one `path value` line per node,
/// where the value is the node's **self** time in whole microseconds
/// (flamegraph tooling sums children itself). Pipe into any
/// `flamegraph.pl`-compatible renderer.
pub fn collapse(lines: &[SpanNodeLine]) -> String {
    let mut out = String::new();
    for node in analyze(lines) {
        let _ = writeln!(out, "{} {}", node.path, (node.self_s * 1e6).round() as u64);
    }
    out
}

/// Map span-tree lines onto flat profile lines (name = path) so the
/// [`crate::bench`] machinery can condense and gate them unchanged.
pub fn to_profile_lines(lines: &[SpanNodeLine]) -> Vec<ProfileLine> {
    lines
        .iter()
        .map(|n| ProfileLine {
            name: n.path.clone(),
            count: n.count,
            total_s: n.total_s,
            mean_s: if n.count == 0 {
                0.0
            } else {
                n.total_s / n.count as f64
            },
            max_s: n.max_s,
        })
        .collect()
}

/// Condense span-tree lines into a committed baseline (paths as names).
pub fn baseline(name: &str, lines: &[SpanNodeLine]) -> BenchBaseline {
    BenchBaseline::from_profile(name, &to_profile_lines(lines))
}

/// Check span-tree lines against a committed baseline: path set and
/// deterministic call counts must match exactly, mean durations within
/// `tolerance_pct` — the same contract as [`crate::bench::check`].
pub fn check(base: &BenchBaseline, lines: &[SpanNodeLine], tolerance_pct: f64) -> Vec<Regression> {
    bench::check(base, &to_profile_lines(lines), tolerance_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(path: &str, count: u64, total_s: f64) -> SpanNodeLine {
        SpanNodeLine {
            path: path.into(),
            count,
            total_s,
            max_s: total_s,
        }
    }

    fn sample() -> Vec<SpanNodeLine> {
        vec![
            node("sim.run", 1, 1.0),
            node("sim.run;core.decide", 24, 0.6),
            node("sim.run;core.decide;core.replan", 7, 0.2),
            node("params.plan", 2, 0.5),
        ]
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let nodes = analyze(&sample());
        let by_path = |p: &str| nodes.iter().find(|n| n.path == p).expect(p);
        assert!((by_path("sim.run").self_s - 0.4).abs() < 1e-12);
        assert!((by_path("sim.run;core.decide").self_s - 0.4).abs() < 1e-12);
        assert!((by_path("sim.run;core.decide;core.replan").self_s - 0.2).abs() < 1e-12);
        assert!((by_path("params.plan").self_s - 0.5).abs() < 1e-12);
        assert_eq!(by_path("sim.run;core.decide").depth, 1);
        assert_eq!(by_path("sim.run;core.decide").name, "core.decide");
    }

    #[test]
    fn children_summing_past_their_parent_floor_at_zero() {
        let nodes = analyze(&[node("a", 1, 0.1), node("a;b", 1, 0.11)]);
        let a = nodes.iter().find(|n| n.path == "a").expect("a");
        assert_eq!(a.self_s, 0.0);
    }

    #[test]
    fn sibling_prefixes_are_not_children() {
        // "a;bc" must not be mistaken for a child of "a;b".
        let nodes = analyze(&[node("a;b", 1, 0.5), node("a;bc", 1, 0.2)]);
        let b = nodes.iter().find(|n| n.path == "a;b").expect("a;b");
        assert!((b.self_s - 0.5).abs() < 1e-12);
        assert!(!is_direct_child("a;b", "a;bc"));
        assert!(!is_direct_child("a", "a;b;c"), "grandchild is not direct");
        assert!(is_direct_child("a;b", "a;b;c"));
    }

    #[test]
    fn duplicate_paths_merge() {
        let nodes = analyze(&[node("a", 1, 0.1), node("a", 2, 0.3)]);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].count, 3);
        assert!((nodes[0].total_s - 0.4).abs() < 1e-12);
    }

    #[test]
    fn render_ranks_by_self_time_and_names_the_hottest() {
        let report = render(&sample());
        assert!(report.contains("span tree"), "{report}");
        assert!(report.contains("WALL CLOCK"), "{report}");
        assert!(report.contains("self-time ranking"), "{report}");
        // params.plan (0.5 self) outranks everything else.
        assert!(
            report.contains("hottest self-time: params.plan"),
            "{report}"
        );
        // The tree view indents children under their parents.
        let decide_row = report
            .lines()
            .find(|l| l.ends_with("  core.decide"))
            .expect("indented child row");
        assert!(decide_row.contains("    core.decide"), "{decide_row}");
        assert!(render(&[]).contains("no span-tree lines"));
    }

    #[test]
    fn collapse_emits_flamegraph_lines_with_self_time_values() {
        let collapsed = collapse(&sample());
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.contains(&"params.plan 500000"), "{collapsed}");
        assert!(
            lines.contains(&"sim.run;core.decide;core.replan 200000"),
            "{collapsed}"
        );
        // Every line is `path value` with an integer value.
        for line in lines {
            let value = line.rsplit(' ').next().unwrap_or("");
            assert!(value.parse::<u64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn baseline_check_round_trips_and_flags_count_changes() {
        let base = baseline("profile", &sample());
        assert!(check(&base, &sample(), 50.0).is_empty());
        let mut changed = sample();
        changed[1].count = 25;
        let regs = check(&base, &changed, 50.0);
        assert!(regs.iter().any(|r| r.message.contains("call count")));
        let fewer: Vec<SpanNodeLine> = sample().into_iter().skip(1).collect();
        let regs = check(&base, &fewer, 50.0);
        assert!(regs.iter().any(|r| r.message.contains("missing")));
    }

    #[test]
    fn orphaned_subtrees_still_render_as_roots() {
        // A document trimmed to a subtree (no "a" line) must not lose
        // the "a;b" node from the tree view.
        let report = render(&[node("a;b", 1, 0.1)]);
        assert!(report.contains("b"), "{report}");
        assert!(report.contains("1x"), "{report}");
    }
}
