#!/usr/bin/env sh
# Gate: no panicking constructs on input-reachable paths in dpm-core, nor
# in the parallel experiment runner (a panic there would look like a lost
# job to every caller relying on its failure-isolation contract).
#
# Scans every file under crates/dpm-core/src, crates/dpm-telemetry/src
# (the observability layer must never take down the system it observes —
# a poisoned lock degrades to recovering the data, not panicking),
# crates/dpm-trace/src (trace analysis runs over possibly hostile input
# and must degrade through typed errors — including the streaming
# rollup and the span-tree profile analysis), and crates/dpm-broker/src
# (the power-topology robustness kernel: a panic mid-cascade would strand
# the tree in an illegal configuration), plus
# the dpm-bench runner, campaign, fleet, and topology modules, the
# simulation engine, its struct-of-arrays fleet core and its topology
# runtime, and the dpm-workloads
# fault-plan and fleet-population generators (the fault-injection path
# must degrade through typed errors, never abort a campaign), and all of
# crates/dpm-serve/src (a long-running service digesting hostile NDJSON
# must answer with structured errors, never die mid-session — the
# metrics exposition renderer/validator included), strips
# everything from the `#[cfg(test)]` marker onward
# (test modules sit at the end of each file),
# and fails if the remainder contains `.unwrap()`, `.expect(`, `panic!`,
# or a non-debug `assert!`/`assert_eq!`/`assert_ne!`. `debug_assert!` is
# allowed: internal invariants are checked in debug builds only (see
# DESIGN.md §7). Doc-comment lines are skipped — doctests may assert.
set -eu

status=0
for f in $(find crates/dpm-core/src -name '*.rs' | sort) \
    $(find crates/dpm-telemetry/src -name '*.rs' | sort) \
    $(find crates/dpm-trace/src -name '*.rs' | sort) \
    $(find crates/dpm-broker/src -name '*.rs' | sort) \
    $(find crates/dpm-serve/src -name '*.rs' | sort) \
    crates/dpm-bench/src/runner.rs \
    crates/dpm-bench/src/campaign.rs \
    crates/dpm-bench/src/fleet.rs \
    crates/dpm-bench/src/topology.rs \
    crates/dpm-bench/src/telemetry_out.rs \
    crates/dpm-sim/src/sim.rs \
    crates/dpm-sim/src/fleet.rs \
    crates/dpm-sim/src/topo.rs \
    crates/dpm-workloads/src/faults.rs \
    crates/dpm-workloads/src/fleet.rs; do
    hits=$(awk '/^#\[cfg\(test\)\]/{exit} {print NR": "$0}' "$f" |
        grep -vE '^[0-9]+: *(//|//!|///)' |
        grep -E '\.unwrap\(\)|\.expect\(|panic!|(^|[^_a-z])assert(_eq|_ne)?!' |
        grep -v 'debug_assert' || true)
    if [ -n "$hits" ]; then
        echo "forbidden panicking construct in $f:" >&2
        echo "$hits" >&2
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "non-test code in dpm-core, dpm-telemetry, the runner, the campaign, the simulation engine, and the fault generator must return typed errors instead of panicking (DESIGN.md §7–8)." >&2
fi
exit $status
