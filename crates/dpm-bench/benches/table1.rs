//! Table 1 bench: the full proposed-vs-baselines comparison on both
//! scenarios. Criterion measures the cost of regenerating each governor's
//! row; the printed summary carries the reproduced metrics so `cargo
//! bench` output doubles as an experiment log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_baselines::StaticGovernor;
use dpm_bench::experiments;
use dpm_core::platform::Platform;
use dpm_core::runtime::DpmController;
use dpm_workloads::scenarios;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let platform = Platform::pama();
    let all = scenarios::all();

    // Print the reproduced table once, so bench logs carry the numbers.
    let rows = experiments::table1(&platform, &all, experiments::DEFAULT_PERIODS).unwrap();
    for row in &rows {
        println!(
            "[table1] {:<10} wasted {:>7.2}/{:>7.2} J  undersupplied {:>7.2}/{:>7.2} J",
            row.governor, row.wasted[0], row.wasted[1], row.undersupplied[0], row.undersupplied[1]
        );
    }

    let mut group = c.benchmark_group("table1");
    for scenario in &all {
        group.bench_with_input(
            BenchmarkId::new("proposed", &scenario.name),
            scenario,
            |b, s| {
                b.iter(|| {
                    let alloc = experiments::initial_allocation(&platform, s).unwrap();
                    let mut g =
                        DpmController::new(platform.clone(), &alloc, s.charging.clone()).unwrap();
                    black_box(experiments::run_governor(
                        &platform,
                        s,
                        &mut g,
                        experiments::DEFAULT_PERIODS,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("static", &scenario.name),
            scenario,
            |b, s| {
                b.iter(|| {
                    let mut g = StaticGovernor::full_power(&platform).unwrap();
                    black_box(experiments::run_governor(
                        &platform,
                        s,
                        &mut g,
                        experiments::DEFAULT_PERIODS,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Short measurement windows: these benches exist to track regressions and
/// print experiment logs, not to resolve microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_table1
}
criterion_main!(benches);
