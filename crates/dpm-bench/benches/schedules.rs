//! Figures 3/4 bench: schedule generation, scenario adapters, and the raw
//! simulator throughput (slots simulated per second) that bounds how many
//! mission-years a sweep can cover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_baselines::StaticGovernor;
use dpm_bench::experiments;
use dpm_core::platform::Platform;
use dpm_workloads::{random_scenario, scenarios, OrbitScenarioBuilder};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    for s in scenarios::all() {
        let f = experiments::figure(&s);
        println!(
            "[fig] {}: charging {:?}",
            f.scenario,
            f.charging
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
    c.bench_function("schedules/figure_extract", |b| {
        let s = scenarios::scenario_one();
        b.iter(|| black_box(experiments::figure(&s)))
    });
    c.bench_function("schedules/builder", |b| {
        b.iter(|| {
            black_box(
                OrbitScenarioBuilder::new("bench")
                    .slots(48)
                    .demand_peak(10, 1.0)
                    .demand_peak(30, 1.5)
                    .build(),
            )
        })
    });
    c.bench_function("schedules/random_scenario", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(random_scenario(seed))
        })
    });
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut group = c.benchmark_group("schedules/sim_throughput");
    for periods in [2usize, 8, 32] {
        group.throughput(Throughput::Elements((periods * 12) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(periods), &periods, |b, &p| {
            b.iter(|| {
                let mut g = StaticGovernor::full_power(&platform).unwrap();
                black_box(experiments::run_governor(&platform, &s, &mut g, p))
            })
        });
    }
    group.finish();
}

/// Short measurement windows: these benches exist to track regressions and
/// print experiment logs, not to resolve microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_figures, bench_simulator_throughput
}
criterion_main!(benches);
