//! Seeded fault-plan generation for reproducible robustness campaigns.
//!
//! A [`FaultPlan`] is a named, time-sorted list of [`Disturbance`]s — the
//! fault side of a campaign point, the same way a [`crate::Scenario`] is
//! the workload side. [`generate`] draws a plan from a seed and a
//! [`FaultPlanConfig`], so `(seed, config)` fully determines every fault a
//! campaign run sees: the same pair always produces byte-identical plans,
//! which is what lets `dpm-bench`'s campaign CSV stay identical across
//! `--jobs` settings.

use dpm_core::units::{seconds, Seconds};
use dpm_sim::sim::{Disturbance, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Absolute injection time.
    pub at: Seconds,
    /// What happens.
    pub disturbance: Disturbance,
}

/// A reproducible fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Identifier for reports (encodes the seed).
    pub name: String,
    /// Events sorted by injection time.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults — the control arm of a campaign.
    pub fn quiescent() -> Self {
        Self {
            name: "quiescent".into(),
            events: Vec::new(),
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Inject every event into `sim`'s disturbance queue.
    pub fn schedule(&self, sim: &mut Simulation) {
        for e in &self.events {
            sim.schedule(e.at, e.disturbance);
        }
    }
}

/// Knobs for [`generate`]: how many of each fault class to draw over the
/// horizon. Counts of zero switch a class off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Injection window: all events land in `[0, horizon)`.
    pub horizon: Seconds,
    /// Worker chips eligible for fail-stop faults (board indices
    /// `1..=workers`; index 0, the controller, is never faulted).
    pub workers: usize,
    /// Charging dropouts to draw.
    pub dropouts: usize,
    /// Longest single dropout.
    pub max_dropout: Seconds,
    /// Event bursts to draw.
    pub bursts: usize,
    /// Largest single burst (events).
    pub max_burst: usize,
    /// Fail-stop processor faults to draw; each is paired with a later
    /// recovery inside the horizon.
    pub processor_faults: usize,
    /// Battery capacity fades to draw (each derates the window to a
    /// factor in `[0.5, 0.95]`).
    pub battery_fades: usize,
    /// Battery-gauge glitches to draw (noise or stuck, evens/odds).
    pub sensor_glitches: usize,
    /// Power-element faults to draw, targeted at *provider* elements
    /// (rings, sensor bus — [`dpm_sim::topo::PROVIDER_ELEMENTS`]), the
    /// fault class that separates dependency-aware governance from flat
    /// shedding. No-ops for runs without an attached topology.
    /// Even-indexed draws are paired with a later recovery; odd-indexed
    /// faults are permanent for the rest of the run.
    pub element_faults: usize,
}

impl FaultPlanConfig {
    /// A representative mixed campaign over `horizon`: a couple of
    /// dropouts and bursts, one processor fault, one fade, one gauge
    /// glitch — enough to exercise every degradation path without
    /// swamping the workload.
    pub fn standard(horizon: Seconds) -> Self {
        Self {
            horizon,
            workers: 7,
            dropouts: 2,
            max_dropout: seconds(0.25 * horizon.value().max(0.0)),
            bursts: 2,
            max_burst: 40,
            processor_faults: 1,
            battery_fades: 1,
            sensor_glitches: 1,
            element_faults: 0,
        }
    }

    /// The topology campaign mix over `horizon`: the standard classes
    /// plus two provider-element faults (one transient, one permanent),
    /// for runs with a power topology attached
    /// (`dpm_sim::sim::Simulation::with_topology`).
    pub fn topology(horizon: Seconds) -> Self {
        Self {
            element_faults: 2,
            ..Self::standard(horizon)
        }
    }
}

/// Draw a fault plan from `(seed, config)`. Deterministic: the same pair
/// always yields the same plan. A non-positive horizon yields an empty
/// plan.
pub fn generate(seed: u64, config: &FaultPlanConfig) -> FaultPlan {
    let h = config.horizon.value();
    let name = format!("faults-{seed}");
    if !(h > 0.0) {
        return FaultPlan {
            name,
            events: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();

    for _ in 0..config.dropouts {
        let at = rng.gen_range(0.0..h);
        let max_d = config.max_dropout.value().max(1e-3);
        let duration = rng.gen_range(0.1 * max_d..max_d);
        events.push(FaultEvent {
            at: seconds(at),
            disturbance: Disturbance::ChargingDropout {
                duration: seconds(duration),
            },
        });
    }
    for _ in 0..config.bursts {
        let at = rng.gen_range(0.0..h);
        let count = rng.gen_range(1..=config.max_burst.max(1));
        events.push(FaultEvent {
            at: seconds(at),
            disturbance: Disturbance::EventBurst { count },
        });
    }
    for _ in 0..config.processor_faults.min(config.workers) {
        let index = rng.gen_range(1..=config.workers.max(1));
        let at = rng.gen_range(0.0..0.8 * h);
        // Recover strictly later but still inside the horizon, so the
        // run exercises both the degraded and the healed regime.
        let back = rng.gen_range(at + 0.05 * h..h);
        events.push(FaultEvent {
            at: seconds(at),
            disturbance: Disturbance::ProcessorFault { index },
        });
        events.push(FaultEvent {
            at: seconds(back),
            disturbance: Disturbance::ProcessorRecover { index },
        });
    }
    for _ in 0..config.battery_fades {
        let at = rng.gen_range(0.0..h);
        let factor = rng.gen_range(0.5..0.95);
        events.push(FaultEvent {
            at: seconds(at),
            disturbance: Disturbance::BatteryFade { factor },
        });
    }
    for i in 0..config.sensor_glitches {
        let at = rng.gen_range(0.0..h);
        let duration = seconds(rng.gen_range(0.05 * h..0.3 * h));
        let disturbance = if i % 2 == 0 {
            Disturbance::SensorNoise {
                amplitude: rng.gen_range(0.05..0.3),
                duration,
                seed: rng.gen_range(0..u64::MAX),
            }
        } else {
            Disturbance::SensorStuck { duration }
        };
        events.push(FaultEvent {
            at: seconds(at),
            disturbance,
        });
    }
    // Drawn last so switching the class on never perturbs the draws of
    // the classes above — `standard` plans stay byte-identical.
    for i in 0..config.element_faults {
        let targets = dpm_sim::topo::PROVIDER_ELEMENTS;
        let element = targets[rng.gen_range(0..targets.len())];
        let at = rng.gen_range(0.0..0.8 * h);
        events.push(FaultEvent {
            at: seconds(at),
            disturbance: Disturbance::ElementFault { element },
        });
        if i % 2 == 0 {
            let back = rng.gen_range(at + 0.05 * h..h);
            events.push(FaultEvent {
                at: seconds(back),
                disturbance: Disturbance::ElementRecover { element },
            });
        }
    }

    events.sort_by(|a, b| a.at.value().total_cmp(&b.at.value()));
    FaultPlan { name, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FaultPlanConfig {
        FaultPlanConfig::standard(seconds(115.2))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, &config());
        let b = generate(42, &config());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn seeds_produce_different_plans() {
        assert_ne!(generate(1, &config()).events, generate(2, &config()).events);
    }

    #[test]
    fn events_are_sorted_and_inside_the_horizon() {
        let plan = generate(7, &config());
        let mut prev = 0.0;
        for e in &plan.events {
            assert!(e.at.value() >= prev, "{plan:?}");
            assert!(e.at.value() < 115.2);
            prev = e.at.value();
        }
    }

    #[test]
    fn processor_faults_pair_with_later_recoveries() {
        let mut cfg = config();
        cfg.processor_faults = 3;
        let plan = generate(11, &cfg);
        let faults: Vec<_> = plan
            .events
            .iter()
            .filter_map(|e| match e.disturbance {
                Disturbance::ProcessorFault { index } => Some((e.at.value(), index)),
                _ => None,
            })
            .collect();
        assert_eq!(faults.len(), 3);
        for (at, index) in faults {
            assert!(index >= 1 && index <= cfg.workers, "controller spared");
            let recovered = plan.events.iter().any(|e| {
                matches!(e.disturbance, Disturbance::ProcessorRecover { index: i } if i == index)
                    && e.at.value() > at
            });
            assert!(recovered, "fault on {index} at {at} never recovers");
        }
    }

    #[test]
    fn topology_preset_targets_providers_and_extends_standard_plans() {
        use dpm_sim::topo::PROVIDER_ELEMENTS;
        let horizon = seconds(115.2);
        let standard = generate(42, &FaultPlanConfig::standard(horizon));
        let topo = generate(42, &FaultPlanConfig::topology(horizon));
        // The element class is drawn last: the standard prefix of the
        // plan is byte-identical, so existing campaigns are unperturbed.
        let mut non_element: Vec<_> = topo
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e.disturbance,
                    Disturbance::ElementFault { .. } | Disturbance::ElementRecover { .. }
                )
            })
            .copied()
            .collect();
        non_element.sort_by(|a, b| a.at.value().total_cmp(&b.at.value()));
        assert_eq!(non_element, standard.events);

        let faults: Vec<_> = topo
            .events
            .iter()
            .filter_map(|e| match e.disturbance {
                Disturbance::ElementFault { element } => Some((e.at.value(), element)),
                _ => None,
            })
            .collect();
        assert_eq!(faults.len(), 2);
        for (_, element) in &faults {
            assert!(PROVIDER_ELEMENTS.contains(element), "{element}");
        }
        // Exactly one of the two faults (the even-indexed draw) pairs
        // with a recovery, and that recovery follows a matching fault.
        let recoveries: Vec<_> = topo
            .events
            .iter()
            .filter_map(|e| match e.disturbance {
                Disturbance::ElementRecover { element } => Some((e.at.value(), element)),
                _ => None,
            })
            .collect();
        assert_eq!(recoveries.len(), 1);
        let (back, el) = recoveries[0];
        assert!(faults.iter().any(|&(at, e)| e == el && at < back));
    }

    #[test]
    fn zero_counts_and_horizon_give_empty_or_partial_plans() {
        let empty = generate(
            3,
            &FaultPlanConfig {
                dropouts: 0,
                bursts: 0,
                processor_faults: 0,
                battery_fades: 0,
                sensor_glitches: 0,
                ..config()
            },
        );
        assert!(empty.is_empty());
        assert!(generate(3, &FaultPlanConfig::standard(seconds(0.0))).is_empty());
        assert_eq!(FaultPlan::quiescent().len(), 0);
    }

    #[test]
    fn plans_schedule_into_a_simulation() {
        use dpm_core::platform::Platform;
        use dpm_sim::events::ScheduleGenerator;
        use dpm_sim::sim::SimConfig;
        use dpm_sim::source::TraceSource;
        let scenario = crate::scenario_one();
        let platform = Platform::pama();
        let mut sim = Simulation::new(
            platform.clone(),
            Box::new(TraceSource::new(scenario.charging.clone())),
            Box::new(ScheduleGenerator::new(scenario.event_rates(&platform))),
            scenario.initial_charge,
            SimConfig::default(),
        )
        .unwrap();
        generate(5, &config()).schedule(&mut sim);
        // The run completes with the injected plan in place.
        struct Off;
        impl dpm_core::governor::Governor for Off {
            fn name(&self) -> &str {
                "off"
            }
            fn decide(
                &mut self,
                _o: &dpm_core::governor::SlotObservation,
            ) -> Result<dpm_core::params::OperatingPoint, dpm_core::error::DpmError> {
                Ok(dpm_core::params::OperatingPoint::OFF)
            }
        }
        let report = sim.run(&mut Off).unwrap();
        assert!(report.duration > 0.0);
    }
}
