//! Streaming spectrogram — the "background science" the governor's
//! surplus energy buys.
//!
//! Between triggered transients, FORTE-style payloads monitor the band
//! continuously: overlapped, windowed frames through the real-input FFT,
//! each frame one short-time power spectrum. The frame rate is the knob
//! the power allocation actually turns — more allocated power ⇒ more
//! frames per second of monitoring (see [`Spectrogram::frames_within`]).

use crate::fixed::Q15;
use crate::rfft::RealFft;
use crate::window::{Window, WindowKind};

/// Overlapped short-time spectrum analyzer.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    fft: RealFft,
    window: Window,
    hop: usize,
}

impl Spectrogram {
    /// Frames of `frame_len` samples (power of two ≥ 8), advancing by
    /// `hop` samples (0 < hop ≤ frame_len; frame_len/2 gives the classic
    /// 50 % overlap).
    pub fn new(frame_len: usize, hop: usize, window: WindowKind) -> Self {
        assert!(hop >= 1 && hop <= frame_len, "0 < hop ≤ frame length");
        Self {
            fft: RealFft::new(frame_len),
            window: Window::new(window, frame_len),
            hop,
        }
    }

    /// Frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.fft.size()
    }

    /// Hop size in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Number of frames a stream of `samples` yields.
    pub fn frame_count(&self, samples: usize) -> usize {
        if samples < self.frame_len() {
            0
        } else {
            (samples - self.frame_len()) / self.hop + 1
        }
    }

    /// Process a real stream into per-frame one-sided power spectra
    /// (`frame_count` rows × `frame_len/2 + 1` bins).
    pub fn process(&self, stream: &[f64]) -> Vec<Vec<f64>> {
        let n = self.frame_len();
        let mut frames = Vec::with_capacity(self.frame_count(stream.len()));
        let mut start = 0usize;
        while start + n <= stream.len() {
            let mut buf: Vec<Q15> = stream[start..start + n]
                .iter()
                .map(|&x| Q15::from_f64(x))
                .collect();
            // Window in place (real part only).
            for (q, w) in buf.iter_mut().zip(self.window.coeffs()) {
                *q = q.sat_mul(*w);
            }
            frames.push(self.fft.power_spectrum_from(&buf));
            start += self.hop;
        }
        frames
    }

    /// Peak bin of each frame — the ridge a chirp traces.
    pub fn ridge(&self, stream: &[f64]) -> Vec<usize> {
        self.process(stream)
            .iter()
            .map(|frame| {
                frame
                    .iter()
                    .enumerate()
                    .skip(1) // ignore DC
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// How many frames a power budget sustains over `dt` seconds, given
    /// the per-frame energy of the platform's FFT job model (callers get
    /// the per-frame energy from `dpm-fft::timing` + the board power).
    pub fn frames_within(&self, budget_joules: f64, energy_per_frame: f64) -> usize {
        assert!(energy_per_frame > 0.0);
        (budget_joules / energy_per_frame).floor().max(0.0) as usize
    }
}

impl RealFft {
    /// Power spectrum of an already-quantized (and windowed) frame.
    pub fn power_spectrum_from(&self, input: &[Q15]) -> Vec<f64> {
        self.forward(input).iter().map(|c| c.mag_sq()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone_stream(len: usize, cycles_per_sample: f64) -> Vec<f64> {
        (0..len)
            .map(|i| 0.6 * (2.0 * std::f64::consts::PI * cycles_per_sample * i as f64).cos())
            .collect()
    }

    #[test]
    fn frame_count_formula() {
        let s = Spectrogram::new(256, 128, WindowKind::Hann);
        assert_eq!(s.frame_count(255), 0);
        assert_eq!(s.frame_count(256), 1);
        assert_eq!(s.frame_count(512), 3);
        assert_eq!(s.process(&tone_stream(512, 0.1)).len(), 3);
    }

    #[test]
    fn constant_tone_gives_constant_ridge() {
        let s = Spectrogram::new(256, 128, WindowKind::Hann);
        // 0.125 cycles/sample ⇒ bin 32 of 256.
        let ridge = s.ridge(&tone_stream(2048, 0.125));
        assert!(!ridge.is_empty());
        for &r in &ridge {
            assert!((r as i64 - 32).unsigned_abs() <= 1, "ridge at {r}");
        }
    }

    #[test]
    fn chirp_ridge_descends() {
        // Linear downward chirp from 0.4 to 0.05 cycles/sample.
        let len = 4096;
        let stream: Vec<f64> = (0..len)
            .map(|i| {
                let u = i as f64 / len as f64;
                let phase =
                    2.0 * std::f64::consts::PI * (0.4 * u - 0.5 * 0.35 * u * u) * len as f64;
                0.5 * phase.sin()
            })
            .collect();
        let s = Spectrogram::new(256, 256, WindowKind::Hann);
        let ridge = s.ridge(&stream);
        let first = ridge[1] as f64;
        let last = ridge[ridge.len() - 2] as f64;
        assert!(
            last < first - 10.0,
            "ridge did not descend: {first} -> {last} ({ridge:?})"
        );
    }

    #[test]
    fn frames_within_budget() {
        let s = Spectrogram::new(256, 128, WindowKind::Hann);
        // 1.5 J per frame, 10 J budget: 6 frames.
        assert_eq!(s.frames_within(10.0, 1.5), 6);
        assert_eq!(s.frames_within(0.5, 1.5), 0);
    }

    #[test]
    #[should_panic(expected = "hop")]
    fn rejects_zero_hop() {
        Spectrogram::new(256, 0, WindowKind::Hann);
    }
}
