//! Fixed-point radix-2 decimation-in-time FFT with per-stage scaling.
//!
//! The classic embedded formulation: bit-reverse permute, then `log₂N`
//! butterfly stages. Every stage halves its outputs (`>> 1`) *before* the
//! butterfly add/sub, so intermediate values cannot overflow Q15; the final
//! spectrum is therefore scaled by `1/N` relative to the textbook DFT —
//! the usual convention for block-floating DSP kernels, and what the
//! reference checks account for.
//!
//! A double-precision reference DFT lives alongside for accuracy tests and
//! for calibrating the cycle model in [`crate::timing`].

use crate::fixed::CQ15;
use crate::twiddle::{bit_reverse_permute, TwiddleTable};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `e^{−2πik/N}` kernel.
    Forward,
    /// `e^{+2πik/N}` kernel.
    Inverse,
}

/// A reusable FFT plan (twiddle tables + scratch-free in-place transform).
#[derive(Debug, Clone)]
pub struct FixedFft {
    twiddles: TwiddleTable,
}

impl FixedFft {
    /// Plan a transform of size `n` (power of two ≥ 2).
    pub fn new(n: usize) -> Self {
        Self {
            twiddles: TwiddleTable::new(n),
        }
    }

    /// Transform size.
    #[inline]
    pub fn size(&self) -> usize {
        self.twiddles.size()
    }

    /// In-place transform. Output is scaled by `1/N` (forward and inverse
    /// alike), so `inverse(forward(x)) = x / N²·N… = x` up to quantization
    /// — see [`Self::roundtrip_scale`].
    ///
    /// # Panics
    /// Panics when `data.len()` differs from the planned size.
    pub fn transform(&self, data: &mut [CQ15], dir: Direction) {
        let n = self.size();
        assert_eq!(data.len(), n, "buffer length must equal planned size");
        bit_reverse_permute(data);
        let mut half = 1usize; // butterfly half-span
        while half < n {
            let step = n / (2 * half); // twiddle stride
            for start in (0..n).step_by(2 * half) {
                for k in 0..half {
                    let w = match dir {
                        Direction::Forward => self.twiddles.forward(k * step),
                        Direction::Inverse => self.twiddles.inverse(k * step),
                    };
                    let i = start + k;
                    let j = i + half;
                    // Pre-scale both inputs to keep the add in range.
                    let a = data[i].shr(1);
                    let b = data[j].shr(1).sat_mul(w);
                    data[i] = a.sat_add(b);
                    data[j] = a.sat_sub(b);
                }
            }
            half *= 2;
        }
    }

    /// Combined scale factor of `forward` followed by `inverse`.
    ///
    /// Each pass divides by `N` (per-stage `>> 1` over `log₂N` stages) while
    /// the unscaled DFT/IDFT pair multiplies by `N`, so the round trip
    /// returns `x · N / N² = x / N`. Multiply recovered samples by
    /// `1 / roundtrip_scale()` (= `N`) to compare against the input.
    pub fn roundtrip_scale(&self) -> f64 {
        1.0 / self.size() as f64
    }

    /// Estimated butterfly count, `N/2·log₂N` — the work term of the cycle
    /// model.
    pub fn butterflies(&self) -> usize {
        let n = self.size();
        n / 2 * n.trailing_zeros() as usize
    }
}

/// Double-precision reference DFT (O(N²)), textbook scaling (no 1/N).
pub fn reference_dft(input: &[(f64, f64)], dir: Direction) -> Vec<(f64, f64)> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    (0..n)
        .map(|k| {
            let mut re = 0.0;
            let mut im = 0.0;
            for (j, &(xr, xi)) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                let (c, s) = (theta.cos(), theta.sin());
                re += xr * c - xi * s;
                im += xr * s + xi * c;
            }
            (re, im)
        })
        .collect()
}

/// Convert a float signal to Q15 samples (saturating).
pub fn quantize(signal: &[(f64, f64)]) -> Vec<CQ15> {
    signal
        .iter()
        .map(|&(re, im)| CQ15::from_f64(re, im))
        .collect()
}

/// Convert Q15 samples back to floats.
pub fn dequantize(data: &[CQ15]) -> Vec<(f64, f64)> {
    data.iter().map(|c| c.to_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, bin: usize, amp: f64) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n as f64;
                (amp * theta.cos(), 0.0)
            })
            .collect()
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 64;
        let fft = FixedFft::new(n);
        let mut data = vec![CQ15::ZERO; n];
        data[0] = CQ15::from_f64(0.9, 0.0);
        fft.transform(&mut data, Direction::Forward);
        // Flat spectrum at 0.9/N each.
        let expect = 0.9 / n as f64;
        for (i, c) in data.iter().enumerate() {
            let (re, im) = c.to_f64();
            assert!((re - expect).abs() < 3e-3, "bin {i}: {re}");
            assert!(im.abs() < 3e-3, "bin {i}: {im}");
        }
    }

    #[test]
    fn pure_tone_concentrates_in_its_bin() {
        let n = 256;
        let bin = 19;
        let fft = FixedFft::new(n);
        let mut data = quantize(&tone(n, bin, 0.8));
        fft.transform(&mut data, Direction::Forward);
        let mags: Vec<f64> = data.iter().map(|c| c.mag_sq()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // Real tone: peaks at ±bin.
        assert!(peak == bin || peak == n - bin, "peak at {peak}");
        // Energy outside the two tone bins is small.
        let leak: f64 = mags
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bin && *i != n - bin)
            .map(|(_, m)| m)
            .sum();
        assert!(leak < 0.1 * (mags[bin] + mags[n - bin]), "leak {leak}");
    }

    #[test]
    fn matches_reference_dft_within_quantization() {
        let n = 128;
        let signal: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let x = i as f64;
                (
                    0.3 * (x * 0.17).sin() + 0.2 * (x * 0.05).cos(),
                    0.1 * (x * 0.4).sin(),
                )
            })
            .collect();
        let fft = FixedFft::new(n);
        let mut data = quantize(&signal);
        fft.transform(&mut data, Direction::Forward);
        let reference = reference_dft(&signal, Direction::Forward);
        for (got, want) in data.iter().zip(&reference) {
            let (gr, gi) = got.to_f64();
            // Fixed-point output carries the 1/N scale.
            let (wr, wi) = (want.0 / n as f64, want.1 / n as f64);
            assert!((gr - wr).abs() < 5e-3, "{gr} vs {wr}");
            assert!((gi - wi).abs() < 5e-3, "{gi} vs {wi}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip_recovers_signal() {
        let n = 64;
        let signal: Vec<(f64, f64)> = (0..n)
            .map(|i| (0.4 * ((i as f64) * 0.3).sin(), 0.0))
            .collect();
        let fft = FixedFft::new(n);
        let mut data = quantize(&signal);
        fft.transform(&mut data, Direction::Forward);
        fft.transform(&mut data, Direction::Inverse);
        // Round trip divides by N twice but the DFT pair multiplies by N:
        // net scale 1/N relative to the original. Compare rescaled.
        for (c, &(wr, _)) in data.iter().zip(&signal) {
            let (re, _) = c.to_f64();
            let recovered = re * n as f64;
            assert!(
                (recovered - wr).abs() < 0.12,
                "recovered {recovered} vs {wr}"
            );
        }
    }

    #[test]
    fn parseval_energy_is_conserved_modulo_scaling() {
        let n = 128;
        let signal = tone(n, 7, 0.5);
        let fft = FixedFft::new(n);
        let mut data = quantize(&signal);
        let time_energy: f64 = data.iter().map(|c| c.mag_sq()).sum();
        fft.transform(&mut data, Direction::Forward);
        let freq_energy: f64 = data.iter().map(|c| c.mag_sq()).sum();
        // Parseval with 1/N scaling: Σ|X|² = Σ|x|²/N.
        let expect = time_energy / n as f64;
        assert!(
            (freq_energy - expect).abs() < 0.1 * expect.max(1e-6),
            "{freq_energy} vs {expect}"
        );
    }

    #[test]
    fn full_scale_input_does_not_wrap() {
        let n = 32;
        let fft = FixedFft::new(n);
        // Worst case: all samples at MAX. Per-stage scaling must keep every
        // intermediate finite (saturation allowed, wraparound not).
        let mut data = vec![CQ15::from_f64(0.999, 0.999); n];
        fft.transform(&mut data, Direction::Forward);
        // DC bin should hold roughly mean value (≈ 0.999), others ≈ 0.
        let (dc, _) = data[0].to_f64();
        assert!(dc > 0.9, "dc = {dc}");
        for c in &data[1..] {
            assert!(c.mag_sq() < 1e-2);
        }
    }

    #[test]
    fn butterfly_count_formula() {
        assert_eq!(FixedFft::new(2048).butterflies(), 1024 * 11);
        assert_eq!(FixedFft::new(8).butterflies(), 4 * 3);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn rejects_wrong_buffer_size() {
        let fft = FixedFft::new(16);
        let mut data = vec![CQ15::ZERO; 8];
        fft.transform(&mut data, Direction::Forward);
    }
}
