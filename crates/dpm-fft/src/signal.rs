//! Synthetic RF capture generation — the stand-in for FORTE's recorded
//! transients (see DESIGN.md §4: the paper only exercises the FFT kernel,
//! so any capture of the right length drives the identical code path).
//!
//! FORTE looked for broadband VHF transients (lightning EMPs and
//! trans-ionospheric pulse pairs) against a background of narrowband
//! carriers and receiver noise. The generator composes those ingredients:
//! white noise, fixed carriers, and chirped broadband pulses whose
//! frequency sweeps downward as ionospheric dispersion would.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a synthetic capture contains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureSpec {
    /// Samples per capture (the paper's 2K FFT ⇒ 2048).
    pub samples: usize,
    /// RMS amplitude of the white-noise floor (0–1 full scale).
    pub noise_rms: f64,
    /// Amplitude of each narrowband interferer.
    pub carrier_amp: f64,
    /// Normalized carrier frequencies (cycles/sample, 0–0.5).
    pub carriers: [f64; 2],
    /// Peak amplitude of the transient; 0 disables it.
    pub transient_amp: f64,
    /// Chirp start frequency (cycles/sample).
    pub chirp_start: f64,
    /// Chirp end frequency (cycles/sample), `< chirp_start` (downward
    /// dispersion sweep).
    pub chirp_end: f64,
}

impl CaptureSpec {
    /// The default 2048-sample FORTE-like capture with a transient present.
    pub fn with_transient() -> Self {
        Self {
            samples: 2048,
            noise_rms: 0.02,
            carrier_amp: 0.08,
            carriers: [0.11, 0.23],
            transient_amp: 0.35,
            chirp_start: 0.42,
            chirp_end: 0.05,
        }
    }

    /// Same background, no transient.
    pub fn background_only() -> Self {
        Self {
            transient_amp: 0.0,
            ..Self::with_transient()
        }
    }
}

/// Generate a capture as real samples in `[−1, 1]` (imaginary part zero —
/// FORTE digitized a real IF signal).
pub fn generate(spec: &CaptureSpec, seed: u64) -> Vec<(f64, f64)> {
    assert!(spec.samples >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spec.samples;
    let mut out = Vec::with_capacity(n);
    // Transient occupies the middle half of the capture.
    let (t0, t1) = (n / 4, 3 * n / 4);
    for i in 0..n {
        let x = i as f64;
        // Noise: uniform approximates white noise well enough here and
        // avoids a Box-Muller dependency.
        let mut s = rng.gen_range(-1.0..1.0) * spec.noise_rms * 1.732;
        for &fc in &spec.carriers {
            s += spec.carrier_amp * (2.0 * std::f64::consts::PI * fc * x).sin();
        }
        if spec.transient_amp > 0.0 && i >= t0 && i < t1 {
            let u = (i - t0) as f64 / (t1 - t0) as f64; // 0..1 within pulse
            let f_inst = spec.chirp_start + (spec.chirp_end - spec.chirp_start) * u;
            // Phase = integral of instantaneous frequency.
            let phase = 2.0
                * std::f64::consts::PI
                * ((spec.chirp_start * u + 0.5 * (spec.chirp_end - spec.chirp_start) * u * u)
                    * (t1 - t0) as f64);
            // Raised-cosine envelope.
            let env = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * u).cos();
            let _ = f_inst;
            s += spec.transient_amp * env * phase.sin();
        }
        out.push((s.clamp(-1.0, 1.0), 0.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_has_requested_length() {
        let c = generate(&CaptureSpec::with_transient(), 1);
        assert_eq!(c.len(), 2048);
    }

    #[test]
    fn samples_stay_in_range() {
        let c = generate(&CaptureSpec::with_transient(), 2);
        for &(re, im) in &c {
            assert!((-1.0..=1.0).contains(&re));
            assert_eq!(im, 0.0);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(&CaptureSpec::with_transient(), 42);
        let b = generate(&CaptureSpec::with_transient(), 42);
        assert_eq!(a, b);
        let c = generate(&CaptureSpec::with_transient(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn transient_adds_energy() {
        let bg = generate(&CaptureSpec::background_only(), 7);
        let tr = generate(&CaptureSpec::with_transient(), 7);
        let e = |v: &[(f64, f64)]| v.iter().map(|&(r, _)| r * r).sum::<f64>();
        assert!(e(&tr) > 1.5 * e(&bg), "{} vs {}", e(&tr), e(&bg));
    }

    #[test]
    fn transient_is_confined_to_middle() {
        let spec = CaptureSpec {
            noise_rms: 0.0,
            carrier_amp: 0.0,
            ..CaptureSpec::with_transient()
        };
        let c = generate(&spec, 3);
        let head: f64 = c[..512].iter().map(|&(r, _)| r.abs()).sum();
        let mid: f64 = c[512..1536].iter().map(|&(r, _)| r.abs()).sum();
        assert_eq!(head, 0.0);
        assert!(mid > 1.0);
    }
}
