//! Long-horizon stability: the controller must not drift over many
//! periods — the rolling plan, battery trajectory, and waste rate should
//! be as good in orbit 50 as in orbit 2.

use dpm_bench::experiments;
use dpm_core::platform::Platform;
use dpm_core::prelude::*;
use dpm_sim::prelude::*;
use dpm_workloads::scenarios;

fn soak(periods: usize, noise: Option<u64>) -> SimReport {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let allocation = experiments::initial_allocation(&platform, &s).unwrap();
    let mut governor =
        DpmController::new(platform.clone(), &allocation, s.charging.clone()).unwrap();
    let source: Box<dyn ChargingSource> = match noise {
        Some(seed) => Box::new(NoisySource::new(
            TraceSource::new(s.charging.clone()),
            0.15,
            platform.tau,
            seed,
        )),
        None => Box::new(TraceSource::new(s.charging.clone())),
    };
    Simulation::new(
        platform,
        source,
        Box::new(ScheduleGenerator::new(
            s.event_rates(&Platform::pama()).scale(0.9),
        )),
        s.initial_charge,
        SimConfig {
            periods,
            slots_per_period: 12,
            substeps: 8,
            trace: true,
        },
    )
    .unwrap()
    .run(&mut governor)
    .unwrap()
}

#[test]
fn fifty_periods_no_drift_in_waste_rate() {
    let report = soak(50, None);
    assert_eq!(report.undersupplied, 0.0, "{}", report.summary());
    // Waste per period in the second half must not exceed the first half
    // by more than a small factor (no accumulating drift).
    let half = report.slots.len() / 2;
    let waste_proxy = |slots: &[SlotRecord]| -> f64 {
        // Battery pinned at C_max while supplied > used is where waste
        // occurs; use supplied − used as the proxy integrated per half.
        slots.iter().map(|s| (s.supplied - s.used).max(0.0)).sum()
    };
    let first = waste_proxy(&report.slots[..half]);
    let second = waste_proxy(&report.slots[half..]);
    assert!(
        second < first * 1.5 + 5.0,
        "drift: first-half surplus {first:.1} J, second-half {second:.1} J"
    );
}

#[test]
fn fifty_periods_battery_stays_in_window() {
    let report = soak(50, None);
    let limits = Platform::pama().battery;
    for slot in &report.slots {
        assert!(
            slot.battery >= limits.c_min.value() - 1e-6
                && slot.battery <= limits.c_max.value() + 1e-6,
            "slot {}: battery {}",
            slot.slot,
            slot.battery
        );
    }
}

#[test]
fn noisy_soak_keeps_margins() {
    let report = soak(30, Some(13));
    assert!(
        report.wasted < 0.12 * report.offered,
        "{}",
        report.summary()
    );
    assert!(
        report.undersupplied < 0.05 * report.offered,
        "{}",
        report.summary()
    );
    // Throughput stays healthy: most generated events processed.
    assert_eq!(report.dropped, 0);
}

#[test]
fn steady_state_is_periodic() {
    // After transients settle, the same slot in consecutive periods should
    // command similar power (the plan re-converges to the base allocation).
    let report = soak(10, None);
    let slots = &report.slots;
    for k in 0..12 {
        let a = slots[5 * 12 + k].used;
        let b = slots[8 * 12 + k].used;
        assert!(
            (a - b).abs() < 2.0,
            "slot {k}: period 5 used {a:.2} J vs period 8 used {b:.2} J"
        );
    }
}
