//! The metrics plane: Prometheus-style text exposition over the
//! server's counters and every live session's [`dpm_trace::Rollup`].
//!
//! Everything here is deterministic in sim-time: counter values come
//! from the deterministic recorders and quantiles from the rollup's
//! sim-time histograms, so a `--stdio` run scraping after the same
//! request sequence produces a byte-identical snapshot. Sessions are
//! rendered in name order for the same reason.
//!
//! The grammar [`validate`]d here is the subset of the Prometheus text
//! format this server emits: `# TYPE name kind` declarations followed
//! by `name{label="value",...} value` samples, newline-terminated, with
//! every sample's metric declared before first use.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Quantiles the per-session distribution metrics expose.
pub const QUANTILES: [(&str, f64); 3] = [("0.1", 0.1), ("0.5", 0.5), ("0.9", 0.9)];

/// One session's contribution to the snapshot (built by
/// `Session::metrics`, rendered here).
#[derive(Debug, Clone, Default)]
pub struct SessionMetrics {
    /// Session name (becomes the `session` label, escaped).
    pub name: String,
    /// Next slot to run.
    pub slot: u64,
    /// Horizon in slots.
    pub total_slots: u64,
    /// `Advance` requests served.
    pub advances: u64,
    /// Slots actually stepped.
    pub slots_stepped: u64,
    /// Violations the online auditor flagged.
    pub violations: u64,
    /// `SetRates` updates applied.
    pub rate_updates: u64,
    /// Disturbances queued.
    pub disturbances: u64,
    /// Controller replans (`core.replan` events) so far.
    pub replans: u64,
    /// Populated rollup windows.
    pub windows: u64,
    /// Battery level at the most recent slot (absent before slot 1).
    pub battery_j: Option<f64>,
    /// Battery slack (level − C_min) quantiles over the latest window,
    /// as `(quantile label, joules)`.
    pub battery_slack_j: Vec<(&'static str, f64)>,
    /// Replan latency quantiles — slots a correction needs to be
    /// absorbed (`core.replan.horizon_slots`) — over the whole run.
    pub replan_horizon_slots: Vec<(&'static str, f64)>,
}

/// The whole snapshot: server-wide counters plus per-session rows.
#[derive(Debug, Clone, Default)]
pub struct ServerMetrics {
    /// Requests handled (all verbs).
    pub requests: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions closed cleanly.
    pub sessions_closed: u64,
    /// Sessions killed by the online auditor.
    pub sessions_killed: u64,
    /// Sessions open right now.
    pub sessions_open: u64,
    /// Per-session rows, **sorted by name** (render preserves order).
    pub sessions: Vec<SessionMetrics>,
}

/// Getter for a per-session integer sample (counter or gauge).
type SessionField = fn(&SessionMetrics) -> u64;
/// Getter for a per-session quantile series.
type SessionQuantiles = fn(&SessionMetrics) -> &[(&'static str, f64)];

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render the snapshot as text exposition. Output always passes
/// [`validate`].
pub fn render(m: &ServerMetrics) -> String {
    let mut out = String::new();
    let server_counters = [
        ("dpm_serve_requests_total", m.requests),
        ("dpm_serve_sessions_opened_total", m.sessions_opened),
        ("dpm_serve_sessions_closed_total", m.sessions_closed),
        ("dpm_serve_sessions_killed_total", m.sessions_killed),
    ];
    for (name, value) in server_counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    let _ = writeln!(
        out,
        "# TYPE dpm_serve_sessions_open gauge\ndpm_serve_sessions_open {}",
        m.sessions_open
    );
    if m.sessions.is_empty() {
        return out;
    }

    let session_counters: [(&str, SessionField); 6] = [
        ("dpm_session_advances_total", |s| s.advances),
        ("dpm_session_slots_stepped_total", |s| s.slots_stepped),
        ("dpm_session_audit_violations_total", |s| s.violations),
        ("dpm_session_rate_updates_total", |s| s.rate_updates),
        ("dpm_session_disturbances_total", |s| s.disturbances),
        ("dpm_session_replans_total", |s| s.replans),
    ];
    for (name, get) in session_counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        for s in &m.sessions {
            let _ = writeln!(
                out,
                "{name}{{session=\"{}\"}} {}",
                escape_label(&s.name),
                get(s)
            );
        }
    }
    let session_gauges: [(&str, SessionField); 3] = [
        ("dpm_session_slot", |s| s.slot),
        ("dpm_session_total_slots", |s| s.total_slots),
        ("dpm_session_rollup_windows", |s| s.windows),
    ];
    for (name, get) in session_gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for s in &m.sessions {
            let _ = writeln!(
                out,
                "{name}{{session=\"{}\"}} {}",
                escape_label(&s.name),
                get(s)
            );
        }
    }
    if m.sessions.iter().any(|s| s.battery_j.is_some()) {
        let _ = writeln!(out, "# TYPE dpm_session_battery_joules gauge");
        for s in &m.sessions {
            if let Some(battery) = s.battery_j {
                let _ = writeln!(
                    out,
                    "dpm_session_battery_joules{{session=\"{}\"}} {battery}",
                    escape_label(&s.name)
                );
            }
        }
    }
    let quantile_metrics: [(&str, SessionQuantiles); 2] = [
        ("dpm_session_battery_slack_joules", |s| &s.battery_slack_j),
        ("dpm_session_replan_horizon_slots", |s| {
            &s.replan_horizon_slots
        }),
    ];
    for (name, get) in quantile_metrics {
        if m.sessions.iter().all(|s| get(s).is_empty()) {
            continue;
        }
        let _ = writeln!(out, "# TYPE {name} gauge");
        for s in &m.sessions {
            for (q, value) in get(s) {
                let _ = writeln!(
                    out,
                    "{name}{{session=\"{}\",quantile=\"{q}\"}} {value}",
                    escape_label(&s.name)
                );
            }
        }
    }
    out
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split `rest` (after the opening `{`) into the label body and the
/// remainder after the matching `}`, honoring quoted values and
/// backslash escapes.
fn split_label_set(rest: &str) -> Result<(&str, &str), String> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Ok((&rest[..i], &rest[i + 1..])),
            _ => {}
        }
    }
    Err("unterminated label set".to_string())
}

/// Split a label body on the commas between `name="value"` pairs.
fn split_label_pairs(body: &str) -> Result<Vec<&str>, String> {
    let mut pairs = Vec::new();
    let mut start = 0usize;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_quotes {
        return Err("unterminated quoted label value".to_string());
    }
    if start < body.len() {
        pairs.push(&body[start..]);
    }
    Ok(pairs)
}

fn unescape_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs in order of appearance (values unescaped).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| format!("no value separator in {line:?}"))?;
    let name = &line[..name_end];
    if !is_metric_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let rest = &line[name_end..];
    let (labels, value_part) = match rest.strip_prefix('{') {
        Some(after_brace) => {
            let (body, after) = split_label_set(after_brace)?;
            let mut labels = Vec::new();
            for pair in split_label_pairs(body)? {
                let (label, quoted) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("label pair without '=': {pair:?}"))?;
                if !is_label_name(label) {
                    return Err(format!("bad label name {label:?}"));
                }
                let value = quoted
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value in {pair:?}"))?;
                labels.push((label.to_string(), unescape_label(value)));
            }
            (labels, after)
        }
        None => (Vec::new(), rest),
    };
    let value_str = value_part
        .strip_prefix(' ')
        .ok_or_else(|| format!("missing space before value in {line:?}"))?;
    let value: f64 = value_str
        .parse()
        .map_err(|_| format!("unparseable sample value {value_str:?}"))?;
    if !value.is_finite() {
        return Err(format!("non-finite sample value {value_str:?}"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Validate a text exposition against the grammar this server emits.
///
/// # Errors
/// A rendered `line N: ...` message naming the first offense: blank
/// lines, malformed `# TYPE` declarations, unparseable samples,
/// non-finite values, or a sample whose metric was never declared.
pub fn validate(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let mut declared: BTreeSet<&str> = BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            return Err(format!("line {n}: blank line"));
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split(' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some(kind), None)
                    if is_metric_name(name)
                        && matches!(kind, "counter" | "gauge" | "histogram" | "summary") =>
                {
                    declared.insert(name);
                }
                _ => return Err(format!("line {n}: malformed TYPE declaration: {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP lines and comments are free-form.
        }
        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        if !declared.contains(sample.name.as_str()) {
            return Err(format!(
                "line {n}: sample for undeclared metric {:?}",
                sample.name
            ));
        }
    }
    Ok(())
}

/// Look up the value of `metric` whose labels include every pair in
/// `labels` (subset match). `None` when no sample matches.
pub fn sample(text: &str, metric: &str, labels: &[(&str, &str)]) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| parse_sample(l).ok())
        .find(|s| {
            s.name == metric
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> ServerMetrics {
        ServerMetrics {
            requests: 9,
            sessions_opened: 2,
            sessions_closed: 1,
            sessions_killed: 0,
            sessions_open: 1,
            sessions: vec![SessionMetrics {
                name: "s0".into(),
                slot: 12,
                total_slots: 24,
                advances: 3,
                slots_stepped: 12,
                violations: 0,
                rate_updates: 1,
                disturbances: 0,
                replans: 7,
                windows: 1,
                battery_j: Some(6.5),
                battery_slack_j: vec![("0.1", 1.5), ("0.5", 3.0), ("0.9", 4.25)],
                replan_horizon_slots: vec![("0.1", 2.0), ("0.5", 4.0), ("0.9", 9.0)],
            }],
        }
    }

    #[test]
    fn rendered_snapshots_pass_their_own_validator() {
        let text = render(&snapshot());
        validate(&text).expect("self-validates");
        assert_eq!(sample(&text, "dpm_serve_requests_total", &[]), Some(9.0));
        assert_eq!(
            sample(
                &text,
                "dpm_session_slots_stepped_total",
                &[("session", "s0")]
            ),
            Some(12.0)
        );
        assert_eq!(
            sample(
                &text,
                "dpm_session_battery_slack_joules",
                &[("session", "s0"), ("quantile", "0.5")]
            ),
            Some(3.0)
        );
        assert_eq!(
            sample(
                &text,
                "dpm_session_replan_horizon_slots",
                &[("quantile", "0.9")]
            ),
            Some(9.0)
        );
        assert_eq!(sample(&text, "no_such_metric", &[]), None);
    }

    #[test]
    fn an_empty_server_renders_only_server_rows() {
        let text = render(&ServerMetrics::default());
        validate(&text).expect("self-validates");
        assert_eq!(sample(&text, "dpm_serve_sessions_open", &[]), Some(0.0));
        assert!(!text.contains("dpm_session_"));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render(&snapshot()), render(&snapshot()));
    }

    #[test]
    fn hostile_session_names_are_escaped_and_round_trip() {
        let mut m = snapshot();
        m.sessions[0].name = "s\"0\\\nx".into();
        let text = render(&m);
        validate(&text).expect("escaped names still validate");
        assert_eq!(
            sample(&text, "dpm_session_slot", &[("session", "s\"0\\\nx")]),
            Some(12.0)
        );
    }

    #[test]
    fn the_validator_rejects_bad_grammar() {
        for (text, why) in [
            ("", "empty"),
            ("dpm_x 1\n", "undeclared metric"),
            ("# TYPE dpm_x counter\ndpm_x 1", "missing trailing newline"),
            ("# TYPE dpm_x counter\n\ndpm_x 1\n", "blank line"),
            ("# TYPE dpm_x widget\ndpm_x 1\n", "bad kind"),
            ("# TYPE dpm_x counter\ndpm_x one\n", "bad value"),
            ("# TYPE dpm_x counter\ndpm_x NaN\n", "non-finite"),
            (
                "# TYPE dpm_x counter\ndpm_x{a=\"b} 1\n",
                "unterminated label",
            ),
            (
                "# TYPE dpm_x counter\ndpm_x{1a=\"b\"} 1\n",
                "bad label name",
            ),
            ("# TYPE dpm_x counter\ndpm_x{a=b} 1\n", "unquoted value"),
            ("# TYPE 9x counter\n9x 1\n", "bad metric name"),
        ] {
            assert!(validate(text).is_err(), "accepted {why}: {text:?}");
        }
        validate("# TYPE dpm_x counter\n# HELP dpm_x free text\ndpm_x 1\n")
            .expect("HELP lines are comments");
    }

    #[test]
    fn samples_parse_labels_in_order() {
        let s = parse_sample("m{a=\"1\",b=\"two, three\"} 4.5").expect("parses");
        assert_eq!(s.name, "m");
        assert_eq!(
            s.labels,
            vec![("a".into(), "1".into()), ("b".into(), "two, three".into())]
        );
        assert!((s.value - 4.5).abs() < 1e-12);
    }
}
