//! The adaptive governor: §2's empirical-schedule idea closed into a loop.
//!
//! The plain [`DpmController`] plans against a fixed charging forecast;
//! Algorithm 3 absorbs *transient* deviations but a systematically wrong
//! forecast (a degraded panel, a mis-modelled orbit) costs margin every
//! period. [`AdaptiveDpmController`] learns the charging schedule online
//! with a [`ScheduleEstimator`] and **re-runs §4.1 + rebuilds the inner
//! controller at every period boundary** from the refreshed estimate —
//! the paper's "recorded charging power for the previous period" made
//! operational.

use super::controller::DpmController;
use crate::alloc::{AllocationProblem, InitialAllocator};
use crate::error::DpmError;
use crate::forecast::{ForecastMethod, ScheduleEstimator};
use crate::governor::{Governor, SlotObservation};
use crate::params::{OperatingPoint, ParetoTable};
use crate::platform::Platform;
use crate::series::PowerSeries;
use crate::units::watts;
use std::sync::Arc;

/// Self-calibrating wrapper around the proposed controller.
#[derive(Debug, Clone)]
pub struct AdaptiveDpmController {
    platform: Arc<Platform>,
    /// Frontier shared with every rebuilt inner controller — the platform
    /// does not change across period-boundary replans, so the table is
    /// rated exactly once.
    pareto: Arc<ParetoTable>,
    /// Desired (weighted) demand shape; fixed — only the supply is learned.
    demand: PowerSeries,
    estimator: ScheduleEstimator,
    inner: DpmController,
    slots_per_period: usize,
    replans: u64,
}

impl AdaptiveDpmController {
    /// Build from a prior charging forecast and a demand shape.
    ///
    /// # Errors
    /// Propagates [`Platform::validate`], schedule-alignment errors, and
    /// any failure of the initial §4.1 allocation (infeasible or
    /// non-convergent problems surface here, before the first slot runs).
    pub fn new(
        platform: impl Into<Arc<Platform>>,
        prior_charging: PowerSeries,
        demand: PowerSeries,
        method: ForecastMethod,
        initial_charge: crate::units::Joules,
    ) -> Result<Self, DpmError> {
        let platform = platform.into();
        let pareto = Arc::new(ParetoTable::build(&platform)?);
        prior_charging.check_aligned(&demand)?;
        let estimator = ScheduleEstimator::new(prior_charging.clone(), method)?;
        let inner =
            Self::build_inner(&platform, &pareto, &prior_charging, &demand, initial_charge)?;
        Ok(Self {
            platform,
            pareto,
            demand,
            estimator,
            inner,
            slots_per_period: prior_charging.len(),
            replans: 0,
        })
    }

    fn build_inner(
        platform: &Arc<Platform>,
        pareto: &Arc<ParetoTable>,
        charging: &PowerSeries,
        demand: &PowerSeries,
        battery: crate::units::Joules,
    ) -> Result<DpmController, DpmError> {
        let problem = AllocationProblem {
            charging: charging.clone(),
            demand: demand.clone(),
            initial_charge: battery,
            limits: platform.battery,
            p_floor: platform.power.all_standby(),
            p_ceiling: platform.board_power(platform.workers(), platform.f_max()),
        };
        // The replan only flies on the accepted allocation — skip the
        // per-round history (`compute_lean` is bit-identical).
        let allocation = InitialAllocator::new(problem)?.compute_lean()?;
        DpmController::with_table(
            Arc::clone(platform),
            &allocation,
            charging.clone(),
            Arc::clone(pareto),
        )
    }

    /// The current schedule estimate.
    pub fn estimate(&self) -> &PowerSeries {
        self.estimator.estimate()
    }

    /// Number of period-boundary re-plans performed.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// The wrapped controller (for trace inspection).
    pub fn inner(&self) -> &DpmController {
        &self.inner
    }
}

impl Governor for AdaptiveDpmController {
    fn name(&self) -> &str {
        "adaptive-dpm"
    }

    fn uses_surplus_energy(&self) -> bool {
        true
    }

    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        let s = self.slots_per_period;
        // Fold last slot's supply observation into the estimator.
        if obs.slot > 0 {
            let prev_slot = ((obs.slot - 1) as usize) % s;
            let mean_power = watts(obs.supplied_last.value() / self.platform.tau.value());
            self.estimator
                .observe(prev_slot, mean_power.value().max(0.0));
        }
        // Re-plan from the refreshed estimate at each period boundary
        // (after at least one full period of observations).
        if obs.slot > 0 && (obs.slot as usize).is_multiple_of(s) {
            // A refreshed estimate can make the §4.1 problem infeasible (a
            // collapsed supply, say); keep flying on the previous plan
            // rather than failing the slot — Algorithm 3 still adapts it.
            if let Ok(inner) = Self::build_inner(
                &self.platform,
                &self.pareto,
                &self.estimator.estimate().clone(),
                &self.demand,
                obs.battery,
            ) {
                self.inner = inner;
                self.replans += 1;
            }
        }
        self.inner.decide(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{joules, seconds, Joules, Seconds};

    fn platform() -> Platform {
        Platform::pama()
    }

    fn demand() -> PowerSeries {
        PowerSeries::new(
            seconds(4.8),
            vec![1.6, 1.0, 0.3, 0.3, 1.0, 1.7, 1.6, 1.0, 0.3, 0.3, 1.0, 1.7],
        )
        .unwrap()
    }

    fn true_charging() -> PowerSeries {
        PowerSeries::new(
            seconds(4.8),
            vec![
                2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap()
    }

    /// Drive the governor by hand, replaying the true supply.
    fn drive(gov: &mut AdaptiveDpmController, periods: usize) {
        let truth = true_charging();
        let tau = 4.8;
        for slot in 0..(periods * 12) as u64 {
            let supplied_last = if slot == 0 {
                Joules::ZERO
            } else {
                joules(truth.get(((slot - 1) as usize) % 12) * tau)
            };
            let obs = SlotObservation {
                slot,
                time: Seconds(slot as f64 * tau),
                battery: joules(8.0),
                used_last: joules(4.0),
                supplied_last,
                backlog: 1,
            };
            gov.decide(&obs).unwrap();
        }
    }

    #[test]
    fn estimator_converges_to_the_true_schedule() {
        let wrong_prior = PowerSeries::constant(seconds(4.8), 12, 1.18).unwrap();
        let mut gov = AdaptiveDpmController::new(
            platform(),
            wrong_prior,
            demand(),
            ForecastMethod::ExponentialSmoothing { alpha: 0.6 },
            joules(8.0),
        )
        .unwrap();
        drive(&mut gov, 6);
        let rmse = {
            let est = gov.estimate();
            let truth = true_charging();
            let sq: f64 = est
                .values()
                .iter()
                .zip(truth.values())
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            (sq / 12.0).sqrt()
        };
        assert!(rmse < 0.05, "rmse {rmse}");
        assert_eq!(gov.replans(), 5);
    }

    #[test]
    fn replans_happen_exactly_at_period_boundaries() {
        let mut gov = AdaptiveDpmController::new(
            platform(),
            true_charging(),
            demand(),
            ForecastMethod::LastPeriod,
            joules(8.0),
        )
        .unwrap();
        drive(&mut gov, 3);
        assert_eq!(gov.replans(), 2);
    }

    #[test]
    fn exact_prior_keeps_behaving_like_the_plain_controller() {
        // With a correct prior and exact observations, adaptation must not
        // destabilize anything: the commanded points stay budget-shaped.
        let mut gov = AdaptiveDpmController::new(
            platform(),
            true_charging(),
            demand(),
            ForecastMethod::ExponentialSmoothing { alpha: 0.3 },
            joules(8.0),
        )
        .unwrap();
        drive(&mut gov, 4);
        let trace = gov.inner().trace();
        assert!(!trace.is_empty());
        for rec in trace {
            assert!(rec.selected_power.value() <= 4.4);
        }
    }
}
