//! Parameterized scenario generators beyond the paper's two fixed cases —
//! used by the sweep benches (crossover studies) and the examples.

use crate::Scenario;
use dpm_core::error::DpmError;
use dpm_core::series::PowerSeries;
use dpm_core::units::{joules, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builder for orbit-style scenarios.
#[derive(Debug, Clone)]
pub struct OrbitScenarioBuilder {
    slots: usize,
    tau: Seconds,
    panel_power: f64,
    sunlit_fraction: f64,
    demand_base: f64,
    demand_peaks: Vec<(usize, f64)>,
    initial_charge: f64,
    name: String,
}

impl OrbitScenarioBuilder {
    /// Start from the paper's geometry: 12 slots of 4.8 s.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            slots: 12,
            tau: Seconds(4.8),
            panel_power: 2.36,
            sunlit_fraction: 0.5,
            demand_base: 0.6,
            demand_peaks: Vec::new(),
            initial_charge: 8.0,
            name: name.into(),
        }
    }

    /// Slot count per period.
    #[must_use = "builders return a new value rather than mutating in place"]
    pub fn slots(mut self, n: usize) -> Self {
        self.slots = n;
        self
    }

    /// Slot width.
    #[must_use = "builders return a new value rather than mutating in place"]
    pub fn tau(mut self, tau: Seconds) -> Self {
        self.tau = tau;
        self
    }

    /// Panel output in full sun, W.
    #[must_use = "builders return a new value rather than mutating in place"]
    pub fn panel_power(mut self, w: f64) -> Self {
        self.panel_power = w;
        self
    }

    /// Fraction of the orbit in sunlight.
    #[must_use = "builders return a new value rather than mutating in place"]
    pub fn sunlit_fraction(mut self, f: f64) -> Self {
        self.sunlit_fraction = f;
        self
    }

    /// Baseline demand level, W.
    #[must_use = "builders return a new value rather than mutating in place"]
    pub fn demand_base(mut self, w: f64) -> Self {
        self.demand_base = w;
        self
    }

    /// Add a triangular demand peak centred on `slot` with the given
    /// height above the base.
    #[must_use = "builders return a new value rather than mutating in place"]
    pub fn demand_peak(mut self, slot: usize, height: f64) -> Self {
        self.demand_peaks.push((slot, height));
        self
    }

    /// Battery charge at t = 0, J.
    #[must_use = "builders return a new value rather than mutating in place"]
    pub fn initial_charge(mut self, j: f64) -> Self {
        self.initial_charge = j;
        self
    }

    /// Build the scenario.
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] when a knob left the buildable
    /// range (fewer than 2 slots, a sunlit fraction outside [0, 1], a
    /// negative power or charge), [`DpmError::InvalidSeries`] when the
    /// resulting schedules are degenerate.
    pub fn build(self) -> Result<Scenario, DpmError> {
        if self.slots < 2 {
            return Err(DpmError::InvalidParameter {
                name: "slots",
                reason: format!("need at least 2 slots per period, got {}", self.slots),
            });
        }
        if !(0.0..=1.0).contains(&self.sunlit_fraction) {
            return Err(DpmError::InvalidParameter {
                name: "sunlit_fraction",
                reason: format!("must be within [0, 1], got {}", self.sunlit_fraction),
            });
        }
        for (name, v) in [
            ("panel_power", self.panel_power),
            ("demand_base", self.demand_base),
            ("initial_charge", self.initial_charge),
        ] {
            if !(v >= 0.0) {
                return Err(DpmError::InvalidParameter {
                    name,
                    reason: format!("must be non-negative, got {v}"),
                });
            }
        }
        let sunlit_slots = ((self.slots as f64) * self.sunlit_fraction).round() as usize;
        let charging = PowerSeries::new(
            self.tau,
            (0..self.slots)
                .map(|i| {
                    if i < sunlit_slots {
                        self.panel_power
                    } else {
                        0.0
                    }
                })
                .collect(),
        )?;
        let n = self.slots;
        let use_power = PowerSeries::new(
            self.tau,
            (0..n)
                .map(|i| {
                    let mut v = self.demand_base;
                    for &(c, h) in &self.demand_peaks {
                        // Triangular kernel of half-width 2 slots, periodic.
                        let d = (i as i64 - c as i64)
                            .rem_euclid(n as i64)
                            .min((c as i64 - i as i64).rem_euclid(n as i64))
                            as f64;
                        v += (h * (1.0 - d / 2.0)).max(0.0);
                    }
                    v
                })
                .collect(),
        )?;
        Scenario::new(self.name, charging, use_power, joules(self.initial_charge))
    }
}

/// A randomized scenario for fuzz/property harnesses: bounded random
/// charging and demand shapes with the paper's geometry.
pub fn random_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let tau = Seconds(4.8);
    let sunlit = rng.gen_range(4..=9usize);
    let panel = rng.gen_range(1.5..3.6);
    let charging = PowerSeries::new(
        tau,
        (0..12)
            .map(|i| if i < sunlit { panel } else { 0.0 })
            .collect(),
    )
    .expect("generated charging values are in range");
    let use_power = PowerSeries::new(tau, (0..12).map(|_| rng.gen_range(0.1..2.4)).collect())
        .expect("generated demand values are in range");
    Scenario::new(
        format!("random-{seed}"),
        charging,
        use_power,
        joules(rng.gen_range(2.0..14.0)),
    )
    .expect("generated scenarios are aligned and non-negative")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_resemble_scenario_one() {
        let s = OrbitScenarioBuilder::new("t").build().unwrap();
        assert_eq!(s.charging.len(), 12);
        assert_eq!(s.charging.get(0), 2.36);
        assert_eq!(s.charging.get(11), 0.0);
    }

    #[test]
    fn sunlit_fraction_controls_eclipse_length() {
        let s = OrbitScenarioBuilder::new("t")
            .sunlit_fraction(0.75)
            .build()
            .unwrap();
        let lit = s.charging.values().iter().filter(|&&v| v > 0.0).count();
        assert_eq!(lit, 9);
    }

    #[test]
    fn demand_peaks_add_local_maxima() {
        let s = OrbitScenarioBuilder::new("t")
            .demand_base(0.5)
            .demand_peak(3, 1.0)
            .build()
            .unwrap();
        assert!(s.use_power.get(3) > s.use_power.get(8));
        assert!((s.use_power.get(3) - 1.5).abs() < 1e-9);
        // Triangular falloff.
        assert!((s.use_power.get(4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_scenarios_are_deterministic_and_bounded() {
        let a = random_scenario(9);
        let b = random_scenario(9);
        assert_eq!(a.charging, b.charging);
        assert_eq!(a.use_power, b.use_power);
        for &v in a.use_power.values() {
            assert!((0.1..=2.4).contains(&v));
        }
    }

    #[test]
    fn random_scenarios_differ_across_seeds() {
        assert_ne!(random_scenario(1).use_power, random_scenario(2).use_power);
    }
}
