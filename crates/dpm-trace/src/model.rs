//! The parsed, indexed form of a schema-v1 trace.
//!
//! [`Trace::parse`] validates the document's shape (meta header first,
//! schema version understood) and splits the line soup into the event
//! stream and the metric maps the analyses consume. Deeper semantic
//! checks — sequence monotonicity, meta consistency, physical invariants
//! — are the [`crate::audit`] module's job, so that a *violating* trace
//! still parses and can be pinpointed rather than rejected wholesale.

use crate::error::TraceError;
use dpm_telemetry::{
    parse_trace_jsonl, Event, HistogramLine, SpanLine, TraceLine, TraceMeta, SCHEMA_VERSION,
};
use std::collections::BTreeMap;

/// A fully parsed trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The header line.
    pub meta: TraceMeta,
    /// Structured events in ring (record/absorb) order.
    pub events: Vec<Event>,
    /// Final counter values by scope-qualified name.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values by scope-qualified name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by scope-qualified name.
    pub histograms: BTreeMap<String, HistogramLine>,
    /// Span call counts by scope-qualified name.
    pub spans: Vec<SpanLine>,
}

/// Split a scope-qualified metric name into `(scope, metric)`.
///
/// [`dpm_telemetry::Recorder::absorb`] joins scopes with `/` while metric
/// base names only ever contain dots (`sim.c_min_j`), so the metric is
/// everything after the last slash: `"table1/0/sim.c_min_j"` →
/// `("table1/0", "sim.c_min_j")`, and an unscoped name has scope `""`.
pub fn split_scoped(name: &str) -> (&str, &str) {
    match name.rsplit_once('/') {
        Some((scope, metric)) => (scope, metric),
        None => ("", name),
    }
}

impl Trace {
    /// Parse a JSONL trace document.
    ///
    /// # Errors
    /// [`TraceError::Parse`] on a malformed line, [`TraceError::MissingMeta`]
    /// when the first line is not the header, and
    /// [`TraceError::SchemaMismatch`] on a schema version this analyzer
    /// does not understand.
    pub fn parse(input: &str) -> Result<Self, TraceError> {
        let lines = parse_trace_jsonl(input)?;
        let mut iter = lines.into_iter();
        let meta = match iter.next() {
            Some(TraceLine::Meta(meta)) => meta,
            _ => return Err(TraceError::MissingMeta),
        };
        if meta.schema != SCHEMA_VERSION {
            return Err(TraceError::SchemaMismatch {
                found: meta.schema,
                expected: SCHEMA_VERSION,
            });
        }
        let mut trace = Self {
            meta,
            events: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: Vec::new(),
        };
        for line in iter {
            match line {
                // A second meta line is structurally impossible for our
                // writers; treat it as the header of a concatenated trace
                // and reject, so `audit a+b` fails loudly instead of
                // silently merging two runs.
                TraceLine::Meta(_) => return Err(TraceError::MissingMeta),
                TraceLine::Event(e) => trace.events.push(e),
                TraceLine::Counter(c) => {
                    trace.counters.insert(c.name, c.value);
                }
                TraceLine::Gauge(g) => {
                    trace.gauges.insert(g.name, g.value);
                }
                TraceLine::Histogram(h) => {
                    trace.histograms.insert(h.name.clone(), h);
                }
                TraceLine::Span(s) => trace.spans.push(s),
            }
        }
        Ok(trace)
    }

    /// Events grouped by scope, preserving ring order within each scope.
    /// Scopes iterate in sorted order (`BTreeMap`), so analyses over the
    /// groups are deterministic.
    pub fn events_by_scope(&self) -> BTreeMap<&str, Vec<&Event>> {
        let mut by_scope: BTreeMap<&str, Vec<&Event>> = BTreeMap::new();
        for e in &self.events {
            by_scope.entry(e.scope.as_str()).or_default().push(e);
        }
        by_scope
    }

    /// The gauge `metric` recorded under `scope` (exact scope match).
    pub fn scoped_gauge(&self, scope: &str, metric: &str) -> Option<f64> {
        let key = if scope.is_empty() {
            metric.to_string()
        } else {
            format!("{scope}/{metric}")
        };
        self.gauges.get(&key).copied()
    }

    /// The counter `metric` recorded under `scope` (exact scope match).
    pub fn scoped_counter(&self, scope: &str, metric: &str) -> Option<u64> {
        let key = if scope.is_empty() {
            metric.to_string()
        } else {
            format!("{scope}/{metric}")
        };
        self.counters.get(&key).copied()
    }

    /// Look up a numeric field of an event by key.
    pub fn field(event: &Event, key: &str) -> Option<f64> {
        event
            .fields
            .iter()
            .find_map(|(k, v)| if k == key { Some(*v) } else { None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_telemetry::Recorder;

    fn sample_jsonl() -> String {
        let rec = Recorder::enabled("unit");
        rec.incr("core.replan.count", 3);
        rec.gauge("sim.c_min_j", 0.5);
        rec.observe("sim.battery_j", 4.0);
        rec.event("sim.slot", Some(0), 0.0, &[("battery_j", 4.0)]);
        let child = rec.sibling();
        child.gauge("sim.c_min_j", 0.5);
        child.event("sim.slot", Some(0), 0.0, &[("battery_j", 5.0)]);
        rec.absorb("job/0", &child);
        rec.to_jsonl()
    }

    #[test]
    fn parses_and_indexes_a_recorder_snapshot() {
        let trace = Trace::parse(&sample_jsonl()).unwrap();
        assert_eq!(trace.meta.source, "unit");
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.counters.get("core.replan.count"), Some(&3));
        assert_eq!(trace.scoped_gauge("", "sim.c_min_j"), Some(0.5));
        assert_eq!(trace.scoped_gauge("job/0", "sim.c_min_j"), Some(0.5));
        assert_eq!(trace.scoped_gauge("job/1", "sim.c_min_j"), None);
        assert_eq!(trace.scoped_counter("", "core.replan.count"), Some(3));
        let by_scope = trace.events_by_scope();
        assert_eq!(by_scope[""].len(), 1);
        assert_eq!(by_scope["job/0"].len(), 1);
        assert_eq!(Trace::field(by_scope["job/0"][0], "battery_j"), Some(5.0));
        assert_eq!(Trace::field(by_scope["job/0"][0], "missing"), None);
    }

    #[test]
    fn rejects_headerless_and_double_headed_documents() {
        let jsonl = sample_jsonl();
        let headless: String = jsonl.lines().skip(1).fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
        assert_eq!(Trace::parse(&headless), Err(TraceError::MissingMeta));
        let doubled = format!("{jsonl}{jsonl}");
        assert_eq!(Trace::parse(&doubled), Err(TraceError::MissingMeta));
        assert!(matches!(
            Trace::parse("garbage\n"),
            Err(TraceError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_future_schema_versions() {
        let jsonl = sample_jsonl();
        let bumped = jsonl.replacen("\"schema\":1", "\"schema\":999", 1);
        assert_ne!(jsonl, bumped, "meta line must contain the schema stamp");
        assert_eq!(
            Trace::parse(&bumped),
            Err(TraceError::SchemaMismatch {
                found: 999,
                expected: SCHEMA_VERSION
            })
        );
    }

    #[test]
    fn split_scoped_handles_all_shapes() {
        assert_eq!(split_scoped("sim.c_min_j"), ("", "sim.c_min_j"));
        assert_eq!(
            split_scoped("table1/0/sim.c_min_j"),
            ("table1/0", "sim.c_min_j")
        );
        assert_eq!(
            split_scoped("campaign/proposed+safe/3/safety.degradations"),
            ("campaign/proposed+safe/3", "safety.degradations")
        );
    }
}
