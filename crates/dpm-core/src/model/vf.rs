//! The voltage–frequency relation `g(v)` and the Eq. 11 voltage rule.
//!
//! §3 models performance as `Perf(f, v) ∝ min(f, g(v))` where `g(v)` is the
//! maximum clock frequency sustainable at supply voltage `v`. §4.2 then
//! observes that for a target frequency `f` the best voltage is
//!
//! ```text
//! v = g⁻¹(f)   if g⁻¹(f) ≥ v_min          (Eq. 11)
//!     v_min    otherwise
//! ```
//!
//! which collapses the `(f, v)` search space to frequency alone.
//!
//! The paper's evaluation fixes `v_min = v_max = 3.3 V` (the M32R/D has no
//! voltage scaling), which is the [`VoltageFrequencyMap::Fixed`] variant; the
//! general analysis of Eqs. 12–18 needs a real scaling law, for which the
//! affine and table variants are provided (the affine form
//! `g(v) = k·(v − v_t)` is the classic alpha-power approximation with
//! α ≈ 2 linearized around the operating region, as used by the StrongARM
//! and Crusoe DVFS systems the paper cites).

use crate::error::DpmError;
use crate::units::{hertz, volts, Hertz, Volts};
use serde::{Deserialize, Serialize};

/// Maximum-frequency-at-voltage law `g(v)` with an invertible form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VoltageFrequencyMap {
    /// No voltage scaling: every frequency in `[0, f_max]` runs at the single
    /// supply voltage (the PAMA board: 3.3 V).
    Fixed {
        /// The sole supply voltage.
        voltage: Volts,
        /// Maximum frequency at that voltage.
        f_max: Hertz,
    },
    /// Affine law `g(v) = slope · (v − threshold)` for `v > threshold`.
    Affine {
        /// Hz per volt above threshold.
        slope: f64,
        /// Threshold voltage below which the part does not run.
        threshold: Volts,
    },
    /// Monotone lookup table of `(voltage, max frequency)` pairs; `g` and
    /// `g⁻¹` interpolate linearly between entries.
    Table(Vec<(Volts, Hertz)>),
}

impl VoltageFrequencyMap {
    /// Build a table map, validating monotonicity.
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] when fewer than two points are given
    /// or the table is not strictly increasing in both coordinates (a
    /// non-monotone `g` has no inverse, and Eq. 11 requires one).
    pub fn table(points: Vec<(Volts, Hertz)>) -> Result<Self, DpmError> {
        if points.len() < 2 {
            return Err(DpmError::InvalidParameter {
                name: "vf table",
                reason: "needs at least two points".into(),
            });
        }
        for w in points.windows(2) {
            if w[1].0.value() <= w[0].0.value() || w[1].1.value() <= w[0].1.value() {
                return Err(DpmError::InvalidParameter {
                    name: "vf table",
                    reason: "voltage–frequency table must be strictly increasing".into(),
                });
            }
        }
        Ok(Self::Table(points))
    }

    /// `g(v)`: maximum frequency sustainable at voltage `v`.
    pub fn max_frequency(&self, v: Volts) -> Hertz {
        match self {
            Self::Fixed { voltage, f_max } => {
                if v.value() + 1e-12 >= voltage.value() {
                    *f_max
                } else {
                    Hertz::ZERO
                }
            }
            Self::Affine { slope, threshold } => {
                hertz((slope * (v.value() - threshold.value())).max(0.0))
            }
            Self::Table(points) => {
                // `table()` guarantees ≥ 2 points; a hand-built `Table`
                // variant might not, so degrade to 0 Hz instead of indexing.
                let Some(&(_, f_last)) = points.last() else {
                    return Hertz::ZERO;
                };
                let Some(&(v0, f0)) = points.first() else {
                    return Hertz::ZERO;
                };
                if v.value() <= v0.value() {
                    // Below the first calibrated point, scale down linearly
                    // to zero at v = 0 (conservative extrapolation).
                    return hertz((f0.value() * (v.value() / v0.value())).max(0.0));
                }
                for w in points.windows(2) {
                    let ((va, fa), (vb, fb)) = (w[0], w[1]);
                    if v.value() <= vb.value() {
                        let t = (v.value() - va.value()) / (vb.value() - va.value());
                        return hertz(fa.value() + t * (fb.value() - fa.value()));
                    }
                }
                // Above the table: saturate at the last calibrated point.
                f_last
            }
        }
    }

    /// `g⁻¹(f)`: minimum voltage that sustains frequency `f`. For the fixed
    /// map this is the sole voltage for any `f ≤ f_max` (and `None` above).
    pub fn min_voltage_for(&self, f: Hertz) -> Option<Volts> {
        match self {
            Self::Fixed { voltage, f_max } => {
                (f.value() <= f_max.value() + 1e-9).then_some(*voltage)
            }
            Self::Affine { slope, threshold } => {
                (*slope > 0.0).then(|| volts(threshold.value() + f.value() / slope))
            }
            Self::Table(points) => {
                let (v_last, f_last) = *points.last()?;
                if f.value() > f_last.value() + 1e-9 {
                    return None;
                }
                let (v0, f0) = *points.first()?;
                if f.value() <= f0.value() {
                    return Some(volts(v0.value() * (f.value() / f0.value()).max(0.0)));
                }
                for w in points.windows(2) {
                    let ((va, fa), (vb, fb)) = (w[0], w[1]);
                    if f.value() <= fb.value() {
                        let t = (f.value() - fa.value()) / (fb.value() - fa.value());
                        return Some(volts(va.value() + t * (vb.value() - va.value())));
                    }
                }
                Some(v_last)
            }
        }
    }

    /// Eq. 11: the voltage to run frequency `f` at, clamped to
    /// `[v_min, v_max]`. Returns `None` when `f` is not attainable at
    /// `v_max` (i.e. `f > g(v_max)`).
    pub fn operating_voltage(&self, f: Hertz, v_min: Volts, v_max: Volts) -> Option<Volts> {
        if f.value() > self.max_frequency(v_max).value() + 1e-9 {
            return None;
        }
        let v = self.min_voltage_for(f)?;
        Some(v.max(v_min).min(v_max))
    }

    /// `g(v_min)` — the pivot frequency `f₀` of the §4.2 case analysis:
    /// below it, frequency changes performance but voltage cannot drop
    /// further; above it, voltage tracks frequency via `g⁻¹`.
    pub fn pivot_frequency(&self, v_min: Volts) -> Hertz {
        self.max_frequency(v_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{hertz, volts, Hertz};

    fn pama() -> VoltageFrequencyMap {
        VoltageFrequencyMap::Fixed {
            voltage: volts(3.3),
            f_max: Hertz::from_mhz(80.0),
        }
    }

    #[test]
    fn fixed_map_reports_single_voltage() {
        let m = pama();
        assert_eq!(m.max_frequency(volts(3.3)), Hertz::from_mhz(80.0));
        assert_eq!(m.max_frequency(volts(2.0)), Hertz::ZERO);
        assert_eq!(m.min_voltage_for(Hertz::from_mhz(40.0)), Some(volts(3.3)));
        assert_eq!(m.min_voltage_for(Hertz::from_mhz(100.0)), None);
    }

    #[test]
    fn fixed_map_operating_voltage_clamps() {
        let m = pama();
        let v = m
            .operating_voltage(Hertz::from_mhz(20.0), volts(3.3), volts(3.3))
            .unwrap();
        assert_eq!(v, volts(3.3));
        assert!(m
            .operating_voltage(Hertz::from_mhz(90.0), volts(3.3), volts(3.3))
            .is_none());
    }

    #[test]
    fn affine_map_inverse_roundtrip() {
        let m = VoltageFrequencyMap::Affine {
            slope: 100.0e6, // 100 MHz per volt
            threshold: volts(0.8),
        };
        let f = m.max_frequency(volts(1.8));
        assert!((f.value() - 100.0e6).abs() < 1.0);
        let v = m.min_voltage_for(f).unwrap();
        assert!((v.value() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn affine_map_clamps_below_threshold() {
        let m = VoltageFrequencyMap::Affine {
            slope: 100.0e6,
            threshold: volts(0.8),
        };
        assert_eq!(m.max_frequency(volts(0.5)), Hertz::ZERO);
    }

    #[test]
    fn table_map_interpolates_both_ways() {
        let m = VoltageFrequencyMap::table(vec![
            (volts(1.0), Hertz::from_mhz(20.0)),
            (volts(2.0), Hertz::from_mhz(60.0)),
            (volts(3.0), Hertz::from_mhz(80.0)),
        ])
        .unwrap();
        let f = m.max_frequency(volts(1.5));
        assert!((f.mhz() - 40.0).abs() < 1e-9);
        let v = m.min_voltage_for(hertz(40.0e6)).unwrap();
        assert!((v.value() - 1.5).abs() < 1e-9);
        // Saturation above the table.
        assert_eq!(m.max_frequency(volts(5.0)), Hertz::from_mhz(80.0));
        assert_eq!(m.min_voltage_for(Hertz::from_mhz(90.0)), None);
    }

    #[test]
    fn table_map_extrapolates_to_zero() {
        let m = VoltageFrequencyMap::table(vec![
            (volts(1.0), Hertz::from_mhz(20.0)),
            (volts(2.0), Hertz::from_mhz(60.0)),
        ])
        .unwrap();
        assert!((m.max_frequency(volts(0.5)).mhz() - 10.0).abs() < 1e-9);
        let v = m.min_voltage_for(Hertz::from_mhz(10.0)).unwrap();
        assert!((v.value() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn table_map_rejects_non_monotone() {
        assert!(matches!(
            VoltageFrequencyMap::table(vec![
                (volts(2.0), Hertz::from_mhz(60.0)),
                (volts(1.0), Hertz::from_mhz(20.0)),
            ]),
            Err(DpmError::InvalidParameter { .. })
        ));
        assert!(VoltageFrequencyMap::table(vec![(volts(1.0), Hertz::from_mhz(20.0))]).is_err());
    }

    #[test]
    fn degenerate_table_degrades_instead_of_panicking() {
        // A hand-built empty Table bypasses `table()`'s validation; lookups
        // must still return something sensible.
        let m = VoltageFrequencyMap::Table(vec![]);
        assert_eq!(m.max_frequency(volts(2.0)), Hertz::ZERO);
        assert_eq!(m.min_voltage_for(Hertz::from_mhz(20.0)), None);
    }

    #[test]
    fn eq11_prefers_ginv_above_vmin() {
        let m = VoltageFrequencyMap::Affine {
            slope: 100.0e6,
            threshold: volts(0.0),
        };
        // g⁻¹(50 MHz) = 0.5 V < v_min = 1.0 V ⇒ take v_min.
        let v = m
            .operating_voltage(Hertz::from_mhz(50.0), volts(1.0), volts(3.0))
            .unwrap();
        assert_eq!(v, volts(1.0));
        // g⁻¹(200 MHz) = 2.0 V ≥ v_min ⇒ take g⁻¹.
        let v = m
            .operating_voltage(Hertz::from_mhz(200.0), volts(1.0), volts(3.0))
            .unwrap();
        assert!((v.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pivot_frequency_is_g_of_vmin() {
        let m = VoltageFrequencyMap::Affine {
            slope: 100.0e6,
            threshold: volts(0.0),
        };
        assert!((m.pivot_frequency(volts(1.5)).mhz() - 150.0).abs() < 1e-9);
    }
}
