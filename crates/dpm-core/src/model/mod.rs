//! Performance and power models from §3 of the paper.
//!
//! * [`vf`] — the voltage–frequency relation `g(v)` and its inverse, plus the
//!   Eq. 11 optimal-voltage rule.
//! * [`perf`] — Eq. 1 (`Perf ∝ min(f, g(v))`), Eq. 2 (Amdahl's law over the
//!   fork-join task graph of Fig. 2), and the combined Eq. 3.
//! * [`power`] — Eq. 4–6 (`Power = c2 · Σ fᵢ vᵢ²`), extended with the
//!   standby/sleep floor power the PAMA evaluation uses.

pub mod perf;
pub mod power;
pub mod vf;

pub use perf::{AmdahlWorkload, PerfModel, Throughput};
pub use power::{ModePower, PowerModel};
pub use vf::VoltageFrequencyMap;
