//! The FPGA-hosted unidirectional ring interconnect of the SLIIC/PAMA
//! board.
//!
//! Two FPGAs connect the eight PIMs in a one-way ring: a message from PIM
//! `i` to PIM `j` traverses `(j − i) mod 8` hops. Scatter/gather for the
//! fork-join FFT therefore costs time linear in the hop distance and
//! payload, which is where the Fig. 2 serial fraction physically comes
//! from.

use dpm_core::units::{seconds, Seconds};
use serde::{Deserialize, Serialize};

/// Ring parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingConfig {
    /// Stations on the ring.
    pub nodes: usize,
    /// Per-hop forwarding latency.
    pub hop_latency: Seconds,
    /// Payload bandwidth per link, bytes/s.
    pub bandwidth: f64,
}

impl RingConfig {
    /// PAMA-like: 8 nodes, 20 MHz × 4-byte I/O ⇒ 80 MB/s links, one-cycle
    /// (50 ns) hop forwarding.
    pub fn pama() -> Self {
        Self {
            nodes: 8,
            hop_latency: seconds(50e-9),
            bandwidth: 80.0e6,
        }
    }
}

/// The ring network model with traffic accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingNetwork {
    config: RingConfig,
    messages: u64,
    bytes: u64,
}

impl RingNetwork {
    /// Build from a config.
    pub fn new(config: RingConfig) -> Self {
        assert!(config.nodes >= 2);
        assert!(config.bandwidth > 0.0);
        Self {
            config,
            messages: 0,
            bytes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> RingConfig {
        self.config
    }

    /// Hop count from `src` to `dst` (unidirectional).
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        assert!(src < self.config.nodes && dst < self.config.nodes);
        (dst + self.config.nodes - src) % self.config.nodes
    }

    /// Transfer time for `bytes` from `src` to `dst`, store-and-forward.
    pub fn transfer_time(&mut self, src: usize, dst: usize, bytes: usize) -> Seconds {
        let hops = self.hops(src, dst);
        self.messages += 1;
        self.bytes += bytes as u64;
        seconds(
            hops as f64 * (self.config.hop_latency.value() + bytes as f64 / self.config.bandwidth),
        )
    }

    /// Time for node `root` to scatter `bytes_per_node` to each of
    /// `workers` distinct nodes, sequentially (one outstanding message —
    /// the SLIIC FPGA serializes injections).
    pub fn scatter_time(
        &mut self,
        root: usize,
        workers: &[usize],
        bytes_per_node: usize,
    ) -> Seconds {
        let mut total = Seconds::ZERO;
        for &w in workers {
            total += self.transfer_time(root, w, bytes_per_node);
        }
        total
    }

    /// Gather is symmetric to scatter on a unidirectional ring (the return
    /// path just uses the remaining hops).
    pub fn gather_time(
        &mut self,
        root: usize,
        workers: &[usize],
        bytes_per_node: usize,
    ) -> Seconds {
        let mut total = Seconds::ZERO;
        for &w in workers {
            total += self.transfer_time(w, root, bytes_per_node);
        }
        total
    }

    /// Messages sent so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Bytes moved so far.
    pub fn byte_count(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> RingNetwork {
        RingNetwork::new(RingConfig::pama())
    }

    #[test]
    fn hops_wrap_around() {
        let r = ring();
        assert_eq!(r.hops(0, 3), 3);
        assert_eq!(r.hops(3, 0), 5);
        assert_eq!(r.hops(5, 5), 0);
        assert_eq!(r.hops(7, 0), 1);
    }

    #[test]
    fn transfer_time_scales_with_hops_and_bytes() {
        let mut r = ring();
        let t1 = r.transfer_time(0, 1, 1024);
        let t2 = r.transfer_time(0, 2, 1024);
        assert!((t2.value() / t1.value() - 2.0).abs() < 1e-9);
        let big = r.transfer_time(0, 1, 2048);
        assert!(big.value() > t1.value());
    }

    #[test]
    fn zero_hop_transfer_is_free() {
        let mut r = ring();
        assert_eq!(r.transfer_time(4, 4, 4096), Seconds::ZERO);
    }

    #[test]
    fn scatter_to_all_workers_counts_messages() {
        let mut r = ring();
        let workers: Vec<usize> = (1..8).collect();
        let t = r.scatter_time(0, &workers, 2048 * 4 / 7);
        assert!(t.value() > 0.0);
        assert_eq!(r.message_count(), 7);
        assert!(r.byte_count() > 0);
    }

    #[test]
    fn gather_uses_return_hops() {
        let mut r = ring();
        // Worker 1 → root 0 is 7 hops on the one-way ring.
        let t = r.gather_time(0, &[1], 100);
        let direct = r.transfer_time(1, 0, 100);
        assert_eq!(t, direct);
        assert_eq!(r.hops(1, 0), 7);
    }

    #[test]
    fn pama_scatter_is_sub_millisecond() {
        // Sanity: 2K complex samples (8 KiB) split over 7 workers should
        // scatter in well under the 4.8 s slot — the serial fraction is
        // small but real.
        let mut r = ring();
        let workers: Vec<usize> = (1..8).collect();
        let t = r.scatter_time(0, &workers, 8192 / 7);
        assert!(t.value() < 1e-2, "{t}");
        assert!(t.value() > 0.0);
    }
}
