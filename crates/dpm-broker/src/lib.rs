//! Dependency-aware power-element topology with lease-based demand.
//!
//! Real multiprocessor boards are not a flat pool of (n, f, v) choices:
//! worker chips hang off ring interconnects, sensors hang off bus power.
//! This crate models that structure as a validated DAG of power
//! *elements* ([`Topology`]) and governs it with a lease [`Broker`]:
//!
//! - **Leases** express demand; the broker reconciles demand against
//!   faults once per slot ([`Broker::sync`]).
//! - **Dependency order** is honored for every transition: drops apply
//!   leaves-first, raises providers-first, so no element is ever powered
//!   above what its providers support — after *every* level change, not
//!   just at sync boundaries.
//! - **Faults cascade** to a legal degraded configuration immediately
//!   ([`Broker::fault`]); restores wait out per-element dwell hysteresis
//!   and a bounded retry budget ([`BrokerConfig`]).
//! - **Terminal shutdown** ([`Broker::shutdown`]) walks the topology to
//!   its minimum legal state, monotonically and finally.
//!
//! Every transition is emitted as `broker.*` telemetry (see
//! `docs/TRACE_SCHEMA.md`), which `dpm-trace` replays to machine-check
//! the legality, ordering, and shutdown invariants.

#![warn(missing_docs)]

mod broker;
mod error;
mod topology;

pub use broker::{Action, Broker, BrokerConfig, BrokerCounts, Cause};
pub use error::BrokerError;
pub use topology::{Edge, ElementSpec, Topology, TopologyBuilder};

/// Everything most users need.
pub mod prelude {
    pub use crate::{
        Action, Broker, BrokerConfig, BrokerCounts, BrokerError, Cause, Edge, ElementSpec,
        Topology, TopologyBuilder,
    };
}
