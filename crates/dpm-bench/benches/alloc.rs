//! Tables 2/4 bench: the §4.1 initial power-allocation computation
//! (Algorithm 1 + the iterative driver), plus a scaling sweep over slot
//! counts — the planner must stay trivially cheap next to τ = 4.8 s.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_bench::experiments;
use dpm_core::alloc::{reshape_trajectory, InitialAllocator, ReshapeStrategy};
use dpm_core::platform::Platform;
use dpm_core::series::PowerSeries;
use dpm_core::units::{joules, seconds};
use dpm_workloads::{scenarios, OrbitScenarioBuilder};
use std::hint::black_box;

fn bench_paper_tables(c: &mut Criterion) {
    let platform = Platform::pama();
    // Log the reproduced iteration counts.
    for s in scenarios::all() {
        let iters = experiments::table2_4(&platform, &s).unwrap();
        println!(
            "[table2/4] {}: {} iterations, feasible = {}",
            s.name,
            iters.len(),
            iters.last().unwrap().feasible
        );
    }

    let mut group = c.benchmark_group("alloc/initial");
    for s in scenarios::all() {
        let problem = s.allocation_problem(&platform);
        group.bench_with_input(BenchmarkId::from_parameter(&s.name), &problem, |b, p| {
            b.iter(|| black_box(InitialAllocator::new(p.clone()).unwrap().compute()))
        });
    }
    group.finish();
}

fn bench_reshape(c: &mut Criterion) {
    // Algorithm 1 alone, on a trajectory with multiple violations.
    let net = PowerSeries::new(
        seconds(1.0),
        vec![
            4.0, 5.0, -9.0, -8.0, 4.0, 6.0, -3.0, -9.0, 5.0, 5.0, -2.0, 2.0,
        ],
    )
    .unwrap();
    let traj = net.cumulative(joules(8.0));
    let limits = Platform::pama().battery;
    c.bench_function("alloc/algorithm1_reshape", |b| {
        b.iter(|| black_box(reshape_trajectory(&traj, limits)))
    });
}

fn bench_strategy_ablation(c: &mut Criterion) {
    // Algorithm 1's two segment-rebuild strategies: iterations to
    // converge and planner cost (the paper states both are valid).
    let platform = Platform::pama();
    for s in scenarios::all() {
        for (name, strat) in [
            ("shape", ReshapeStrategy::ShapePreserving),
            ("even", ReshapeStrategy::EvenSlope),
        ] {
            let alloc = InitialAllocator::new(s.allocation_problem(&platform))
                .unwrap()
                .with_strategy(strat)
                .compute()
                .unwrap();
            println!(
                "[alloc-strategy] {} {}: {} iterations, feasible = {}",
                s.name,
                name,
                alloc.iterations.len(),
                alloc.feasible
            );
        }
    }
    let mut group = c.benchmark_group("alloc/strategy");
    let problem = scenarios::scenario_two().allocation_problem(&platform);
    for (name, strat) in [
        ("shape", ReshapeStrategy::ShapePreserving),
        ("even", ReshapeStrategy::EvenSlope),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strat, |b, &st| {
            b.iter(|| {
                black_box(
                    InitialAllocator::new(problem.clone())
                        .unwrap()
                        .with_strategy(st)
                        .compute(),
                )
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Planner cost vs. schedule resolution (slots per period).
    let platform = Platform::pama();
    let mut group = c.benchmark_group("alloc/scaling");
    for slots in [12usize, 48, 192, 768] {
        let scenario = OrbitScenarioBuilder::new(format!("scale-{slots}"))
            .slots(slots)
            .tau(seconds(57.6 / slots as f64))
            .demand_peak(slots / 4, 1.2)
            .demand_peak(3 * slots / 4, 0.8)
            .build()
            .unwrap();
        let problem = scenario.allocation_problem(&platform);
        group.bench_with_input(BenchmarkId::from_parameter(slots), &problem, |b, p| {
            b.iter(|| black_box(InitialAllocator::new(p.clone()).unwrap().compute()))
        });
    }
    group.finish();
}

/// Short measurement windows: these benches exist to track regressions and
/// print experiment logs, not to resolve microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_paper_tables, bench_reshape, bench_strategy_ablation, bench_scaling
}
criterion_main!(benches);
