//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal replacement exposing the same surface the repo uses: the
//! `Serialize`/`Deserialize` traits, their derive macros, and enough of a
//! data model for `serde_json` to round-trip every derived type. The data
//! model is deliberately simplified: values serialize into a [`Content`]
//! tree instead of driving a generic `Serializer` visitor.

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Absent value (`Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a map.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself into the [`Content`] data model.
pub trait Serialize {
    /// Convert into the serialized tree.
    fn to_content(&self) -> Content;
}

/// A type that can rebuild itself from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Convert from the serialized tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

fn expected(what: &str, got: &Content) -> DeError {
    DeError(format!("expected {what}, got {got:?}"))
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Content::I64(*self as i64)
                } else {
                    Content::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(expected("integer", other)),
                }
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(v) => Ok(v.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(content).map(Self::from)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(expected("2-tuple", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::from_content(&items[0])?,
                B::from_content(&items[1])?,
                C::from_content(&items[2])?,
            )),
            other => Err(expected("3-tuple", other)),
        }
    }
}
