//! First-divergence comparison between two trace documents.
//!
//! The determinism contract (DESIGN.md §10) says two runs of the same
//! configuration produce byte-identical traces, so CI used to compare
//! them with `cmp`. `cmp` reports a byte offset; this module reports the
//! first diverging *line* together with the common lines leading up to
//! it and a decoded hint (`event sim.slot scope="table1/0" seq=12
//! slot=4`), which turns "traces differ" into "the runs diverged at this
//! slot of this experiment".

use dpm_telemetry::TraceLine;
use std::fmt;

/// The first point where two JSONL documents disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// The left document's line, or `None` if it ended first.
    pub left: Option<String>,
    /// The right document's line, or `None` if it ended first.
    pub right: Option<String>,
    /// Up to the requested number of common lines immediately before the
    /// divergence.
    pub context: Vec<String>,
}

/// Decode a trace line into a short human hint, if it parses.
fn decode_hint(line: &str) -> Option<String> {
    let parsed: TraceLine = serde_json::from_str(line).ok()?;
    Some(match parsed {
        TraceLine::Meta(m) => format!(
            "meta source=\"{}\" events={} dropped={}",
            m.source, m.events, m.dropped
        ),
        TraceLine::Event(e) => {
            let slot = e.slot.map(|s| s.to_string()).unwrap_or_else(|| "-".into());
            format!(
                "event {} scope=\"{}\" seq={} slot={slot} t={}",
                e.name, e.scope, e.seq, e.time
            )
        }
        TraceLine::Counter(c) => format!("counter {} = {}", c.name, c.value),
        TraceLine::Gauge(g) => format!("gauge {} = {}", g.name, g.value),
        TraceLine::Histogram(h) => {
            format!("histogram {} count={} sum={}", h.name, h.count, h.sum)
        }
        TraceLine::Span(s) => format!("span {} count={}", s.name, s.count),
    })
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergence at line {}:", self.line)?;
        let context_start = self.line.saturating_sub(self.context.len());
        for (i, line) in self.context.iter().enumerate() {
            writeln!(f, "  {:>6}   {line}", context_start + i)?;
        }
        match &self.left {
            Some(line) => {
                writeln!(f, "  {:>6} < {line}", self.line)?;
                if let Some(hint) = decode_hint(line) {
                    writeln!(f, "           ({hint})")?;
                }
            }
            None => writeln!(f, "  {:>6} < <end of document>", self.line)?,
        }
        match &self.right {
            Some(line) => {
                writeln!(f, "  {:>6} > {line}", self.line)?;
                if let Some(hint) = decode_hint(line) {
                    writeln!(f, "           ({hint})")?;
                }
            }
            None => writeln!(f, "  {:>6} > <end of document>", self.line)?,
        }
        Ok(())
    }
}

/// Find the first line where `left` and `right` differ, carrying up to
/// `context` preceding common lines. Returns `None` when the documents
/// are line-identical (a trailing newline difference counts as a
/// divergence: determinism is a byte contract).
pub fn first_divergence(left: &str, right: &str, context: usize) -> Option<Divergence> {
    let mut recent: Vec<String> = Vec::new();
    let mut l_iter = left.lines();
    let mut r_iter = right.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (l_iter.next(), r_iter.next()) {
            (None, None) => return None,
            (l, r) => {
                if l != r {
                    return Some(Divergence {
                        line,
                        left: l.map(str::to_string),
                        right: r.map(str::to_string),
                        context: recent,
                    });
                }
                if context > 0 {
                    if recent.len() == context {
                        recent.remove(0);
                    }
                    if let Some(l) = l {
                        recent.push(l.to_string());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_telemetry::Recorder;

    fn trace_with_levels(levels: &[f64]) -> String {
        let rec = Recorder::enabled("diff");
        rec.gauge("sim.c_min_j", 0.5);
        for (i, level) in levels.iter().enumerate() {
            rec.event(
                "sim.slot",
                Some(i as u64),
                i as f64,
                &[("battery_j", *level)],
            );
        }
        rec.to_jsonl()
    }

    #[test]
    fn identical_documents_have_no_divergence() {
        let a = trace_with_levels(&[1.0, 2.0, 3.0]);
        assert_eq!(first_divergence(&a, &a.clone(), 3), None);
        assert_eq!(first_divergence("", "", 3), None);
    }

    #[test]
    fn first_differing_line_is_pinpointed_with_context() {
        let a = trace_with_levels(&[1.0, 2.0, 3.0]);
        let b = trace_with_levels(&[1.0, 2.0, 4.0]);
        let d = first_divergence(&a, &b, 2).expect("must diverge");
        // Line 1 is meta, line 2 the first slot event; levels diverge at
        // the third slot event, line 4.
        assert_eq!(d.line, 4);
        assert_eq!(d.context.len(), 2);
        assert!(d.left.as_deref().unwrap_or("").contains("battery_j"));
        assert_ne!(d.left, d.right);
        let rendered = d.to_string();
        assert!(rendered.contains("line 4"), "{rendered}");
        assert!(rendered.contains("event sim.slot"), "{rendered}");
        assert!(rendered.contains("slot=2"), "{rendered}");
    }

    #[test]
    fn truncated_document_diverges_at_the_missing_line() {
        // Cut the final line off the same document, so the meta headers
        // (which carry the event count) stay identical.
        let b = trace_with_levels(&[1.0, 2.0, 3.0]);
        let a: String = b.lines().take(3).fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
        let d = first_divergence(&a, &b, 8).expect("must diverge");
        assert_eq!(d.line, 4);
        assert_eq!(d.left, None);
        assert!(d.right.is_some());
        assert!(d.to_string().contains("<end of document>"));
        // Symmetric case.
        let d2 = first_divergence(&b, &a, 0).expect("must diverge");
        assert_eq!(d2.right, None);
        assert!(d2.context.is_empty());
    }

    #[test]
    fn non_jsonl_lines_render_without_a_hint() {
        let d = first_divergence("same\nleftish", "same\nrightish", 1).expect("diverges");
        assert_eq!(d.line, 2);
        let rendered = d.to_string();
        assert!(rendered.contains("leftish") && rendered.contains("rightish"));
        assert!(!rendered.contains("("), "no hint expected: {rendered}");
    }
}
