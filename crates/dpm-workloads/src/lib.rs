//! # dpm-workloads
//!
//! Workload definitions for the reproduction: the paper's two evaluation
//! scenarios ([`scenarios`]) digitized from Figures 3–4 / Tables 3 & 5,
//! parameterized generators ([`generator`]) for sweeps and fuzzing, and
//! seeded fault plans ([`faults`]) for robustness campaigns.
//!
//! A [`Scenario`] bundles everything §2 calls the problem inputs — the
//! expected charging schedule `c(t)`, the desired use-power shape
//! (`u(t)·w(t)` pre-multiplied), and the initial battery charge — plus
//! adapters that turn those into the structures `dpm-core` and `dpm-sim`
//! consume.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > 0.0)`-style checks are deliberate: unlike `x <= 0.0` they also
// reject NaN, which is exactly what the validation layer is for.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod faults;
pub mod fleet;
pub mod generator;
pub mod scenarios;

pub use faults::{generate as generate_faults, FaultEvent, FaultPlan, FaultPlanConfig};
pub use fleet::{board_seed, board_spec, fleet_specs, FleetScenarioConfig};
pub use generator::{random_scenario, OrbitScenarioBuilder};
pub use scenarios::{scenario_one, scenario_two};

use dpm_core::alloc::AllocationProblem;
use dpm_core::error::DpmError;
use dpm_core::platform::Platform;
use dpm_core::series::PowerSeries;
use dpm_core::units::Joules;
use serde::{Deserialize, Serialize};

/// One evaluation scenario: the §2 problem inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Identifier for reports.
    pub name: String,
    /// Expected charging schedule `c(t)`, W per slot.
    pub charging: PowerSeries,
    /// Desired power-usage shape `u(t)·w(t)`, W per slot.
    pub use_power: PowerSeries,
    /// Battery charge at `t = 0`.
    pub initial_charge: Joules,
}

impl Scenario {
    /// Build, validating alignment.
    ///
    /// # Errors
    /// [`DpmError::SeriesMismatch`] when the charging and use schedules
    /// disagree on slotting, [`DpmError::InvalidParameter`] on a negative
    /// use power.
    pub fn new(
        name: impl Into<String>,
        charging: PowerSeries,
        use_power: PowerSeries,
        initial_charge: Joules,
    ) -> Result<Self, DpmError> {
        charging.check_aligned(&use_power)?;
        if let Some(i) = use_power.values().iter().position(|&v| v < 0.0) {
            return Err(DpmError::InvalidParameter {
                name: "use_power",
                reason: format!("must be non-negative, slot {i} is {}", use_power.get(i)),
            });
        }
        Ok(Self {
            name: name.into(),
            charging,
            use_power,
            initial_charge,
        })
    }

    /// The §4.1 allocation problem for this scenario on `platform`.
    pub fn allocation_problem(&self, platform: &Platform) -> AllocationProblem {
        AllocationProblem {
            charging: self.charging.clone(),
            demand: self.use_power.clone(),
            initial_charge: self.initial_charge,
            limits: platform.battery,
            p_floor: platform.power.all_standby(),
            p_ceiling: platform.board_power(platform.workers(), platform.f_max()),
        }
    }

    /// Energy one job costs at the platform's reference operating point
    /// (one worker at the slowest clock) — the conversion factor between
    /// the figures' use-power axis and an event rate.
    pub fn energy_per_job(&self, platform: &Platform) -> Joules {
        let f = platform.f_min();
        let power = platform.board_power(1, f);
        let time = dpm_core::units::Seconds(
            platform.workload.time_on(1).value() * (platform.workload.f_ref.value() / f.value()),
        );
        power * time
    }

    /// The event-rate schedule (events/s per slot) whose processing at the
    /// reference point would dissipate exactly the use-power shape.
    pub fn event_rates(&self, platform: &Platform) -> PowerSeries {
        let e = self.energy_per_job(platform).value();
        debug_assert!(e > 0.0, "validated platforms dissipate at every point");
        self.use_power.map(|w| w / e)
    }

    /// Expected events per period.
    pub fn events_per_period(&self, platform: &Platform) -> f64 {
        self.event_rates(platform).integral().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::{joules, seconds};

    fn scenario() -> Scenario {
        scenarios::scenario_one()
    }

    #[test]
    fn allocation_problem_uses_platform_bounds() {
        let platform = Platform::pama();
        let p = scenario().allocation_problem(&platform);
        assert!((p.p_floor.value() - 8.0 * 0.0066).abs() < 1e-9);
        assert!((p.p_ceiling.value() - 8.0 * 0.546).abs() < 1e-6);
        assert_eq!(p.limits, platform.battery);
    }

    #[test]
    fn energy_per_job_matches_hand_calculation() {
        let platform = Platform::pama();
        let e = scenario().energy_per_job(&platform);
        // 2 chips active at 20 MHz (worker + controller) + 6 standby, 4.8 s.
        let power = 2.0 * 0.546 / 4.0 + 6.0 * 0.0066;
        assert!((e.value() - power * 4.8).abs() < 1e-6, "{e}");
    }

    #[test]
    fn event_rates_scale_with_use_power() {
        let platform = Platform::pama();
        let s = scenario();
        let rates = s.event_rates(&platform);
        let ratio = rates.get(0) / rates.get(8);
        let expect = s.use_power.get(0) / s.use_power.get(8);
        assert!((ratio - expect).abs() < 1e-9);
    }

    #[test]
    fn events_per_period_is_plausible() {
        let platform = Platform::pama();
        let n = scenario().events_per_period(&platform);
        // ~1.2 W mean use at ~1.5 J/job over 57.6 s ⇒ tens of events.
        assert!(n > 10.0 && n < 200.0, "{n}");
    }

    #[test]
    fn misaligned_schedules_rejected() {
        use dpm_core::error::DpmError;
        assert!(matches!(
            Scenario::new(
                "bad",
                PowerSeries::constant(seconds(4.8), 12, 1.0).unwrap(),
                PowerSeries::constant(seconds(4.8), 6, 1.0).unwrap(),
                joules(8.0),
            ),
            Err(DpmError::SeriesMismatch { .. })
        ));
    }
}
