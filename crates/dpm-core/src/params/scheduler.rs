//! Algorithm 2: turning the power allocation into a discrete `(n, f)`
//! schedule, offline.
//!
//! The paper's loop (lines 6–22) walks the period in `τ` steps. At each
//! step it (line 11) re-spreads the energy the discrete selection failed to
//! consume — Algorithm 3 again, used at *planning* time — then picks the
//! best frontier point inside the slot budget, then keeps the old point if
//! the switch overhead outweighs the gain (lines 14–22).
//!
//! [`crate::runtime::DpmController`] performs the same loop online with
//! measured deviations; this offline version assumes the model is exact and
//! exists to (a) pre-compute schedules, (b) reproduce the paper's analysis,
//! and (c) serve the ablation benches (overhead sweeps, pruning on/off).

use super::pareto::ParetoTable;
use super::OperatingPoint;
use crate::error::DpmError;
use crate::platform::Platform;
use crate::runtime::redistribute;
use crate::series::PowerSeries;
use crate::units::{watts, Joules, Watts};
use dpm_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// One planned slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledSlot {
    /// Slot index within the period.
    pub slot: usize,
    /// Budget after the line-11 re-spread, W.
    pub budget: Watts,
    /// Chosen operating point.
    pub point: OperatingPoint,
    /// Modelled power at that point, W.
    pub power: Watts,
    /// Modelled throughput, jobs/s.
    pub perf: f64,
    /// Whether the point changed relative to the previous slot.
    pub switched: bool,
    /// Overhead paid for the switch, J.
    pub overhead: Joules,
}

/// A full-period discrete parameter schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterSchedule {
    /// Per-slot decisions.
    pub slots: Vec<ScheduledSlot>,
}

impl ParameterSchedule {
    /// Total energy the schedule dissipates (selected power × τ plus
    /// overheads).
    pub fn total_energy(&self, platform: &Platform) -> Joules {
        let tau = platform.tau;
        self.slots.iter().map(|s| s.power * tau + s.overhead).sum()
    }

    /// Total jobs completed over the period.
    pub fn total_jobs(&self, platform: &Platform) -> f64 {
        let tau = platform.tau.value();
        self.slots.iter().map(|s| s.perf * tau).sum()
    }

    /// Number of slot boundaries at which the operating point changed.
    pub fn switch_count(&self) -> usize {
        self.slots.iter().filter(|s| s.switched).count()
    }
}

/// The Algorithm 2 planner.
#[derive(Debug, Clone)]
pub struct ParameterScheduler {
    platform: Platform,
    pareto: ParetoTable,
    telemetry: Recorder,
}

impl ParameterScheduler {
    /// Build (validates the platform, rates and prunes the pair table).
    ///
    /// # Errors
    /// Propagates [`Platform::validate`] — e.g. an empty frequency ladder or
    /// an inverted battery window.
    pub fn new(platform: Platform) -> Result<Self, DpmError> {
        let pareto = ParetoTable::build(&platform)?;
        Ok(Self {
            platform,
            pareto,
            telemetry: Recorder::disabled(),
        })
    }

    /// Build with an explicitly-provided table (e.g. the unpruned ablation
    /// table).
    pub fn with_table(platform: Platform, pareto: ParetoTable) -> Self {
        Self {
            platform,
            pareto,
            telemetry: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder: every [`Self::plan`] call is then
    /// wrapped in a `params.plan` profiler span (wall clock only — the
    /// deterministic trace is untouched).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The frontier in use.
    pub fn table(&self) -> &ParetoTable {
        &self.pareto
    }

    /// Plan one period. `allocation` is the §4.1 power allocation,
    /// `charging` the matching supply forecast, `battery0` the charge at
    /// the period start.
    ///
    /// # Errors
    /// [`DpmError::SeriesMismatch`]/[`DpmError::InvalidSeries`] when the
    /// allocation and charging schedules disagree on slotting.
    pub fn plan(
        &self,
        allocation: &PowerSeries,
        charging: &PowerSeries,
        battery0: Joules,
    ) -> Result<ParameterSchedule, DpmError> {
        let _plan_span = self.telemetry.span("params.plan");
        allocation.check_aligned(charging)?;
        let tau = self.platform.tau;
        let floor = self.platform.power.all_standby();
        let ceiling = self
            .platform
            .board_power(self.platform.workers(), self.platform.f_max());

        let mut plan: Vec<f64> = allocation.values().to_vec();
        let mut battery = battery0;
        let mut current = OperatingPoint::OFF;
        let mut slots = Vec::with_capacity(plan.len());

        for i in 0..plan.len() {
            let budget = watts(plan[i]);
            let (point, overhead) = self.select(budget, current);
            let power = self.power_of(&point);
            let perf = self
                .pareto
                .frontier()
                .iter()
                .find(|r| r.point == point)
                .map(|r| r.perf.value())
                .unwrap_or(0.0);
            let switched = point != current;

            // Line 11 for the *next* round: spread the unconsumed energy of
            // this slot over the future plan.
            let planned = budget * tau;
            let used = power * tau + overhead;
            let e_diff = planned - used;
            if i + 1 < plan.len() && e_diff.value().abs() > 1e-12 {
                let charging_tail: Vec<f64> =
                    (i + 1..plan.len()).map(|j| charging.get(j)).collect();
                let battery_next = battery + watts(charging.get(i)) * tau - used;
                redistribute(
                    &mut plan[i + 1..],
                    &charging_tail,
                    tau,
                    battery_next.clamp(self.platform.battery.c_min, self.platform.battery.c_max),
                    self.platform.battery,
                    e_diff,
                    (floor, ceiling),
                )?;
            }

            battery = self
                .platform
                .battery
                .clamp(battery + watts(charging.get(i)) * tau - used);

            slots.push(ScheduledSlot {
                slot: i,
                budget,
                point,
                power,
                perf,
                switched,
                overhead,
            });
            current = point;
        }
        Ok(ParameterSchedule { slots })
    }

    /// Overhead-aware selection (lines 12–22). Returns the chosen point and
    /// the overhead actually paid.
    fn select(&self, budget: Watts, current: OperatingPoint) -> (OperatingPoint, Joules) {
        let tau = self.platform.tau;
        let candidate = self.pareto.nearest(budget);
        if candidate.point == current {
            return (current, Joules::ZERO);
        }
        let (n_chg, f_chg) = candidate.point.diff(&current);
        let overhead = self.platform.overheads.cost(n_chg, f_chg);
        if overhead.value() <= 0.0 {
            return (candidate.point, Joules::ZERO);
        }
        let reduced = watts(((budget * tau - overhead) / tau).value().max(0.0));
        let reduced_candidate = self.pareto.best_within(reduced);
        let stay_perf = self
            .pareto
            .frontier()
            .iter()
            .find(|r| r.point == current)
            .map(|r| r.perf.value())
            .unwrap_or(0.0);
        if reduced_candidate.perf.value() > stay_perf {
            let (n2, f2) = reduced_candidate.point.diff(&current);
            (
                reduced_candidate.point,
                self.platform.overheads.cost(n2, f2),
            )
        } else {
            (current, Joules::ZERO)
        }
    }

    fn power_of(&self, point: &OperatingPoint) -> Watts {
        if point.is_off() {
            self.platform.power.all_standby()
        } else {
            self.platform.board_power(point.workers, point.frequency)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SwitchOverheads;
    use crate::units::{joules, seconds};

    fn allocation() -> (PowerSeries, PowerSeries) {
        let charging = PowerSeries::new(
            seconds(4.8),
            vec![
                2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        let alloc = PowerSeries::new(
            seconds(4.8),
            vec![2.2, 2.0, 1.2, 1.2, 2.0, 2.3, 1.2, 0.9, 0.5, 0.5, 0.9, 1.1],
        )
        .unwrap();
        (alloc, charging)
    }

    #[test]
    fn plan_covers_every_slot() {
        let (alloc, charging) = allocation();
        let s = ParameterScheduler::new(Platform::pama()).unwrap();
        let plan = s.plan(&alloc, &charging, joules(8.0)).unwrap();
        assert_eq!(plan.slots.len(), 12);
    }

    #[test]
    fn selected_power_is_nearest_frontier_point() {
        let (alloc, charging) = allocation();
        let platform = Platform::pama();
        let s = ParameterScheduler::new(platform).unwrap();
        let plan = s.plan(&alloc, &charging, joules(8.0)).unwrap();
        for slot in &plan.slots {
            let err = (slot.power.value() - slot.budget.value()).abs();
            for r in s.table().frontier() {
                assert!(
                    err <= (r.power.value() - slot.budget.value()).abs() + 1e-9,
                    "slot {}: {} not nearest to budget {} (better: {})",
                    slot.slot,
                    slot.power,
                    slot.budget,
                    r.power
                );
            }
        }
    }

    #[test]
    fn bigger_budget_never_hurts_performance() {
        let (alloc, charging) = allocation();
        let s = ParameterScheduler::new(Platform::pama()).unwrap();
        let small = s.plan(&alloc.scale(0.5), &charging, joules(8.0)).unwrap();
        let large = s.plan(&alloc, &charging, joules(8.0)).unwrap();
        let p = Platform::pama();
        assert!(large.total_jobs(&p) >= small.total_jobs(&p));
    }

    #[test]
    fn free_overheads_switch_freely() {
        let (alloc, charging) = allocation();
        let s = ParameterScheduler::new(Platform::pama()).unwrap();
        let plan = s.plan(&alloc, &charging, joules(8.0)).unwrap();
        // The twin-peak allocation forces multiple distinct points.
        assert!(
            plan.switch_count() >= 2,
            "switches: {}",
            plan.switch_count()
        );
        assert!(plan.slots.iter().all(|s| s.overhead == Joules::ZERO));
    }

    #[test]
    fn prohibitive_overheads_freeze_the_point() {
        let (alloc, charging) = allocation();
        let mut platform = Platform::pama();
        platform.overheads = SwitchOverheads {
            processor_change: joules(100.0),
            frequency_change: joules(100.0),
        };
        let s = ParameterScheduler::new(platform).unwrap();
        let plan = s.plan(&alloc, &charging, joules(8.0)).unwrap();
        assert!(
            plan.switch_count() <= 1,
            "switches: {}",
            plan.switch_count()
        );
    }

    #[test]
    fn moderate_overheads_reduce_switching() {
        let (alloc, charging) = allocation();
        let free = ParameterScheduler::new(Platform::pama())
            .unwrap()
            .plan(&alloc, &charging, joules(8.0))
            .unwrap();
        let mut platform = Platform::pama();
        platform.overheads = SwitchOverheads {
            processor_change: joules(1.0),
            frequency_change: joules(2.0),
        };
        let costly = ParameterScheduler::new(platform)
            .unwrap()
            .plan(&alloc, &charging, joules(8.0))
            .unwrap();
        assert!(costly.switch_count() <= free.switch_count());
    }

    #[test]
    fn unpruned_table_yields_same_schedule() {
        let (alloc, charging) = allocation();
        let platform = Platform::pama();
        let pruned = ParameterScheduler::new(platform.clone())
            .unwrap()
            .plan(&alloc, &charging, joules(8.0))
            .unwrap();
        let unpruned = ParameterScheduler::with_table(
            platform.clone(),
            ParetoTable::build(&platform).unwrap(), // pruning correctness is checked in pareto tests
        )
        .plan(&alloc, &charging, joules(8.0))
        .unwrap();
        for (a, b) in pruned.slots.iter().zip(&unpruned.slots) {
            assert_eq!(a.point, b.point);
        }
    }

    #[test]
    fn plan_rejects_misaligned_schedules() {
        let (alloc, _) = allocation();
        let charging = PowerSeries::constant(seconds(4.8), 6, 2.36).unwrap();
        let s = ParameterScheduler::new(Platform::pama()).unwrap();
        assert!(matches!(
            s.plan(&alloc, &charging, joules(8.0)),
            Err(DpmError::SeriesMismatch {
                expected: 12,
                got: 6
            })
        ));
    }

    #[test]
    fn total_energy_accounts_overheads() {
        let (alloc, charging) = allocation();
        let mut platform = Platform::pama();
        platform.overheads = SwitchOverheads {
            processor_change: joules(0.5),
            frequency_change: joules(0.5),
        };
        let s = ParameterScheduler::new(platform.clone()).unwrap();
        let plan = s.plan(&alloc, &charging, joules(8.0)).unwrap();
        let base: Joules = plan.slots.iter().map(|s| s.power * platform.tau).sum();
        let with_oh = plan.total_energy(&platform);
        assert!(with_oh.value() >= base.value());
    }
}
