//! The controller processor's logic — the full Fig. 1 loop.
//!
//! On PAMA one of the eight PIMs is dedicated to control: it computes
//! `P_init`, watches the power-measurement board, and every `τ` sends
//! frequency and active/stand-by commands to the worker PIMs. This module
//! is that logic, host-side: given the initial allocation (§4.1) and the
//! Pareto table (§4.2), each [`DpmController::decide`] call
//!
//! 1. folds the previous slot's planned-vs-actual deviation — both usage
//!    (discrete parameters never hit the allocation exactly) and supply
//!    (the sun is not obliged to follow the forecast) — into the future
//!    plan with Algorithm 3;
//! 2. looks up the best operating point within the slot's (possibly
//!    just-revised) power budget;
//! 3. charges switch overheads against the candidate before committing
//!    (Algorithm 2 lines 14–22).

use super::update::redistribute;
use crate::alloc::InitialAllocation;
use crate::error::DpmError;
use crate::governor::{Governor, SlotObservation};
use crate::params::{OperatingPoint, ParetoTable};
use crate::platform::Platform;
use crate::series::PowerSeries;
use crate::units::{watts, Joules, Watts};
use dpm_telemetry::Recorder;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// One row of the controller's trace — the reproduction source for the
/// paper's Tables 3 and 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerRecord {
    /// Slot counter.
    pub slot: u64,
    /// Time at the slot start (s).
    pub time: f64,
    /// Allocated power for this slot after the Algorithm 3 update, W — the
    /// tables' `P_init(t)` column.
    pub allocated: Watts,
    /// Power of the operating point actually selected, W — the tables'
    /// "Used Power" column.
    pub selected_power: Watts,
    /// Forecast supply for this slot, W — "Expected charge".
    pub expected_supply: Watts,
    /// Measured supply for the *previous* slot, W — "Supplied ... Power".
    pub actual_supply_last: Watts,
    /// The chosen operating point.
    pub point: OperatingPoint,
    /// Snapshot of the rolling future plan (one period of slots), W — the
    /// tables' `P_init(0) … P_init(11)` columns.
    pub plan: Vec<f64>,
    /// Deviation folded in by Algorithm 3 this slot (J).
    pub e_diff: Joules,
}

/// The proposed dynamic power-management governor.
#[derive(Debug, Clone)]
pub struct DpmController {
    platform: Arc<Platform>,
    /// Shared Pareto frontier — built once per platform and shared across
    /// replans, governors, and fleet boards ([`Self::with_table`]).
    pareto: Arc<ParetoTable>,
    /// Periodic base allocation from §4.1, used to extend the rolling plan.
    base: PowerSeries,
    /// Periodic charging forecast.
    forecast: PowerSeries,
    /// Rolling future plan; `plan[0]` is the slot about to run.
    plan: VecDeque<f64>,
    /// Next base-allocation slot to append when the plan rolls.
    refill_cursor: usize,
    current: OperatingPoint,
    /// What we planned to dissipate last slot (for `E_diff`).
    last_planned: Joules,
    /// What we forecast the supply to be last slot.
    last_forecast_supply: Joules,
    /// Observed/forecast supply ratio from the latest informative slot.
    supply_ratio: f64,
    /// Derated-forecast scratch for the Algorithm 3 replan; reused across
    /// decides so a replan allocates nothing.
    charging_scratch: Vec<f64>,
    /// Whether decides append [`ControllerRecord`]s ([`Self::without_trace`]
    /// turns this off on hot paths that never read the trace).
    record_trace: bool,
    trace: Vec<ControllerRecord>,
    /// Telemetry sink (disabled by default; clones share the sink).
    telemetry: Recorder,
}

impl DpmController {
    /// Build from a §4.1 allocation and the forecast it was computed from,
    /// rating the platform's Pareto frontier on the spot.
    ///
    /// The rolling plan is primed with one full period of the allocation.
    /// Accepts the platform by value or pre-shared (`Platform` and
    /// `Arc<Platform>` both satisfy `Into<Arc<Platform>>`).
    ///
    /// # Errors
    /// Propagates [`Platform::validate`]; returns
    /// [`DpmError::SeriesMismatch`]/[`DpmError::InvalidSeries`] when the
    /// allocation and forecast disagree on slotting, and
    /// [`DpmError::EmptyScheduleWindow`] when they contain no slots.
    pub fn new(
        platform: impl Into<Arc<Platform>>,
        allocation: &InitialAllocation,
        forecast: PowerSeries,
    ) -> Result<Self, DpmError> {
        let platform = platform.into();
        let pareto = Arc::new(ParetoTable::build(&platform)?);
        Self::with_table(platform, allocation, forecast, pareto)
    }

    /// [`Self::new`] with a pre-built frontier, so one [`ParetoTable`] per
    /// platform serves every controller instead of being re-rated per
    /// construction. The table must have been built for `platform`.
    ///
    /// # Errors
    /// Same conditions as [`Self::new`].
    pub fn with_table(
        platform: impl Into<Arc<Platform>>,
        allocation: &InitialAllocation,
        forecast: PowerSeries,
        pareto: Arc<ParetoTable>,
    ) -> Result<Self, DpmError> {
        let platform = platform.into();
        platform.validate()?;
        allocation.allocation.check_aligned(&forecast)?;
        if forecast.is_empty() {
            return Err(DpmError::EmptyScheduleWindow);
        }
        let base = allocation.allocation.clone();
        let plan: VecDeque<f64> = base.values().iter().copied().collect();
        let slots = plan.len();
        Ok(Self {
            platform,
            pareto,
            base,
            forecast,
            plan,
            refill_cursor: 0,
            current: OperatingPoint::OFF,
            last_planned: Joules::ZERO,
            last_forecast_supply: Joules::ZERO,
            supply_ratio: 1.0,
            charging_scratch: Vec::with_capacity(slots),
            record_trace: true,
            trace: Vec::new(),
            telemetry: Recorder::disabled(),
        })
    }

    /// Attach a telemetry recorder; per-decide spans, replan counters, and
    /// Algorithm 3 events land in it. A [`Recorder::disabled`] handle (the
    /// default) keeps the instrumented paths at a branch's cost.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Stop accumulating [`ControllerRecord`]s. The Tables 3/5
    /// reproduction reads the trace; the campaign/sweep/fleet hot paths
    /// never do, and with recording off a decide allocates nothing.
    #[must_use]
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// The decision trace accumulated so far.
    pub fn trace(&self) -> &[ControllerRecord] {
        &self.trace
    }

    /// Drain the trace (e.g. between benchmark repetitions).
    pub fn take_trace(&mut self) -> Vec<ControllerRecord> {
        std::mem::take(&mut self.trace)
    }

    /// The platform this controller drives.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The board's physical dissipation bounds.
    fn power_bounds(&self) -> (Watts, Watts) {
        (
            self.platform.power.all_standby(),
            self.platform
                .board_power(self.platform.workers(), self.platform.f_max()),
        )
    }

    /// Forecast charging for future slot `i` (0 = the slot about to run),
    /// given the current slot counter.
    fn forecast_at(&self, now_slot: u64, i: usize) -> f64 {
        let idx = (now_slot as usize + i) % self.forecast.len();
        self.forecast.get(idx)
    }

    /// Algorithm 2's overhead-aware selection for a slot budget.
    fn select(&self, budget: Watts) -> OperatingPoint {
        let tau = self.platform.tau;
        let stay = self.current;
        let candidate = self.pareto.nearest(budget);
        if candidate.point == stay {
            return stay;
        }
        let (n_chg, f_chg) = candidate.point.diff(&stay);
        let overhead = self.platform.overheads.cost(n_chg, f_chg);
        if overhead.value() <= 0.0 {
            return candidate.point;
        }
        // Re-select with the overhead taken out of the slot's energy; if the
        // reduced-budget candidate still beats staying put, switch.
        let reduced = watts(((budget * tau - overhead) / tau).value().max(0.0));
        let reduced_candidate = self.pareto.best_within(reduced);
        let stay_perf = self
            .pareto
            .frontier()
            .iter()
            .find(|r| r.point == stay)
            .map(|r| r.perf.value())
            .unwrap_or(0.0);
        if reduced_candidate.perf.value() > stay_perf {
            reduced_candidate.point
        } else {
            stay
        }
    }

    /// Power drawn at an operating point (with the controller chip and
    /// standby floor included).
    fn power_of(&self, point: &OperatingPoint) -> Watts {
        if point.is_off() {
            self.platform.power.all_standby()
        } else {
            self.platform.board_power(point.workers, point.frequency)
        }
    }
}

impl Governor for DpmController {
    fn name(&self) -> &str {
        "proposed-dpm"
    }

    fn uses_surplus_energy(&self) -> bool {
        true // §4.1: allocated energy is spent on useful work, always
    }

    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        let _decide_span = self.telemetry.span("core.decide");
        self.telemetry.incr("core.decide.calls", 1);
        let tau = self.platform.tau;
        let bounds = self.power_bounds();

        // --- Algorithm 3: fold in last slot's deviations -----------------
        let e_diff = if obs.slot == 0 {
            Joules::ZERO
        } else {
            // Usage deviation: planned − actual (positive ⇒ energy left
            // over). Supply deviation: actual − forecast (positive ⇒ more
            // energy arrived than planned for).
            (self.last_planned - obs.used_last) + (obs.supplied_last - self.last_forecast_supply)
        };
        // Keep the supply-derating estimate current *before* the horizon
        // search, so a persistent fault shortens the redistribution window
        // to the slots that can actually absorb the correction.
        if obs.slot > 0 && self.last_forecast_supply.value() > 1e-9 {
            self.supply_ratio = (obs.supplied_last / self.last_forecast_supply).clamp(0.0, 2.0);
        }
        if e_diff.value().abs() > 1e-12 {
            let _replan_span = self.telemetry.span("core.replan");
            // Fill the derated-forecast scratch inline (forecast_at borrows
            // all of `self`, which would conflict with the scratch borrow)
            // and update the plan in place: `make_contiguous` preserves the
            // deque's logical order without allocating, so the whole replan
            // is allocation-free after the first decide.
            let n = self.plan.len();
            let f_len = self.forecast.len();
            self.charging_scratch.clear();
            for i in 0..n {
                let idx = (obs.slot as usize + i) % f_len;
                self.charging_scratch
                    .push(self.forecast.get(idx) * self.supply_ratio);
            }
            let battery_limits = self.platform.battery;
            let outcome = redistribute(
                self.plan.make_contiguous(),
                &self.charging_scratch,
                tau,
                obs.battery,
                battery_limits,
                e_diff,
                bounds,
            )?;
            self.telemetry.incr("core.replan.count", 1);
            self.telemetry
                .observe("core.replan.horizon_slots", outcome.horizon_slots as f64);
            self.telemetry.event(
                "core.replan",
                Some(obs.slot),
                obs.time.value(),
                &[
                    ("e_diff_j", e_diff.value()),
                    ("horizon_slots", outcome.horizon_slots as f64),
                    ("applied_j", outcome.applied.value()),
                ],
            );
        }

        // --- Algorithm 2: pick the operating point for this slot ---------
        let allocated = watts(self.plan.pop_front().ok_or(DpmError::EmptyScheduleWindow)?);
        // Keep the rolling plan one period long.
        self.plan.push_back(self.base.get(self.refill_cursor));
        self.refill_cursor = (self.refill_cursor + 1) % self.base.len();

        // Affordability guard (robustness beyond the paper's Algorithm 3,
        // which trusts the charging forecast when searching its horizon):
        // never command more power than the battery's usable charge plus
        // this slot's *derated* supply forecast can sustain, where the
        // derating is the supply ratio observed on the most recent slot
        // whose forecast was non-zero. Under a nominal supply the ratio is
        // 1 and the guard never binds — the §4.1 trajectory already
        // respects the window — but during a panel fault it stops the
        // controller from draining the battery against a dead forecast.
        let budget = if obs.slot == 0 {
            allocated
        } else {
            let usable = (obs.battery - self.platform.battery.c_min).max(Joules::ZERO);
            let expected_now = watts(self.forecast_at(obs.slot, 0)) * self.supply_ratio;
            let affordable = watts(usable.value() / tau.value() + expected_now.value());
            allocated.min(affordable.max(bounds.0))
        };

        let point = self.select(budget);
        let selected_power = self.power_of(&point);
        let (n_chg, f_chg) = point.diff(&self.current);
        let overhead = self.platform.overheads.cost(n_chg, f_chg);

        let expected_supply = watts(self.forecast_at(obs.slot, 0));
        if self.record_trace {
            self.trace.push(ControllerRecord {
                slot: obs.slot,
                time: obs.time.value(),
                allocated,
                selected_power,
                expected_supply,
                actual_supply_last: if obs.slot == 0 {
                    Watts::ZERO
                } else {
                    obs.supplied_last / tau
                },
                point,
                plan: self.plan.iter().copied().collect(),
                e_diff,
            });
        }

        self.last_planned = selected_power * tau + overhead;
        self.last_forecast_supply = expected_supply * tau;
        self.current = point;
        Ok(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AllocationProblem, InitialAllocator};
    use crate::platform::BatteryLimits;
    use crate::units::{joules, seconds, Seconds};

    fn setup() -> (Platform, InitialAllocation, PowerSeries) {
        let platform = Platform::pama();
        let charging = PowerSeries::new(
            seconds(4.8),
            vec![
                2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        let demand = PowerSeries::new(
            seconds(4.8),
            vec![1.6, 1.0, 0.3, 0.3, 1.0, 1.7, 1.6, 1.0, 0.3, 0.3, 1.0, 1.7],
        )
        .unwrap();
        let problem = AllocationProblem {
            charging: charging.clone(),
            demand,
            initial_charge: joules(8.0),
            limits: BatteryLimits::new(joules(0.5), joules(16.0)).unwrap(),
            p_floor: platform.power.all_standby(),
            p_ceiling: platform.board_power(7, platform.f_max()),
        };
        let alloc = InitialAllocator::new(problem).unwrap().compute().unwrap();
        (platform, alloc, charging)
    }

    fn obs(slot: u64, battery: f64, used: f64, supplied: f64) -> SlotObservation {
        SlotObservation {
            slot,
            time: Seconds(slot as f64 * 4.8),
            battery: joules(battery),
            used_last: joules(used),
            supplied_last: joules(supplied),
            backlog: 0,
        }
    }

    #[test]
    fn first_decision_follows_allocation() {
        let (platform, alloc, charging) = setup();
        let budget0 = alloc.allocation.get(0);
        let mut ctl = DpmController::new(platform, &alloc, charging).unwrap();
        let p = ctl.decide(&SlotObservation::initial(joules(8.0))).unwrap();
        let rec = &ctl.trace()[0];
        assert_eq!(rec.slot, 0);
        assert!((rec.allocated.value() - budget0).abs() < 1e-9);
        // Selected power never exceeds the budget.
        assert!(rec.selected_power.value() <= rec.allocated.value() + 1e-9);
        assert_eq!(rec.point, p);
    }

    #[test]
    fn misaligned_forecast_is_rejected() {
        let (platform, alloc, _) = setup();
        let short = PowerSeries::constant(seconds(4.8), 6, 2.36).unwrap();
        assert!(matches!(
            DpmController::new(platform, &alloc, short),
            Err(DpmError::SeriesMismatch {
                expected: 12,
                got: 6
            })
        ));
    }

    #[test]
    fn underuse_surplus_raises_future_plan() {
        let (platform, alloc, charging) = setup();
        let mut ctl = DpmController::new(platform, &alloc, charging).unwrap();
        ctl.decide(&SlotObservation::initial(joules(8.0))).unwrap();
        let planned = ctl.last_planned;
        let before: f64 = ctl.plan.iter().sum();
        // Report that we used 2 J less than planned, supply as forecast.
        let supplied = ctl.last_forecast_supply;
        ctl.decide(&obs(
            1,
            8.0 + 2.0,
            (planned - joules(2.0)).value(),
            supplied.value(),
        ))
        .unwrap();
        let rec = ctl.trace().last().unwrap();
        assert!(rec.e_diff.approx_eq(joules(2.0), 1e-9), "{:?}", rec.e_diff);
        // The plan grew somewhere (allowing for the pop/push roll).
        let after: f64 = ctl.plan.iter().sum();
        assert!(after + rec.allocated.value() > before - 1e-9);
    }

    #[test]
    fn supply_shortfall_shaves_future_plan() {
        let (platform, alloc, charging) = setup();
        let mut ctl = DpmController::new(platform, &alloc, charging.clone()).unwrap();
        ctl.decide(&SlotObservation::initial(joules(8.0))).unwrap();
        let planned = ctl.last_planned;
        let forecast = ctl.last_forecast_supply;
        // Supply came in 3 J short.
        ctl.decide(&obs(
            1,
            5.0,
            planned.value(),
            (forecast - joules(3.0)).value(),
        ))
        .unwrap();
        let rec = ctl.trace().last().unwrap();
        assert!(rec.e_diff.approx_eq(joules(-3.0), 1e-9), "{:?}", rec.e_diff);
    }

    #[test]
    fn trace_plan_snapshot_has_period_length() {
        let (platform, alloc, charging) = setup();
        let mut ctl = DpmController::new(platform, &alloc, charging).unwrap();
        for s in 0..5 {
            ctl.decide(&obs(s, 8.0, 0.5 * 4.8, 1.0 * 4.8)).unwrap();
        }
        for rec in ctl.trace() {
            assert_eq!(rec.plan.len(), 12);
        }
    }

    #[test]
    fn selection_tracks_budget_closely() {
        // Nearest-point selection: the chosen power must be within half
        // the widest frontier gap of the allocated budget (when the budget
        // lies inside the frontier's power range).
        let (platform, alloc, charging) = setup();
        let mut ctl = DpmController::new(platform.clone(), &alloc, charging).unwrap();
        let frontier = ParetoTable::build(&platform).unwrap();
        let max_gap = frontier
            .frontier()
            .windows(2)
            .map(|w| w[1].power.value() - w[0].power.value())
            .fold(0.0_f64, f64::max);
        for s in 0..24 {
            let p = ctl.decide(&obs(s, 8.0, 2.0, 2.0)).unwrap();
            let power = ctl.power_of(&p);
            let rec = ctl.trace().last().unwrap();
            let budget = rec.allocated.value().clamp(
                platform.power.all_standby().value(),
                frontier.peak().power.value(),
            );
            assert!(
                (power.value() - budget).abs() <= max_gap / 2.0 + 1e-9,
                "slot {s}: {power} vs budget {budget} (gap {max_gap})"
            );
        }
    }

    #[test]
    fn overhead_suppresses_marginal_switches() {
        let (mut platform, alloc, charging) = setup();
        platform.overheads = crate::platform::SwitchOverheads {
            processor_change: joules(50.0), // prohibitive
            frequency_change: joules(50.0),
        };
        let mut ctl = DpmController::new(platform, &alloc, charging).unwrap();
        let mut points = Vec::new();
        for s in 0..12 {
            points.push(ctl.decide(&obs(s, 8.0, 1.0, 1.0)).unwrap());
        }
        // With prohibitive overheads the controller should barely switch.
        let switches = points.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches <= 2, "switched {switches} times");
    }

    #[test]
    fn free_overheads_track_allocation_shape() {
        let (platform, alloc, charging) = setup();
        let mut ctl = DpmController::new(platform, &alloc, charging).unwrap();
        let mut powers = Vec::new();
        for s in 0..12 {
            // Feed back exactly what was planned so no deviation builds up.
            let planned = ctl.last_planned.value();
            let forecast = ctl.last_forecast_supply.value();
            ctl.decide(&obs(s, 8.0, planned, forecast)).unwrap();
            powers.push(ctl.trace().last().unwrap().selected_power.value());
        }
        // Selected power varies across the period (tracks the twin peaks).
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min + 0.1, "flat selection: {powers:?}");
    }
}
