//! Analysis windows, quantized to Q15.
//!
//! The FORTE trigger chain windows each capture before the FFT to contain
//! spectral leakage from the strong VHF carriers the satellite sees.

use crate::fixed::{CQ15, Q15};

/// Window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// No shaping (all ones).
    Rectangular,
    /// Hann: `0.5 − 0.5·cos(2πi/(N−1))`.
    Hann,
    /// Hamming: `0.54 − 0.46·cos(2πi/(N−1))`.
    Hamming,
    /// Blackman: `0.42 − 0.5·cos + 0.08·cos(2·)`.
    Blackman,
}

/// A precomputed Q15 window.
#[derive(Debug, Clone)]
pub struct Window {
    kind: WindowKind,
    coeffs: Vec<Q15>,
}

impl Window {
    /// Build a window of length `n ≥ 2`.
    pub fn new(kind: WindowKind, n: usize) -> Self {
        assert!(n >= 2, "window needs at least two points");
        let coeffs = (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                let w = match kind {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x).cos(),
                    WindowKind::Blackman => {
                        0.42 - 0.5 * (2.0 * std::f64::consts::PI * x).cos()
                            + 0.08 * (4.0 * std::f64::consts::PI * x).cos()
                    }
                };
                Q15::from_f64(w.min(0.999_969)) // keep strictly < 1.0
            })
            .collect();
        Self { kind, coeffs }
    }

    /// Window length.
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Never true (constructor requires ≥ 2 points).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Which shape this is.
    #[inline]
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// The Q15 coefficients.
    #[inline]
    pub fn coeffs(&self) -> &[Q15] {
        &self.coeffs
    }

    /// Apply in place to a complex buffer of the same length.
    pub fn apply(&self, data: &mut [CQ15]) {
        assert_eq!(data.len(), self.coeffs.len(), "window/buffer mismatch");
        for (d, &w) in data.iter_mut().zip(&self.coeffs) {
            *d = CQ15::new(d.re.sat_mul(w), d.im.sat_mul(w));
        }
    }

    /// Coherent gain: mean coefficient (the factor by which a tone's
    /// spectral peak is attenuated).
    pub fn coherent_gain(&self) -> f64 {
        self.coeffs.iter().map(|c| c.to_f64()).sum::<f64>() / self.coeffs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = Window::new(WindowKind::Rectangular, 16);
        for &c in w.coeffs() {
            assert!(c.to_f64() > 0.999);
        }
        assert!((w.coherent_gain() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn hann_endpoints_are_zero_and_middle_is_one() {
        let w = Window::new(WindowKind::Hann, 65);
        assert_eq!(w.coeffs()[0], Q15::ZERO);
        assert_eq!(w.coeffs()[64], Q15::ZERO);
        assert!(w.coeffs()[32].to_f64() > 0.99);
    }

    #[test]
    fn hann_coherent_gain_is_half() {
        let w = Window::new(WindowKind::Hann, 1024);
        assert!((w.coherent_gain() - 0.5).abs() < 1e-2);
    }

    #[test]
    fn hamming_floor_is_nonzero() {
        let w = Window::new(WindowKind::Hamming, 64);
        assert!((w.coeffs()[0].to_f64() - 0.08).abs() < 1e-2);
    }

    #[test]
    fn blackman_is_symmetric() {
        let w = Window::new(WindowKind::Blackman, 128);
        for i in 0..64 {
            assert_eq!(w.coeffs()[i], w.coeffs()[127 - i], "i = {i}");
        }
    }

    #[test]
    fn apply_attenuates_edges() {
        let w = Window::new(WindowKind::Hann, 32);
        let mut data = vec![CQ15::from_f64(0.5, 0.5); 32];
        w.apply(&mut data);
        assert_eq!(data[0], CQ15::ZERO);
        let (re, _) = data[16].to_f64();
        assert!(re > 0.45);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn apply_rejects_wrong_length() {
        let w = Window::new(WindowKind::Hann, 32);
        let mut data = vec![CQ15::ZERO; 16];
        w.apply(&mut data);
    }
}
