//! The full FORTE mission: synthetic RF captures run through the
//! fixed-point detection chain, with the dynamic power manager deciding
//! how many PIMs analyse them each slot.
//!
//! This example stitches all the crates together end-to-end:
//! `dpm-fft` generates captures and detects transients, its cycle model
//! calibrates the Amdahl workload, `dpm-core` allocates power and governs,
//! `dpm-sim` plays the orbital environment.
//!
//! ```sh
//! cargo run --example satellite_forte
//! ```

use dpm_bench::experiments;
use dpm_core::prelude::*;
use dpm_fft::prelude::*;
use dpm_sim::prelude::*;
use dpm_workloads::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- calibrate the platform's workload from the FFT cycle model --------
    let cycle_model = CycleModel::pama_fft();
    let mut platform = Platform::pama();
    platform.workload = cycle_model.as_workload(2048, Hertz::from_mhz(20.0));
    println!(
        "FFT job: {:.1} s at 20 MHz on 1 PIM, {:.2} s on 7 PIMs at 80 MHz",
        cycle_model.job_time(2048, Hertz::from_mhz(20.0)).value(),
        cycle_model
            .parallel_job_time(2048, 7, Hertz::from_mhz(80.0))
            .value()
    );

    // --- run the actual signal chain on a few captures ---------------------
    let detector = TransientDetector::new(DetectorConfig::default());
    let mut events = 0;
    let mut triggers = 0;
    println!("\nscreening 20 synthetic captures:");
    for seed in 0..20u64 {
        let spec = if seed % 3 == 0 {
            CaptureSpec::with_transient()
        } else {
            CaptureSpec::background_only()
        };
        let capture = dpm_fft::signal::generate(&spec, seed);
        let result = detector.detect(&capture);
        triggers += result.triggered as usize;
        events += result.is_event as usize;
        if result.is_event {
            println!(
                "  capture {seed:>2}: RF EVENT  (occupancy {:.0}%, carrier share {:.0}%)",
                100.0 * result.occupied_fraction,
                100.0 * result.carrier_fraction
            );
        }
    }
    println!("  {triggers} triggers, {events} confirmed events");

    // --- demonstrate the Fig. 2 fork-join execution ------------------------
    let capture = dpm_fft::signal::generate(&CaptureSpec::with_transient(), 99);
    let mut data = quantize(&capture);
    let forkjoin = ForkJoinFft::new(2048, 7);
    let times = forkjoin.transform(&mut data);
    println!(
        "\nfork-join 2K FFT on 7 host workers: serial fraction {:.1}% (shape {:?})",
        100.0 * times.serial_fraction(),
        forkjoin.shape()
    );

    // --- fly the mission under the proposed governor -----------------------
    let scenario = scenarios::scenario_one();
    let allocation = experiments::initial_allocation(&platform, &scenario)?;
    let mut governor =
        DpmController::new(platform.clone(), &allocation, scenario.charging.clone())?;

    let mut sim = Simulation::new(
        platform.clone(),
        Box::new(NoisySource::new(
            TraceSource::new(scenario.charging.clone()),
            0.1,
            platform.tau,
            7,
        )),
        Box::new(PoissonGenerator::new(scenario.event_rates(&platform), 42)),
        scenario.initial_charge,
        SimConfig {
            periods: 4,
            ..SimConfig::default()
        },
    )?;
    // A storm passage mid-mission.
    sim.schedule(seconds(130.0), Disturbance::EventBurst { count: 12 });

    let report = sim.run(&mut governor)?;
    println!("\nmission report (4 orbits, noisy sun, Poisson events, one storm):");
    println!("  {}", report.summary());
    println!(
        "  mean event latency {:.1} s (worst {:.1} s), {} dropped",
        report.mean_latency, report.max_latency, report.dropped
    );

    println!("\nper-orbit slot decisions (first orbit):");
    for rec in report.slots.iter().take(12) {
        println!(
            "  t = {:>5.1} s  {}p @ {:>2.0} MHz  used {:>5.2} J  battery {:>5.1} J  backlog {}",
            rec.time, rec.workers, rec.freq_mhz, rec.used, rec.battery, rec.backlog
        );
    }
    Ok(())
}
