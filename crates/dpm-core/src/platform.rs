//! Platform description: everything §2 defines about the machine and its
//! energy store, bundled so the three algorithms share one source of truth.

use crate::error::DpmError;
use crate::model::{AmdahlWorkload, ModePower, PerfModel, PowerModel, VoltageFrequencyMap};
use crate::units::{hertz, joules, seconds, volts, Hertz, Joules, Seconds, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Switching overheads (§4.2): energy cost charged when the parameter
/// scheduler changes the number of active processors or the clock frequency.
///
/// On PAMA a frequency change writes the divisor to the FPGA, enters
/// standby, and is woken 10 cycles later — so `OH_f` exceeds `OH_n` in
/// time, though both are tiny next to `τ = 4.8 s`. The paper's simulation
/// sets both to zero; the benches sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SwitchOverheads {
    /// Energy to change the active-processor count by any amount.
    pub processor_change: Joules,
    /// Energy to change the clock frequency.
    pub frequency_change: Joules,
}

impl SwitchOverheads {
    /// The paper's simulation assumption: free switching.
    pub const FREE: Self = Self {
        processor_change: Joules(0.0),
        frequency_change: Joules(0.0),
    };

    /// Total overhead for a transition between two operating points.
    pub fn cost(&self, n_changed: bool, f_changed: bool) -> Joules {
        let mut c = Joules::ZERO;
        if n_changed {
            c += self.processor_change;
        }
        if f_changed {
            c += self.frequency_change;
        }
        c
    }
}

/// Rechargeable-battery limits (§2): capacity window `[C_min, C_max]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryLimits {
    /// Maximum charge the battery can hold; supply beyond this is wasted.
    pub c_max: Joules,
    /// Minimum charge that must be maintained at all times.
    pub c_min: Joules,
}

impl BatteryLimits {
    /// Construct, validating `0 ≤ C_min < C_max`.
    ///
    /// # Errors
    /// [`DpmError::BatteryLimitViolation`] when the window is negative or
    /// inverted.
    pub fn new(c_min: Joules, c_max: Joules) -> Result<Self, DpmError> {
        if c_min.value() < 0.0 || c_max.value() <= c_min.value() {
            return Err(DpmError::BatteryLimitViolation {
                c_min: c_min.value(),
                c_max: c_max.value(),
            });
        }
        Ok(Self { c_max, c_min })
    }

    /// Usable window `C_max − C_min`.
    #[inline]
    pub fn window(&self) -> Joules {
        self.c_max - self.c_min
    }

    /// Clamp a charge level into the window.
    #[inline]
    pub fn clamp(&self, e: Joules) -> Joules {
        e.clamp(self.c_min, self.c_max)
    }

    /// True when `e` lies in `[C_min, C_max]` within tolerance.
    pub fn contains(&self, e: Joules, tol: f64) -> bool {
        e.value() >= self.c_min.value() - tol && e.value() <= self.c_max.value() + tol
    }
}

/// Full machine description shared by Algorithms 1–3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Total processors `N` (on PAMA: 8, of which one is the controller).
    pub processors: usize,
    /// Processors reserved for control and never scheduled for jobs.
    pub reserved: usize,
    /// Discrete selectable frequencies, ascending, excluding "off".
    pub frequencies: Vec<Hertz>,
    /// Supply-voltage range.
    pub v_min: Volts,
    /// Supply-voltage range.
    pub v_max: Volts,
    /// Voltage–frequency law `g(v)`.
    pub vf: VoltageFrequencyMap,
    /// Eq. 5/6 power model.
    pub power: PowerModel,
    /// The fork-join workload (Eq. 2/3).
    pub workload: AmdahlWorkload,
    /// Parameter-update interval `τ`.
    pub tau: Seconds,
    /// Battery capacity window.
    pub battery: BatteryLimits,
    /// Switching overheads `OH_n`, `OH_f`.
    pub overheads: SwitchOverheads,
}

impl Platform {
    /// The PAMA board of §5: 8 M32R/D PIMs (1 controller + 7 workers),
    /// frequencies {20, 40, 80} MHz, fixed 3.3 V, 2K-FFT workload with
    /// `Tt = 4.8 s` at 20 MHz, `τ = 4.8 s`.
    ///
    /// The battery window is sized to the scenarios' energy scale: the
    /// charging schedules of Figs. 3–4 integrate to ~70 J per 57.6 s
    /// period, and the paper's initial-allocation tables show the
    /// trajectory confined to a window of a few joules with a minimum
    /// threshold of 0.098 of it — we use `C_min = 0.5 J`, `C_max = 16 J`,
    /// which reproduces the qualitative pinning behaviour.
    pub fn pama() -> Self {
        let v = volts(3.3);
        let frequencies = vec![
            Hertz::from_mhz(20.0),
            Hertz::from_mhz(40.0),
            Hertz::from_mhz(80.0),
        ];
        let vf = VoltageFrequencyMap::Fixed {
            voltage: v,
            f_max: Hertz::from_mhz(80.0),
        };
        let power =
            PowerModel::calibrated_unchecked(ModePower::M32RD, Hertz::from_mhz(80.0), v, 0.0, 8);
        // The FORTE FFT job: 4.8 s at 20 MHz on one worker; scatter/gather
        // over the ring serializes ~8% of it. Constants satisfy
        // 0 ≤ Ts ≤ Tt by inspection, so the struct is built directly.
        let workload = AmdahlWorkload {
            total: seconds(4.8),
            serial: seconds(0.384),
            f_ref: Hertz::from_mhz(20.0),
        };
        Self {
            processors: 8,
            reserved: 1,
            frequencies,
            v_min: v,
            v_max: v,
            vf,
            power,
            workload,
            tau: seconds(4.8),
            // Literal window (0 ≤ 0.5 < 16 by inspection); the fallible
            // constructor is for externally supplied limits.
            battery: BatteryLimits {
                c_min: joules(0.5),
                c_max: joules(16.0),
            },
            overheads: SwitchOverheads::FREE,
        }
    }

    /// A hypothetical DVFS-capable variant of PAMA (for exercising the
    /// Eq. 11–18 voltage analysis): affine `g(v)` from 0.9 V, 1.0–3.3 V,
    /// same workload and power scale.
    pub fn pama_dvfs() -> Self {
        let mut p = Self::pama();
        p.v_min = volts(1.0);
        p.v_max = volts(3.3);
        p.vf = VoltageFrequencyMap::Affine {
            // g(3.3) = 80 MHz with 0.9 V threshold.
            slope: 80.0e6 / (3.3 - 0.9),
            threshold: volts(0.9),
        };
        p
    }

    /// Worker processors available for jobs, `N − reserved`.
    #[inline]
    pub fn workers(&self) -> usize {
        self.processors - self.reserved
    }

    /// Fastest selectable frequency. A platform with no frequencies (which
    /// [`Platform::validate`] rejects) reports 0 Hz.
    pub fn f_max(&self) -> Hertz {
        debug_assert!(!self.frequencies.is_empty());
        self.frequencies.last().copied().unwrap_or(hertz(0.0))
    }

    /// Slowest selectable (non-zero) frequency, with the same 0 Hz fallback
    /// as [`Platform::f_max`].
    pub fn f_min(&self) -> Hertz {
        debug_assert!(!self.frequencies.is_empty());
        self.frequencies.first().copied().unwrap_or(hertz(0.0))
    }

    /// Eq. 11 voltage for a frequency, or `None` when unattainable.
    pub fn voltage_for(&self, f: Hertz) -> Option<Volts> {
        self.vf.operating_voltage(f, self.v_min, self.v_max)
    }

    /// The perf model bundled from the platform's pieces.
    pub fn perf_model(&self) -> PerfModel {
        PerfModel::new(self.workload, self.vf.clone())
    }

    /// Board power at a homogeneous operating point (workers + controller
    /// active; controller runs at the same frequency, matching §5 where the
    /// controller PIM participates in power draw).
    pub fn board_power(&self, n_workers: usize, f: Hertz) -> Watts {
        let v = self.voltage_for(f).unwrap_or(self.v_max);
        let active = if n_workers == 0 {
            0
        } else {
            n_workers + self.reserved
        };
        self.power.board_power(active, f, v)
    }

    /// Validate internal consistency; called by constructors of the
    /// scheduling structs so a malformed hand-built platform fails fast.
    ///
    /// # Errors
    /// [`DpmError::InvalidPlatform`] naming the first violated constraint,
    /// or [`DpmError::BatteryLimitViolation`] for a bad capacity window.
    pub fn validate(&self) -> Result<(), DpmError> {
        let invalid = |msg: &str| Err(DpmError::InvalidPlatform(msg.into()));
        if self.processors == 0 {
            return invalid("platform needs at least one processor");
        }
        if self.reserved >= self.processors {
            return invalid("reserved processors must leave at least one worker");
        }
        if self.frequencies.is_empty() {
            return invalid("platform needs at least one frequency");
        }
        if !self
            .frequencies
            .windows(2)
            .all(|w| w[1].value() > w[0].value())
        {
            return invalid("frequencies must be strictly ascending");
        }
        if self.v_min.value() > self.v_max.value() {
            return invalid("v_min must not exceed v_max");
        }
        if self.tau.value() <= 0.0 {
            return invalid("tau must be positive");
        }
        if self.power.total_processors != self.processors {
            return invalid("power model processor count must match platform");
        }
        if self.battery.c_min.value() < 0.0
            || self.battery.c_max.value() <= self.battery.c_min.value()
        {
            return Err(DpmError::BatteryLimitViolation {
                c_min: self.battery.c_min.value(),
                c_max: self.battery.c_max.value(),
            });
        }
        for &f in &self.frequencies {
            if self.voltage_for(f).is_none() {
                return Err(DpmError::InvalidPlatform(format!(
                    "frequency {} is unattainable at v_max {}",
                    f, self.v_max
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pama_is_valid() {
        let p = Platform::pama();
        assert!(p.validate().is_ok());
        assert_eq!(p.workers(), 7);
        assert_eq!(p.f_max(), Hertz::from_mhz(80.0));
        assert_eq!(p.f_min(), Hertz::from_mhz(20.0));
    }

    #[test]
    fn pama_dvfs_is_valid() {
        let p = Platform::pama_dvfs();
        assert!(p.validate().is_ok());
        // 80 MHz needs full 3.3 V under the affine law.
        let v = p.voltage_for(Hertz::from_mhz(80.0)).unwrap();
        assert!((v.value() - 3.3).abs() < 1e-9);
        // 20 MHz needs less.
        let v20 = p.voltage_for(Hertz::from_mhz(20.0)).unwrap();
        assert!(v20.value() < 1.6 && v20.value() >= 1.0, "{v20}");
    }

    #[test]
    fn board_power_all_workers_at_max() {
        let p = Platform::pama();
        // 7 workers + controller at 80 MHz.
        let w = p.board_power(7, Hertz::from_mhz(80.0));
        assert!((w.value() - 8.0 * 0.546).abs() < 1e-9, "{w}");
    }

    #[test]
    fn board_power_zero_workers_is_standby_floor() {
        let p = Platform::pama();
        let w = p.board_power(0, Hertz::from_mhz(20.0));
        assert!((w.value() - 8.0 * 0.0066).abs() < 1e-12);
    }

    #[test]
    fn battery_limits_validate_and_clamp() {
        let b = BatteryLimits::new(joules(0.5), joules(16.0)).unwrap();
        assert_eq!(b.window(), joules(15.5));
        assert_eq!(b.clamp(joules(20.0)), joules(16.0));
        assert_eq!(b.clamp(joules(0.0)), joules(0.5));
        assert!(b.contains(joules(5.0), 0.0));
        assert!(!b.contains(joules(17.0), 0.0));
    }

    #[test]
    fn battery_limits_reject_inverted_window() {
        assert_eq!(
            BatteryLimits::new(joules(5.0), joules(1.0)),
            Err(DpmError::BatteryLimitViolation {
                c_min: 5.0,
                c_max: 1.0
            })
        );
        assert!(BatteryLimits::new(joules(-1.0), joules(1.0)).is_err());
    }

    #[test]
    fn validation_catches_inverted_battery_window() {
        let mut p = Platform::pama();
        p.battery.c_min = joules(20.0);
        assert!(matches!(
            p.validate(),
            Err(DpmError::BatteryLimitViolation { .. })
        ));
    }

    #[test]
    fn overhead_cost_cases() {
        let oh = SwitchOverheads {
            processor_change: joules(0.1),
            frequency_change: joules(0.2),
        };
        assert_eq!(oh.cost(false, false), Joules::ZERO);
        assert_eq!(oh.cost(true, false), joules(0.1));
        assert_eq!(oh.cost(false, true), joules(0.2));
        assert!(oh.cost(true, true).approx_eq(joules(0.3), 1e-12));
    }

    #[test]
    fn validation_catches_misordered_frequencies() {
        let mut p = Platform::pama();
        p.frequencies = vec![Hertz::from_mhz(80.0), Hertz::from_mhz(20.0)];
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_unattainable_frequency() {
        let mut p = Platform::pama();
        p.frequencies.push(Hertz::from_mhz(160.0));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_no_workers() {
        let mut p = Platform::pama();
        p.reserved = 8;
        assert!(p.validate().is_err());
    }
}
