//! Performance models: Eq. 1–3 and the Amdahl fork-join workload.
//!
//! The applications the paper targets are parallel jobs with a serial
//! initial/final stage and a fully parallel middle stage (the Fig. 2 task
//! graph: `S → {T1 … TN} → E`). With `Tt` the single-processor execution
//! time and `Ts` the serial portion, Amdahl's law gives
//!
//! ```text
//! Perf(n) = c0 / (Ts + (Tt − Ts)/n)                      (Eq. 2)
//! Perf(n, f, v) = c1 · min(f, g(v)) / (Ts + (Tt − Ts)/n) (Eq. 3)
//! ```
//!
//! Performance is *throughput*: jobs completed per second. We normalize so
//! that one processor at the reference frequency completes `1/Tt` jobs/s,
//! i.e. `c1 = Tt / f_ref` — then `Perf(1, f_ref) = 1/Tt` as expected, and
//! the units of [`Throughput`] are physical rather than abstract.

use super::vf::VoltageFrequencyMap;
use crate::error::DpmError;
use crate::units::{Hertz, Seconds, Volts};
use serde::{Deserialize, Serialize};

/// Jobs completed per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Throughput(pub f64);

impl Throughput {
    /// Zero throughput (all processors off).
    pub const ZERO: Self = Self(0.0);

    /// Raw jobs-per-second magnitude.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Jobs completed over a duration.
    #[inline]
    pub fn jobs_over(self, dt: Seconds) -> f64 {
        self.0 * dt.value()
    }
}

/// The Fig. 2 fork-join workload characterized by Amdahl's law.
///
/// Times are measured at a **reference frequency** `f_ref` (for the PAMA
/// evaluation: the 2K-sample fixed-point FFT takes `Tt = 4.8 s` at
/// 20 MHz). At frequency `f` every stage shrinks by `f_ref / f` — the
/// paper's simplifying assumption that memory latency and dependencies scale
/// with frequency (its footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmdahlWorkload {
    /// Total single-processor execution time `Tt` at `f_ref`.
    pub total: Seconds,
    /// Serial (non-parallelizable) portion `Ts` at `f_ref`, `0 ≤ Ts ≤ Tt`.
    pub serial: Seconds,
    /// Frequency at which `total`/`serial` were measured.
    pub f_ref: Hertz,
}

impl AmdahlWorkload {
    /// Construct, validating `0 ≤ Ts ≤ Tt` and positive `Tt`, `f_ref`.
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] naming the out-of-range quantity.
    pub fn new(total: Seconds, serial: Seconds, f_ref: Hertz) -> Result<Self, DpmError> {
        if !(total.value() > 0.0) {
            return Err(DpmError::InvalidParameter {
                name: "Tt",
                reason: format!("must be positive, got {total}"),
            });
        }
        if !(0.0..=total.value()).contains(&serial.value()) {
            return Err(DpmError::InvalidParameter {
                name: "Ts",
                reason: format!("must lie in [0, Tt], got {serial} with Tt = {total}"),
            });
        }
        if !(f_ref.value() > 0.0) {
            return Err(DpmError::InvalidParameter {
                name: "f_ref",
                reason: format!("reference frequency must be positive, got {f_ref}"),
            });
        }
        Ok(Self {
            total,
            serial,
            f_ref,
        })
    }

    /// An embarrassingly parallel workload (`Ts = 0`).
    ///
    /// # Errors
    /// Same conditions as [`AmdahlWorkload::new`].
    pub fn fully_parallel(total: Seconds, f_ref: Hertz) -> Result<Self, DpmError> {
        Self::new(total, Seconds::ZERO, f_ref)
    }

    /// Fraction of work that parallelizes, `(Tt − Ts)/Tt`.
    #[inline]
    pub fn parallel_fraction(&self) -> f64 {
        (self.total.value() - self.serial.value()) / self.total.value()
    }

    /// Per-job execution time on `n` processors at `f_ref`:
    /// `Ts + (Tt − Ts)/n`. Asking for `n = 0` is a scheduler bug
    /// (`debug_assert!`); release builds evaluate at `n = 1`.
    pub fn time_on(&self, n: usize) -> Seconds {
        debug_assert!(n >= 1, "at least one processor must be active");
        self.serial + (self.total - self.serial) / n.max(1) as f64
    }

    /// Amdahl speedup `time_on(1)/time_on(n)`.
    pub fn speedup(&self, n: usize) -> f64 {
        self.total / self.time_on(n)
    }

    /// The §4.2 decision ratio `n·Ts / (Tt − Ts)` (Eqs. 14 & 17). Returns
    /// `f64::INFINITY` when the workload is fully serial — the paper
    /// explicitly drops that case ("no need to increase the number of
    /// processors").
    pub fn decision_ratio(&self, n: usize) -> f64 {
        let par = self.total.value() - self.serial.value();
        if par <= 0.0 {
            f64::INFINITY
        } else {
            n as f64 * self.serial.value() / par
        }
    }

    /// The Eq. 18 processor-count breakpoint `2·(Tt/Ts − 1)`, i.e. the `n`
    /// at which `n·Ts/(Tt − Ts) = 2` and adding processors stops beating
    /// raising frequency. `None` for a fully parallel workload (`Ts = 0`),
    /// where adding processors always wins.
    pub fn breakpoint_processors(&self) -> Option<f64> {
        if self.serial.value() <= 0.0 {
            None
        } else {
            Some(2.0 * (self.total.value() / self.serial.value() - 1.0))
        }
    }
}

/// Eq. 3 evaluator: throughput of `n` processors at `(f, v)` for a given
/// workload and voltage–frequency law.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// The fork-join workload.
    pub workload: AmdahlWorkload,
    /// The `g(v)` law used by the `min(f, g(v))` clamp.
    pub vf: VoltageFrequencyMap,
}

impl PerfModel {
    /// Create a model.
    pub fn new(workload: AmdahlWorkload, vf: VoltageFrequencyMap) -> Self {
        Self { workload, vf }
    }

    /// Effective clock: `min(f, g(v))` (Eq. 1). Requesting a frequency the
    /// voltage cannot sustain silently runs at `g(v)` — which is how the
    /// hardware behaves (the part simply fails timing above it; the model
    /// treats it as clamped, the scheduler never requests such points).
    pub fn effective_frequency(&self, f: Hertz, v: Volts) -> Hertz {
        f.min(self.vf.max_frequency(v))
    }

    /// Eq. 3: throughput of `n` processors at `(f, v)`. Zero when `n = 0`.
    pub fn throughput(&self, n: usize, f: Hertz, v: Volts) -> Throughput {
        if n == 0 {
            return Throughput::ZERO;
        }
        let eff = self.effective_frequency(f, v);
        if eff.value() <= 0.0 {
            return Throughput::ZERO;
        }
        // Job time at f_ref, rescaled by f_ref/eff.
        let t = self.workload.time_on(n).value() * (self.workload.f_ref.value() / eff.value());
        Throughput(1.0 / t)
    }

    /// Per-job latency at `(n, f, v)`; `None` when nothing runs.
    pub fn job_latency(&self, n: usize, f: Hertz, v: Volts) -> Option<Seconds> {
        let tp = self.throughput(n, f, v);
        (tp.value() > 0.0).then(|| Seconds(1.0 / tp.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{seconds, volts, Hertz};

    fn fft_workload() -> AmdahlWorkload {
        // The PAMA measurement: 2K FFT, 4.8 s at 20 MHz; assume 10% serial
        // scatter/gather for tests.
        AmdahlWorkload::new(seconds(4.8), seconds(0.48), Hertz::from_mhz(20.0)).unwrap()
    }

    fn fixed_vf() -> VoltageFrequencyMap {
        VoltageFrequencyMap::Fixed {
            voltage: volts(3.3),
            f_max: Hertz::from_mhz(80.0),
        }
    }

    #[test]
    fn single_processor_reference_throughput() {
        let m = PerfModel::new(fft_workload(), fixed_vf());
        let tp = m.throughput(1, Hertz::from_mhz(20.0), volts(3.3));
        assert!((tp.value() - 1.0 / 4.8).abs() < 1e-12);
    }

    #[test]
    fn throughput_scales_linearly_with_frequency() {
        let m = PerfModel::new(fft_workload(), fixed_vf());
        let t20 = m.throughput(1, Hertz::from_mhz(20.0), volts(3.3));
        let t80 = m.throughput(1, Hertz::from_mhz(80.0), volts(3.3));
        assert!((t80.value() / t20.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_speedup_saturates() {
        let w = fft_workload();
        assert!((w.speedup(1) - 1.0).abs() < 1e-12);
        let s7 = w.speedup(7);
        // Upper bound Tt/Ts = 10.
        assert!(s7 > 4.0 && s7 < 10.0, "s7 = {s7}");
        assert!(w.speedup(8) > s7);
        assert!(w.speedup(1000) < 10.0);
    }

    #[test]
    fn fully_parallel_speedup_is_linear() {
        let w = AmdahlWorkload::fully_parallel(seconds(4.8), Hertz::from_mhz(20.0)).unwrap();
        assert!((w.speedup(7) - 7.0).abs() < 1e-12);
        assert_eq!(w.decision_ratio(7), 0.0);
        assert_eq!(w.breakpoint_processors(), None);
    }

    #[test]
    fn fully_serial_ratio_is_infinite() {
        let w = AmdahlWorkload::new(seconds(4.8), seconds(4.8), Hertz::from_mhz(20.0)).unwrap();
        assert!(w.decision_ratio(1).is_infinite());
        assert!((w.speedup(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decision_ratio_matches_eq17_threshold() {
        let w = fft_workload(); // Ts/Tt = 0.1 ⇒ breakpoint n = 2·(10−1) = 18
        let bp = w.breakpoint_processors().unwrap();
        assert!((bp - 18.0).abs() < 1e-9);
        assert!(w.decision_ratio(18) - 2.0 < 1e-9);
        assert!(w.decision_ratio(19) > 2.0);
        assert!(w.decision_ratio(17) < 2.0);
    }

    #[test]
    fn effective_frequency_clamps_to_gv() {
        let m = PerfModel::new(
            fft_workload(),
            VoltageFrequencyMap::Affine {
                slope: 20.0e6,
                threshold: volts(0.0),
            },
        );
        // g(2.0 V) = 40 MHz; requesting 80 MHz runs at 40.
        let eff = m.effective_frequency(Hertz::from_mhz(80.0), volts(2.0));
        assert!((eff.mhz() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn zero_processors_zero_throughput() {
        let m = PerfModel::new(fft_workload(), fixed_vf());
        assert_eq!(
            m.throughput(0, Hertz::from_mhz(80.0), volts(3.3)),
            Throughput::ZERO
        );
        assert!(m
            .job_latency(0, Hertz::from_mhz(80.0), volts(3.3))
            .is_none());
    }

    #[test]
    fn job_latency_inverts_throughput() {
        let m = PerfModel::new(fft_workload(), fixed_vf());
        let lat = m.job_latency(4, Hertz::from_mhz(40.0), volts(3.3)).unwrap();
        let tp = m.throughput(4, Hertz::from_mhz(40.0), volts(3.3));
        assert!((lat.value() * tp.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jobs_over_duration() {
        let tp = Throughput(0.5);
        assert_eq!(tp.jobs_over(seconds(10.0)), 5.0);
    }

    #[test]
    fn rejects_serial_exceeding_total() {
        assert!(matches!(
            AmdahlWorkload::new(seconds(1.0), seconds(2.0), Hertz::from_mhz(20.0)),
            Err(DpmError::InvalidParameter { name: "Ts", .. })
        ));
        assert!(matches!(
            AmdahlWorkload::new(seconds(0.0), seconds(0.0), Hertz::from_mhz(20.0)),
            Err(DpmError::InvalidParameter { name: "Tt", .. })
        ));
        assert!(matches!(
            AmdahlWorkload::new(seconds(1.0), seconds(0.5), Hertz::ZERO),
            Err(DpmError::InvalidParameter { name: "f_ref", .. })
        ));
    }
}
