//! Run-time machinery (§4.3): Algorithm 3's power-allocation update and the
//! controller-processor logic that drives the whole Fig. 1 loop every `τ`.

mod adaptive;
mod controller;
mod safety;
mod update;

pub use adaptive::AdaptiveDpmController;
pub use controller::{ControllerRecord, DpmController};
pub use safety::{DegradationRecord, SafetyConfig, SafetyGovernor, SafetyTransition};
pub use update::{redistribute, RedistributeOutcome};

#[doc(hidden)]
pub use update::reference as update_reference;
