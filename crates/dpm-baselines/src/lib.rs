//! # dpm-baselines
//!
//! The comparison governors for the paper's Table 1 and the ablation
//! benches:
//!
//! * [`StaticGovernor`] — the paper's comparator: run a fixed operating
//!   point whenever input data is waiting, turn everything off otherwise;
//!   no knowledge of the battery or the charging schedule.
//! * [`TimeoutGovernor`] — the "simplest and most widely used technique"
//!   of the paper's related-work section: like static, but stays on for a
//!   fixed number of idle slots before powering down.
//! * [`GreedyGovernor`] — battery-aware but myopic: each slot spends
//!   whatever the battery can afford right now, with no schedule.
//! * [`OracleGovernor`] — clairvoyant upper bound: replays a precomputed
//!   per-slot schedule (e.g. the offline Algorithm 2 plan on the *exact*
//!   future).
//! * [`AnalyticGovernor`] — the Eq. 18 closed form applied per slot, the
//!   ablation for Algorithm 2's discrete table machinery.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > 0.0)`-style checks are deliberate: unlike `x <= 0.0` they also
// reject NaN, which is exactly what the validation layer is for.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod analytic;
pub mod greedy;
pub mod oracle;
pub mod statics;
pub mod timeout;

pub use analytic::AnalyticGovernor;
pub use greedy::GreedyGovernor;
pub use oracle::OracleGovernor;
pub use statics::StaticGovernor;
pub use timeout::TimeoutGovernor;
