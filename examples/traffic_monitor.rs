//! The paper's weight-function example: a solar-powered traffic monitor
//! that should "process data more intensively during commute time".
//!
//! The event rate is flat across the day, but the operator weights the two
//! commute windows 3×. Eq. 7/8 turn that into a power allocation that
//! concentrates dissipation where the operator cares, while Algorithm 1
//! keeps the battery inside its window overnight.
//!
//! ```sh
//! cargo run --example traffic_monitor
//! ```

use dpm_core::prelude::*;
use dpm_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "day" compressed to 24 slots of 4.8 s (1 slot ≈ 1 hour).
    let platform = {
        let mut p = Platform::pama();
        // A roadside box has a bigger battery than a PIM testbed.
        p.battery = BatteryLimits::new(joules(2.0), joules(60.0))?;
        p
    };
    let tau = platform.tau;
    let hours = 24usize;

    // Sunlight from 06:00 to 18:00, peaking at noon.
    let charging = PowerSeries::from_fn(tau, hours, |t| {
        let h = t.value() / tau.value();
        if (6.0..18.0).contains(&h) {
            3.0 * (std::f64::consts::PI * (h - 6.0) / 12.0).sin()
        } else {
            0.0
        }
    })?;

    // Vehicles pass all day at a flat rate…
    let rate = PowerSeries::constant(tau, hours, 0.6)?;
    // …but the operator cares 3× more about the commute windows.
    let weight = PowerSeries::from_fn(tau, hours, |t| {
        let h = t.value() / tau.value();
        if (7.0..10.0).contains(&h) || (16.0..19.0).contains(&h) {
            3.0
        } else {
            1.0
        }
    })?;
    let demand = DemandModel::new(rate.clone(), weight)?;

    let problem = AllocationProblem {
        charging: charging.clone(),
        demand: demand.wpuf(),
        initial_charge: joules(30.0),
        limits: platform.battery,
        p_floor: platform.power.all_standby(),
        p_ceiling: platform.board_power(platform.workers(), platform.f_max()),
    };
    let allocation = InitialAllocator::new(problem)?.compute()?;

    println!("hour  sun(W)  weight  P_init(W)  battery(J)");
    for h in 0..hours {
        let t = seconds(h as f64 * tau.value());
        println!(
            "{:>4}  {:>6.2}  {:>6.1}  {:>9.2}  {:>10.1}",
            h,
            charging.value_at(t).value(),
            demand.weight.value_at(t).value(),
            allocation.allocation.get(h),
            allocation.trajectory.point(h).value(),
        );
    }
    println!(
        "\nfeasible: {} ({} iterations); commute slots get {:.1}x the power of off-peak",
        allocation.feasible,
        allocation.iterations.len(),
        allocation.allocation.get(8) / allocation.allocation.get(2).max(1e-9)
    );

    // Run one simulated day under the controller.
    let mut governor = DpmController::new(platform.clone(), &allocation, charging.clone())?;
    let report = Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(charging)),
        Box::new(ScheduleGenerator::new(
            // Realized events follow the *unweighted* rate — weighting is
            // an operator preference, not a property of traffic.
            rate.scale(
                1.0 / {
                    // convert desired power shape to events/s via the job cost
                    let f = platform.f_min();
                    (platform.board_power(1, f) * seconds(4.8)).value()
                },
            ),
        )),
        joules(30.0),
        SimConfig {
            periods: 1,
            slots_per_period: hours,
            substeps: 8,
            trace: false,
        },
    )?
    .run(&mut governor)?;
    println!("\nend of day: {}", report.summary());
    Ok(())
}
