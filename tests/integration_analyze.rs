//! End-to-end contract for the trace analyzer: `dpm-analyze audit` must
//! pass on clean traces produced by the real harnesses, fail with a
//! pinpointed `(scope, seq, slot)` on deliberately corrupted ones, the
//! diff must report the first diverging line, and the bench pipeline must
//! round-trip a baseline and gate regressions — both through the library
//! API and through the installed binary (exit codes included).

use dpm_bench::{campaign, experiments, telemetry_out};
use dpm_core::platform::Platform;
use dpm_telemetry::{Recorder, TraceLine};
use dpm_trace::{audit, AuditConfig, BenchBaseline, Trace};
use dpm_workloads::scenarios;
use std::process::Command;

/// Record a Table 3 run (controller + simulator + allocator signals).
fn table3_trace() -> String {
    let telemetry = Recorder::enabled("repro");
    let rec = telemetry.sibling();
    let platform = Platform::pama();
    let s1 = scenarios::scenario_one();
    experiments::table3_5_with(&platform, &s1, experiments::DEFAULT_PERIODS, &rec).unwrap();
    telemetry.absorb("table3", &rec);
    telemetry.to_jsonl()
}

/// Record a fault campaign (safety governor transitions under faults).
fn campaign_trace() -> String {
    let telemetry = Recorder::enabled("campaign");
    campaign::run_with(3, 2, 4, &telemetry).unwrap();
    telemetry.to_jsonl()
}

fn audit_str(jsonl: &str) -> dpm_trace::AuditReport {
    let trace = Trace::parse(jsonl).expect("trace parses");
    audit(&trace, &AuditConfig::default())
}

#[test]
fn audit_passes_on_clean_experiment_traces() {
    let report = audit_str(&table3_trace());
    assert!(report.ok(), "table3 violations: {:?}", report.violations);
    assert!(
        report.checks > 100,
        "suspiciously few checks: {}",
        report.checks
    );

    let report = audit_str(&campaign_trace());
    assert!(report.ok(), "campaign violations: {:?}", report.violations);
    assert!(report.scopes > 1);
}

/// Mutate the first `sim.slot` event of a trace with the given function
/// and return the re-serialized document.
fn corrupt_first<F>(jsonl: &str, name: &str, mut mutate: F) -> (String, dpm_telemetry::Event)
where
    F: FnMut(&mut dpm_telemetry::Event),
{
    let mut corrupted = None;
    let lines: Vec<String> = jsonl
        .lines()
        .map(|l| {
            let mut parsed: TraceLine = serde_json::from_str(l).unwrap();
            if let TraceLine::Event(e) = &mut parsed {
                if e.name == name && corrupted.is_none() {
                    mutate(e);
                    corrupted = Some(e.clone());
                }
            }
            serde_json::to_string(&parsed).unwrap()
        })
        .collect();
    (
        lines.join("\n") + "\n",
        corrupted.expect("trace carries the event to corrupt"),
    )
}

#[test]
fn audit_pinpoints_a_battery_level_pushed_past_c_max() {
    let clean = table3_trace();
    let (corrupted, event) = corrupt_first(&clean, "sim.slot", |e| {
        for (k, v) in &mut e.fields {
            if k == "battery_j" {
                *v = 1e9; // far past any C_max
            }
        }
    });
    let report = audit_str(&corrupted);
    let v = report
        .violations
        .iter()
        .find(|v| v.invariant == "battery.window")
        .expect("battery.window violation");
    assert_eq!(v.scope, event.scope);
    assert_eq!(v.seq, Some(event.seq));
    assert_eq!(v.slot, event.slot);
    assert!(v.message.contains("outside"), "{}", v.message);
}

#[test]
fn audit_pinpoints_an_out_of_order_safety_transition() {
    let clean = campaign_trace();
    // Swap the first shed's direction: to < from is illegal whatever the
    // configured step size, and the next transition's chain breaks too.
    let (corrupted, event) = corrupt_first(&clean, "safety.shed", |e| {
        e.fields = vec![("from_level".into(), 3.0), ("to_level".into(), 2.0)];
    });
    let report = audit_str(&corrupted);
    let v = report
        .violations
        .iter()
        .find(|v| v.invariant.starts_with("safety."))
        .expect("safety violation");
    assert_eq!(v.scope, event.scope);
    assert!(!report.ok());
}

#[test]
fn audit_flags_non_monotonic_undersupply() {
    let clean = campaign_trace();
    let trace = Trace::parse(&clean).unwrap();
    // Find a scope whose final undersupply is positive, then zero out its
    // last slot event's cumulative field so the stream runs backwards.
    let target = trace
        .events
        .iter()
        .rev()
        .find(|e| {
            e.name == "sim.slot"
                && Trace::field(e, "undersupplied_j").map(|u| u > 0.0) == Some(true)
        })
        .map(|e| (e.scope.clone(), e.seq));
    let Some((scope, seq)) = target else {
        // The standard campaign mix always undersupplies somewhere; if it
        // ever stops doing so this test must be rebuilt on a harsher mix.
        panic!("campaign trace carries no undersupply to corrupt");
    };
    let lines: Vec<String> = clean
        .lines()
        .map(|l| {
            let mut parsed: TraceLine = serde_json::from_str(l).unwrap();
            if let TraceLine::Event(e) = &mut parsed {
                if e.scope == scope && e.seq == seq {
                    for (k, v) in &mut e.fields {
                        if k == "undersupplied_j" {
                            *v = 0.0;
                        }
                    }
                }
            }
            serde_json::to_string(&parsed).unwrap()
        })
        .collect();
    let report = audit_str(&(lines.join("\n") + "\n"));
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant.starts_with("undersupply.")),
        "{:?}",
        report.violations
    );
}

#[test]
fn ring_overflow_warns_loudly_and_default_capacity_does_not() {
    let tiny = Recorder::with_capacity("repro", 4);
    for i in 0..32u64 {
        tiny.event("sim.slot", Some(i), i as f64, &[("battery_j", 1.0)]);
    }
    let warning = telemetry_out::ring_warning(&tiny).expect("tiny ring must warn");
    assert!(warning.contains("WARNING"), "{warning}");
    assert!(warning.contains("dropped 28"), "{warning}");

    let telemetry = Recorder::enabled("repro");
    let rec = telemetry.sibling();
    let platform = Platform::pama();
    let s1 = scenarios::scenario_one();
    experiments::table3_5_with(&platform, &s1, experiments::DEFAULT_PERIODS, &rec).unwrap();
    telemetry.absorb("table3", &rec);
    assert_eq!(telemetry.dropped(), 0);
    assert_eq!(telemetry_out::ring_warning(&telemetry), None);
    // A disabled recorder never warns.
    assert_eq!(telemetry_out::ring_warning(&Recorder::disabled()), None);
}

/// Unique temp path for binary-level tests.
fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dpm-analyze-test-{}-{tag}", std::process::id()))
}

fn analyze(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dpm-analyze"))
        .args(args)
        .output()
        .expect("dpm-analyze runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn analyze_binary_audits_diffs_and_summarizes() {
    let clean = table3_trace();
    let (corrupted, event) = corrupt_first(&clean, "sim.slot", |e| {
        for (k, v) in &mut e.fields {
            if k == "battery_j" {
                *v = -1e9;
            }
        }
    });
    let clean_path = temp_path("clean.jsonl");
    let bad_path = temp_path("bad.jsonl");
    std::fs::write(&clean_path, &clean).unwrap();
    std::fs::write(&bad_path, &corrupted).unwrap();

    let (code, stdout, _) = analyze(&["audit", clean_path.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("audit OK"), "{stdout}");

    let (code, _, stderr) = analyze(&["audit", bad_path.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(stderr.contains("battery.window"), "{stderr}");
    assert!(
        stderr.contains(&format!("seq={}", event.seq))
            && stderr.contains(&format!("scope=\"{}\"", event.scope)),
        "violation must pinpoint (scope, seq, slot): {stderr}"
    );

    let (code, stdout, _) = analyze(&[
        "diff",
        clean_path.to_str().unwrap(),
        clean_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("identical"), "{stdout}");

    let (code, _, stderr) = analyze(&[
        "diff",
        clean_path.to_str().unwrap(),
        bad_path.to_str().unwrap(),
        "--context",
        "2",
    ]);
    assert_eq!(code, 1);
    assert!(stderr.contains("first divergence at line"), "{stderr}");
    assert!(stderr.contains("event sim.slot"), "{stderr}");

    let (code, stdout, _) = analyze(&["summary", clean_path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(stdout.contains("battery trajectory"), "{stdout}");
    assert!(stdout.contains("core.replan.count"), "{stdout}");

    // Usage errors exit 2; unreadable input exits 1.
    let (code, _, _) = analyze(&["frobnicate"]);
    assert_eq!(code, 2);
    let (code, _, _) = analyze(&["audit"]);
    assert_eq!(code, 2);
    let (code, _, _) = analyze(&["audit", "/nonexistent/trace.jsonl"]);
    assert_eq!(code, 1);

    let _ = std::fs::remove_file(clean_path);
    let _ = std::fs::remove_file(bad_path);
}

#[test]
fn bench_baseline_round_trips_and_gates_regressions() {
    // A real profile from a real run.
    let telemetry = Recorder::enabled("repro");
    let rec = telemetry.sibling();
    let platform = Platform::pama();
    let s1 = scenarios::scenario_one();
    experiments::table3_5_with(&platform, &s1, experiments::DEFAULT_PERIODS, &rec).unwrap();
    telemetry.absorb("table3", &rec);
    let profile_jsonl = telemetry.profile_jsonl();
    assert!(!profile_jsonl.is_empty(), "run must record span timings");

    let profile_path = temp_path("run.profile");
    let baseline_path = temp_path("BENCH_test.json");
    std::fs::write(&profile_path, &profile_jsonl).unwrap();

    let (code, stdout, _) = analyze(&[
        "bench",
        profile_path.to_str().unwrap(),
        "--name",
        "test",
        "--out",
        baseline_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}");
    let baseline = BenchBaseline::parse(&std::fs::read_to_string(&baseline_path).unwrap()).unwrap();
    assert!(!baseline.spans.is_empty());

    // The identical profile passes at any tolerance.
    let (code, stdout, _) = analyze(&[
        "bench",
        profile_path.to_str().unwrap(),
        "--check",
        baseline_path.to_str().unwrap(),
        "--tolerance",
        "5",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("bench OK"), "{stdout}");

    // Inject a 10x mean regression into every span and watch the gate trip.
    let slow: String = dpm_telemetry::parse_profile_doc(&profile_jsonl)
        .unwrap()
        .0
        .into_iter()
        .map(|mut p| {
            p.mean_s *= 10.0;
            p.total_s *= 10.0;
            serde_json::to_string(&p).unwrap() + "\n"
        })
        .collect();
    let slow_path = temp_path("slow.profile");
    std::fs::write(&slow_path, &slow).unwrap();
    let (code, _, stderr) = analyze(&[
        "bench",
        slow_path.to_str().unwrap(),
        "--check",
        baseline_path.to_str().unwrap(),
        "--tolerance",
        "25",
    ]);
    assert_eq!(code, 1);
    assert!(stderr.contains("regression"), "{stderr}");
    assert!(stderr.contains("exceeds baseline"), "{stderr}");

    let _ = std::fs::remove_file(profile_path);
    let _ = std::fs::remove_file(baseline_path);
    let _ = std::fs::remove_file(slow_path);
}

#[test]
fn profile_subcommand_renders_the_span_tree_and_gates_regressions() {
    // A real Table 1 run: the Oracle baseline exercises the §4.2
    // parameter scheduler (`params.plan`), the proposed controller the
    // replan path (`sim.run` → `core.decide` → `core.replan`).
    let telemetry = Recorder::enabled("repro");
    let platform = Platform::pama();
    let scenarios = [scenarios::scenario_one(), scenarios::scenario_two()];
    experiments::table1_jobs_with(
        &platform,
        &scenarios,
        experiments::DEFAULT_PERIODS,
        2,
        &telemetry,
    )
    .unwrap();
    let profile_jsonl = telemetry.profile_jsonl();
    let profile_path = temp_path("tree.profile");
    std::fs::write(&profile_path, &profile_jsonl).unwrap();

    // Tree rendering: header, the scheduler span, and a self-time ranking
    // that the acceptance criteria key on.
    let (code, stdout, _) = analyze(&["profile", profile_path.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("span tree"), "{stdout}");
    assert!(stdout.contains("self-time ranking:"), "{stdout}");
    assert!(stdout.contains("params.plan"), "{stdout}");
    assert!(stdout.contains("core.decide"), "{stdout}");
    assert!(stdout.contains("hottest self-time:"), "{stdout}");

    // Collapsed stacks: every line is `path self_µs`.
    let (code, stdout, _) = analyze(&["profile", profile_path.to_str().unwrap(), "--collapse"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(!stdout.is_empty());
    for line in stdout.lines() {
        let (path, micros) = line.rsplit_once(' ').expect("collapsed line has two parts");
        assert!(!path.is_empty(), "{line}");
        micros.parse::<u64>().expect("self-time in whole µs");
    }

    // Baseline round-trip and regression gate over the span tree.
    let baseline_path = temp_path("BENCH_tree.json");
    let (code, stdout, _) = analyze(&[
        "profile",
        profile_path.to_str().unwrap(),
        "--name",
        "tree",
        "--out",
        baseline_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}");
    let (code, stdout, _) = analyze(&[
        "profile",
        profile_path.to_str().unwrap(),
        "--check",
        baseline_path.to_str().unwrap(),
        "--tolerance",
        "5",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("profile OK"), "{stdout}");

    // Slow every tree node 10x; the gate must trip.
    let slow: String = dpm_telemetry::parse_profile_doc(&profile_jsonl)
        .unwrap()
        .1
        .into_iter()
        .map(|mut n| {
            n.total_s *= 10.0;
            serde_json::to_string(&n).unwrap() + "\n"
        })
        .collect();
    let slow_path = temp_path("slow_tree.profile");
    std::fs::write(&slow_path, &slow).unwrap();
    let (code, _, stderr) = analyze(&[
        "profile",
        slow_path.to_str().unwrap(),
        "--check",
        baseline_path.to_str().unwrap(),
        "--tolerance",
        "25",
    ]);
    assert_eq!(code, 1);
    assert!(stderr.contains("regression"), "{stderr}");

    let _ = std::fs::remove_file(profile_path);
    let _ = std::fs::remove_file(baseline_path);
    let _ = std::fs::remove_file(slow_path);
}
