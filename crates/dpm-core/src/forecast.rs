//! Empirical schedule estimation (§2).
//!
//! The paper's inputs `c(t)` and `u(t)` are *expected* schedules: "the
//! schedule may be derived theoretically or empirically. For example, the
//! recorded charging power for the previous period or weighted average of
//! the several previous periods can be used." This module implements those
//! estimators as an online, per-slot [`ScheduleEstimator`], and
//! [`crate::runtime::AdaptiveDpmController`] closes the loop by re-planning
//! each period from the refreshed estimate.

use crate::error::DpmError;
use crate::series::PowerSeries;
use crate::units::Seconds;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The estimation rule applied independently to each slot-of-period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ForecastMethod {
    /// "The recorded charging power for the previous period": the latest
    /// observation replaces the estimate outright.
    LastPeriod,
    /// "Weighted average of the several previous periods", in its
    /// exponential-smoothing form: `est ← α·obs + (1−α)·est`.
    ExponentialSmoothing {
        /// Weight of the newest observation, `(0, 1]`.
        alpha: f64,
    },
    /// Arithmetic mean of the most recent `window` observations of the
    /// slot (the literal finite weighted average).
    SlidingMean {
        /// Observations retained per slot.
        window: usize,
    },
}

impl ForecastMethod {
    /// Check the method's parameters.
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] on `alpha` outside `(0, 1]` or a
    /// zero-length sliding window.
    pub fn validate(&self) -> Result<(), DpmError> {
        match *self {
            ForecastMethod::LastPeriod => Ok(()),
            ForecastMethod::ExponentialSmoothing { alpha } => {
                if alpha > 0.0 && alpha <= 1.0 {
                    Ok(())
                } else {
                    Err(DpmError::InvalidParameter {
                        name: "alpha",
                        reason: format!("must lie in (0, 1], got {alpha}"),
                    })
                }
            }
            ForecastMethod::SlidingMean { window } => {
                if window >= 1 {
                    Ok(())
                } else {
                    Err(DpmError::InvalidParameter {
                        name: "window",
                        reason: "must hold at least one period".into(),
                    })
                }
            }
        }
    }
}

/// Online per-slot schedule estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEstimator {
    method: ForecastMethod,
    estimate: PowerSeries,
    /// Per-slot observation history (used by `SlidingMean`; kept short).
    history: Vec<VecDeque<f64>>,
    observations: u64,
}

impl ScheduleEstimator {
    /// Start from a prior schedule (the theoretical expectation, or zeros
    /// when flying blind).
    ///
    /// # Errors
    /// Propagates [`ForecastMethod::validate`].
    pub fn new(prior: PowerSeries, method: ForecastMethod) -> Result<Self, DpmError> {
        method.validate()?;
        let history = vec![VecDeque::new(); prior.len()];
        Ok(Self {
            method,
            estimate: prior,
            history,
            observations: 0,
        })
    }

    /// A zero prior with the given slotting.
    ///
    /// # Errors
    /// Propagates [`ForecastMethod::validate`] and series construction.
    pub fn cold(slot: Seconds, slots: usize, method: ForecastMethod) -> Result<Self, DpmError> {
        Self::new(PowerSeries::constant(slot, slots, 0.0)?, method)
    }

    /// Slots per period.
    pub fn slots(&self) -> usize {
        self.estimate.len()
    }

    /// Observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Record the measured mean power of slot-of-period `slot`.
    /// Out-of-range slots and non-finite or negative observations (a
    /// glitched power meter) are ignored: an online estimator must keep
    /// running on bad telemetry.
    pub fn observe(&mut self, slot: usize, mean_power: f64) {
        if slot >= self.estimate.len() || !mean_power.is_finite() || mean_power < 0.0 {
            return;
        }
        self.observations += 1;
        match self.method {
            ForecastMethod::LastPeriod => self.estimate.set(slot, mean_power),
            ForecastMethod::ExponentialSmoothing { alpha } => {
                let old = self.estimate.get(slot);
                self.estimate
                    .set(slot, alpha * mean_power + (1.0 - alpha) * old);
            }
            ForecastMethod::SlidingMean { window } => {
                let h = &mut self.history[slot];
                h.push_back(mean_power);
                while h.len() > window {
                    h.pop_front();
                }
                let mean = h.iter().sum::<f64>() / h.len() as f64;
                self.estimate.set(slot, mean);
            }
        }
    }

    /// The current estimate.
    pub fn estimate(&self) -> &PowerSeries {
        &self.estimate
    }

    /// Root-mean-square error of the estimate against a reference
    /// schedule (for convergence tests and telemetry). `NaN` when the
    /// schedules disagree on length — telemetry, not control flow.
    pub fn rmse(&self, truth: &PowerSeries) -> f64 {
        if truth.len() != self.estimate.len() {
            return f64::NAN;
        }
        let sq: f64 = self
            .estimate
            .values()
            .iter()
            .zip(truth.values())
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        (sq / truth.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::seconds;

    fn truth() -> PowerSeries {
        PowerSeries::new(
            seconds(4.8),
            vec![
                2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap()
    }

    fn wrong_prior() -> PowerSeries {
        PowerSeries::constant(seconds(4.8), 12, 1.0).unwrap()
    }

    fn feed_periods(est: &mut ScheduleEstimator, periods: usize) {
        let t = truth();
        for _ in 0..periods {
            for s in 0..12 {
                est.observe(s, t.get(s));
            }
        }
    }

    #[test]
    fn last_period_converges_in_one_period() {
        let mut e = ScheduleEstimator::new(wrong_prior(), ForecastMethod::LastPeriod).unwrap();
        assert!(e.rmse(&truth()) > 0.9);
        feed_periods(&mut e, 1);
        assert!(e.rmse(&truth()) < 1e-12);
        assert_eq!(e.observations(), 12);
    }

    #[test]
    fn exponential_smoothing_converges_geometrically() {
        let mut e = ScheduleEstimator::new(
            wrong_prior(),
            ForecastMethod::ExponentialSmoothing { alpha: 0.5 },
        )
        .unwrap();
        let e0 = e.rmse(&truth());
        feed_periods(&mut e, 1);
        let e1 = e.rmse(&truth());
        feed_periods(&mut e, 1);
        let e2 = e.rmse(&truth());
        assert!((e1 / e0 - 0.5).abs() < 1e-9, "{e1}/{e0}");
        assert!((e2 / e1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sliding_mean_forgets_the_prior_after_window() {
        let mut e =
            ScheduleEstimator::new(wrong_prior(), ForecastMethod::SlidingMean { window: 3 })
                .unwrap();
        feed_periods(&mut e, 1);
        // One period of true data already replaces the estimate (the prior
        // never enters the history).
        assert!(e.rmse(&truth()) < 1e-12);
    }

    #[test]
    fn sliding_mean_averages_noise() {
        let mut e =
            ScheduleEstimator::cold(seconds(4.8), 1, ForecastMethod::SlidingMean { window: 4 })
                .unwrap();
        for &obs in &[1.0, 2.0, 3.0, 4.0] {
            e.observe(0, obs);
        }
        assert!((e.estimate().get(0) - 2.5).abs() < 1e-12);
        e.observe(0, 8.0); // window slides: mean of [2,3,4,8] = 4.25
        assert!((e.estimate().get(0) - 4.25).abs() < 1e-12);
    }

    #[test]
    fn smoothing_tracks_a_changed_environment() {
        // Truth changes mid-mission: the estimator follows.
        let mut e =
            ScheduleEstimator::new(truth(), ForecastMethod::ExponentialSmoothing { alpha: 0.4 })
                .unwrap();
        let new_truth = truth().scale(0.5);
        for _ in 0..12 {
            for s in 0..12 {
                e.observe(s, new_truth.get(s));
            }
        }
        assert!(e.rmse(&new_truth) < 1e-2);
    }

    #[test]
    fn rejects_zero_alpha() {
        assert!(matches!(
            ScheduleEstimator::cold(
                seconds(4.8),
                12,
                ForecastMethod::ExponentialSmoothing { alpha: 0.0 },
            ),
            Err(DpmError::InvalidParameter { name: "alpha", .. })
        ));
        assert!(ForecastMethod::SlidingMean { window: 0 }
            .validate()
            .is_err());
    }

    #[test]
    fn alpha_boundaries_validate_exactly() {
        // The interval is half-open (0, 1]: the upper boundary is legal
        // (pure last-period behaviour), the lower is not.
        assert!(ForecastMethod::ExponentialSmoothing { alpha: 1.0 }
            .validate()
            .is_ok());
        assert!(ForecastMethod::ExponentialSmoothing {
            alpha: f64::MIN_POSITIVE
        }
        .validate()
        .is_ok());
        for bad in [0.0, -0.3, 1.0 + 1e-12, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    ForecastMethod::ExponentialSmoothing { alpha: bad }.validate(),
                    Err(DpmError::InvalidParameter { name: "alpha", .. })
                ),
                "alpha = {bad} should be rejected"
            );
        }
    }

    #[test]
    fn zero_window_is_rejected_end_to_end() {
        assert!(matches!(
            ForecastMethod::SlidingMean { window: 0 }.validate(),
            Err(DpmError::InvalidParameter { name: "window", .. })
        ));
        // The constructor enforces the same check, so a bad method can
        // never produce a running estimator.
        assert!(matches!(
            ScheduleEstimator::new(wrong_prior(), ForecastMethod::SlidingMean { window: 0 }),
            Err(DpmError::InvalidParameter { name: "window", .. })
        ));
        assert!(ForecastMethod::SlidingMean { window: 1 }.validate().is_ok());
    }

    #[test]
    fn empty_history_estimator_reports_prior_and_nan_on_mismatch() {
        // Before any observation, the estimate is exactly the prior and
        // rmse against an equal-length truth is well-defined.
        let e = ScheduleEstimator::new(wrong_prior(), ForecastMethod::LastPeriod).unwrap();
        assert_eq!(e.observations(), 0);
        assert_eq!(e.estimate(), &wrong_prior());
        assert!(e.rmse(&wrong_prior()) < 1e-12);
        // Length-mismatched truth degrades to NaN (telemetry, not control
        // flow) rather than erroring or panicking.
        let short = PowerSeries::constant(seconds(4.8), 3, 1.0).unwrap();
        assert!(e.rmse(&short).is_nan());
        // A zero-slot prior cannot even be constructed: the series layer
        // rejects it, so the estimator propagates the typed error instead
        // of running with an empty history.
        assert!(matches!(
            ScheduleEstimator::cold(seconds(4.8), 0, ForecastMethod::LastPeriod),
            Err(DpmError::InvalidSeries(_))
        ));
    }

    #[test]
    fn ignores_bad_telemetry() {
        let mut e = ScheduleEstimator::cold(seconds(4.8), 12, ForecastMethod::LastPeriod).unwrap();
        e.observe(12, 1.0); // out of range
        e.observe(0, f64::NAN);
        e.observe(0, -1.0);
        assert_eq!(e.observations(), 0);
        assert_eq!(e.estimate().get(0), 0.0);
    }
}
