//! The Weighted Power Usage Function (Eq. 7) and its inputs.
//!
//! `WPUF(t) = u(t)·w(t)` combines the expected event-rate schedule `u(t)`
//! (events per second that trigger computation) with a user weight `w(t)`
//! that emphasizes parts of the period — the paper's example is weighting
//! commute hours in a traffic monitor. The WPUF is a *shape*, not yet a
//! power: Eq. 8 rescales it so total dissipation balances total supply.

use crate::error::DpmError;
use crate::series::PowerSeries;
use serde::{Deserialize, Serialize};

/// Event-rate schedule plus weight function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandModel {
    /// Expected event rate `u(t)` (events/s per slot).
    pub event_rate: PowerSeries,
    /// Weight `w(t)` (dimensionless, ≥ 0).
    pub weight: PowerSeries,
}

impl DemandModel {
    /// Build, validating alignment and non-negativity.
    ///
    /// # Errors
    /// [`DpmError::SeriesMismatch`]/[`DpmError::InvalidSeries`] on
    /// misaligned schedules, [`DpmError::InvalidParameter`] on a negative
    /// rate or weight.
    pub fn new(event_rate: PowerSeries, weight: PowerSeries) -> Result<Self, DpmError> {
        event_rate.check_aligned(&weight)?;
        if let Some(i) = event_rate.values().iter().position(|&v| v < 0.0) {
            return Err(DpmError::InvalidParameter {
                name: "event_rate",
                reason: format!("must be non-negative, slot {i} is {}", event_rate.get(i)),
            });
        }
        if let Some(i) = weight.values().iter().position(|&v| v < 0.0) {
            return Err(DpmError::InvalidParameter {
                name: "weight",
                reason: format!("must be non-negative, slot {i} is {}", weight.get(i)),
            });
        }
        Ok(Self { event_rate, weight })
    }

    /// Unweighted demand (`w ≡ 1`).
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] on a negative event rate.
    pub fn unweighted(event_rate: PowerSeries) -> Result<Self, DpmError> {
        let weight = event_rate.map(|_| 1.0);
        Self::new(event_rate, weight)
    }

    /// Eq. 7: the weighted power-usage shape.
    pub fn wpuf(&self) -> PowerSeries {
        self.event_rate.pointwise_mul(&self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::seconds;

    #[test]
    fn wpuf_is_pointwise_product() {
        let u = PowerSeries::new(seconds(1.0), vec![2.0, 4.0, 0.0]).unwrap();
        let w = PowerSeries::new(seconds(1.0), vec![1.0, 0.5, 3.0]).unwrap();
        let d = DemandModel::new(u, w).unwrap();
        assert_eq!(d.wpuf().values(), &[2.0, 2.0, 0.0]);
    }

    #[test]
    fn unweighted_uses_unit_weight() {
        let u = PowerSeries::new(seconds(1.0), vec![2.0, 4.0]).unwrap();
        let d = DemandModel::unweighted(u.clone()).unwrap();
        assert_eq!(d.wpuf(), u);
    }

    #[test]
    fn weight_emphasizes_commute_hours() {
        // The paper's traffic-monitor example: same event rate all day,
        // double weight during two commute windows.
        let u = PowerSeries::constant(seconds(1.0), 8, 1.0).unwrap();
        let w =
            PowerSeries::new(seconds(1.0), vec![1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0, 1.0]).unwrap();
        let d = DemandModel::new(u, w).unwrap();
        let shape = d.wpuf();
        assert_eq!(shape.get(1), 2.0);
        assert_eq!(shape.get(0), 1.0);
    }

    #[test]
    fn rejects_negative_rates() {
        use crate::error::DpmError;
        let u = PowerSeries::new(seconds(1.0), vec![-1.0]).unwrap();
        let w = PowerSeries::constant(seconds(1.0), 1, 1.0).unwrap();
        assert!(matches!(
            DemandModel::new(u.clone(), w.clone()),
            Err(DpmError::InvalidParameter {
                name: "event_rate",
                ..
            })
        ));
        assert!(matches!(
            DemandModel::new(w, u),
            Err(DpmError::InvalidParameter { name: "weight", .. })
        ));
    }
}
