//! Governor-comparison properties: the ordering claims the paper's Table 1
//! rests on, checked across scenarios and horizons.

use dpm_baselines::{
    AnalyticGovernor, GreedyGovernor, OracleGovernor, StaticGovernor, TimeoutGovernor,
};
use dpm_bench::experiments;
use dpm_core::params::{OperatingPoint, ParameterScheduler};
use dpm_core::platform::Platform;
use dpm_core::prelude::*;
use dpm_workloads::scenarios;

fn full_point(platform: &Platform) -> OperatingPoint {
    let f = platform.f_max();
    OperatingPoint::new(platform.workers(), f, platform.voltage_for(f).unwrap())
}

#[test]
fn proposed_dominates_static_on_both_paper_metrics() {
    let platform = Platform::pama();
    for s in scenarios::all() {
        for periods in [2usize, 4] {
            let a = experiments::initial_allocation(&platform, &s).unwrap();
            let mut proposed =
                DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap();
            let rp = experiments::run_governor(&platform, &s, &mut proposed, periods).unwrap();
            let mut statik = StaticGovernor::full_power(&platform).unwrap();
            let rs = experiments::run_governor(&platform, &s, &mut statik, periods).unwrap();
            assert!(
                rp.wasted < rs.wasted,
                "{} x{periods}: wasted {} vs {}",
                s.name,
                rp.wasted,
                rs.wasted
            );
            assert!(
                rp.undersupplied <= rs.undersupplied + 1e-9,
                "{} x{periods}: undersupplied {} vs {}",
                s.name,
                rp.undersupplied,
                rs.undersupplied
            );
        }
    }
}

#[test]
fn waste_reduction_is_roughly_an_order_of_magnitude() {
    // The paper's headline: "reduces the wasted energy by more than a
    // factor of ten". Require ≥ 5x on both scenarios to allow for our
    // digitization differences while pinning the order of magnitude.
    let platform = Platform::pama();
    let rows =
        experiments::table1(&platform, &scenarios::all(), experiments::DEFAULT_PERIODS).unwrap();
    let proposed = rows.iter().find(|r| r.governor == "proposed").unwrap();
    let statik = rows.iter().find(|r| r.governor == "static").unwrap();
    for i in 0..2 {
        let factor = statik.wasted[i] / proposed.wasted[i].max(1e-9);
        assert!(factor >= 5.0, "scenario {i}: only {factor:.1}x");
    }
}

#[test]
fn timeout_interpolates_between_static_and_always_on() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut t0 = TimeoutGovernor::new(full_point(&platform), 0).unwrap();
    let mut t3 = TimeoutGovernor::new(full_point(&platform), 3).unwrap();
    let r0 = experiments::run_governor(&platform, &s, &mut t0, 3).unwrap();
    let r3 = experiments::run_governor(&platform, &s, &mut t3, 3).unwrap();
    // With the hold-off, chips are already awake when a quiet slot's
    // events arrive, so jobs start immediately instead of waiting for the
    // next slot boundary: latency can only improve.
    assert!(
        r3.mean_latency <= r0.mean_latency + 1e-9,
        "timeout-3 latency {} vs timeout-0 {}",
        r3.mean_latency,
        r0.mean_latency
    );
    assert!(r3.jobs_done >= r0.jobs_done);
}

#[test]
fn oracle_is_no_worse_than_proposed_on_waste() {
    let platform = Platform::pama();
    for s in scenarios::all() {
        let a = experiments::initial_allocation(&platform, &s).unwrap();
        let plan = ParameterScheduler::new(platform.clone())
            .unwrap()
            .plan(&a.allocation, &s.charging, s.initial_charge)
            .unwrap();
        let mut oracle = OracleGovernor::from_schedule(&plan).unwrap();
        let ro = experiments::run_governor(&platform, &s, &mut oracle, 4).unwrap();
        let mut proposed = DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap();
        let rp = experiments::run_governor(&platform, &s, &mut proposed, 4).unwrap();
        // The oracle plans on exact knowledge; allow a small tolerance for
        // the controller's feedback occasionally beating the static plan.
        assert!(
            ro.wasted <= rp.wasted * 1.5 + 1.0,
            "{}: oracle {} vs proposed {}",
            s.name,
            ro.wasted,
            rp.wasted
        );
    }
}

#[test]
fn greedy_avoids_undersupply_but_wastes_more_than_proposed() {
    let platform = Platform::pama();
    let s = scenarios::scenario_two();
    let mut greedy = GreedyGovernor::new(platform.clone(), 4.0).unwrap();
    let rg = experiments::run_governor(&platform, &s, &mut greedy, 4).unwrap();
    let a = experiments::initial_allocation(&platform, &s).unwrap();
    let mut proposed = DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap();
    let rp = experiments::run_governor(&platform, &s, &mut proposed, 4).unwrap();
    // Greedy cannot pre-spend ahead of a supply peak, so it pins at C_max
    // more often (or drains when the schedule would have saved).
    assert!(
        rg.wasted + rg.undersupplied >= rp.wasted + rp.undersupplied,
        "greedy {}+{} vs proposed {}+{}",
        rg.wasted,
        rg.undersupplied,
        rp.wasted,
        rp.undersupplied
    );
}

#[test]
fn analytic_eq18_tracks_the_table_controller_closely() {
    // The Eq. 18 closed form with no feedback should land in the same
    // ballpark as the full Algorithm 2+3 controller on the nominal
    // scenarios — the table + feedback buys margin, not a different
    // regime.
    let platform = Platform::pama();
    for s in scenarios::all() {
        let alloc = experiments::initial_allocation(&platform, &s).unwrap();
        let mut analytic =
            AnalyticGovernor::new(platform.clone(), alloc.allocation.clone()).unwrap();
        let ra = experiments::run_governor(&platform, &s, &mut analytic, 4).unwrap();
        let mut proposed =
            DpmController::new(platform.clone(), &alloc, s.charging.clone()).unwrap();
        let rp = experiments::run_governor(&platform, &s, &mut proposed, 4).unwrap();
        let loss = |r: &dpm_sim::stats::SimReport| r.wasted + r.undersupplied;
        // Feedback never loses to open-loop rounding...
        assert!(
            loss(&rp) <= loss(&ra) + 1e-9,
            "{}: proposed {} vs analytic {}",
            s.name,
            loss(&rp),
            loss(&ra)
        );
        // ...and the closed form is still schedule-shaped: far better than
        // static.
        let mut statik = StaticGovernor::full_power(&platform).unwrap();
        let rs = experiments::run_governor(&platform, &s, &mut statik, 4).unwrap();
        assert!(
            loss(&ra) < loss(&rs),
            "{}: analytic {} vs static {}",
            s.name,
            loss(&ra),
            loss(&rs)
        );
    }
}

#[test]
fn peukert_battery_punishes_bursty_governors_harder() {
    // With rate-dependent capacity (k = 1.25), the static baseline's
    // full-power bursts pay a Peukert surcharge the proposed controller's
    // steady low draws avoid: the gap between them can only widen.
    use dpm_sim::prelude::*;
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let peukert = BatteryConfig {
        peukert: Some(PeukertModel {
            reference_power: dpm_core::units::watts(1.5),
            exponent: 1.25,
        }),
        ..BatteryConfig::ideal(platform.battery)
    };
    let run = |gov: &mut dyn Governor, chem: Option<BatteryConfig>| -> SimReport {
        let mut sim = experiments::simulation(&platform, &s, 4).unwrap();
        if let Some(cfg) = chem {
            sim = sim.with_battery(cfg, s.initial_charge).unwrap();
        }
        sim.run(gov).unwrap()
    };
    let loss = |r: &SimReport| r.wasted + r.undersupplied;

    let a = experiments::initial_allocation(&platform, &s).unwrap();
    let mut p_ideal = DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap();
    let mut p_chem = DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap();
    let proposed_ideal = run(&mut p_ideal, None);
    let proposed_chem = run(&mut p_chem, Some(peukert));

    let mut s_ideal = StaticGovernor::full_power(&platform).unwrap();
    let mut s_chem = StaticGovernor::full_power(&platform).unwrap();
    let static_ideal = run(&mut s_ideal, None);
    let static_chem = run(&mut s_chem, Some(peukert));

    let static_penalty = loss(&static_chem) - loss(&static_ideal);
    let proposed_penalty = loss(&proposed_chem) - loss(&proposed_ideal);
    assert!(
        static_penalty > proposed_penalty,
        "static penalty {static_penalty} vs proposed {proposed_penalty}"
    );
}

#[test]
fn all_governors_complete_comparable_event_work() {
    // Waste/undersupply differ wildly, but everyone should finish most of
    // the queued event jobs across a long horizon (the arrival rate is
    // within every governor's capacity).
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let expected_events = s.events_per_period(&platform) * 4.0;
    let mut results = Vec::new();
    {
        let a = experiments::initial_allocation(&platform, &s).unwrap();
        let mut g = DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap();
        results.push(experiments::run_governor(&platform, &s, &mut g, 4).unwrap());
    }
    {
        let mut g = StaticGovernor::full_power(&platform).unwrap();
        results.push(experiments::run_governor(&platform, &s, &mut g, 4).unwrap());
    }
    for r in &results {
        assert!(
            r.jobs_done as f64 >= 0.5 * expected_events,
            "{}: {} of ~{expected_events} events",
            r.governor,
            r.jobs_done
        );
    }
}
