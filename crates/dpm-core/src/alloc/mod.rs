//! Initial power allocation (§4.1): WPUF, supply-balancing normalization,
//! battery-trajectory construction, and the Algorithm 1 reshaping that keeps
//! the trajectory inside the battery window.
//!
//! The output of this module is the schedule `P_init(t)` — watts the system
//! is *allowed* to dissipate in each `τ`-slot — that Algorithm 2 turns into
//! `(n, f, v)` operating points and Algorithm 3 revises at run time.

mod reshape;
mod wpuf;

pub use reshape::{reshape_trajectory, reshape_trajectory_with, ReshapeOutcome, ReshapeStrategy};
pub use wpuf::DemandModel;

use crate::error::DpmError;
use crate::platform::BatteryLimits;
use crate::series::{EnergyTrajectory, PowerSeries};
use crate::units::{Joules, Watts};
use dpm_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// One round of the iterative allocation computation — a row pair of the
/// paper's Tables 2/4 (`P_init` and its running integration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationIteration {
    /// Power allocation after this round, W per slot.
    pub allocation: PowerSeries,
    /// Battery trajectory implied by the allocation (the "Integration" row).
    pub trajectory: EnergyTrajectory,
    /// Whether the trajectory honours the battery window.
    pub feasible: bool,
}

/// The initial power-allocation problem: inputs of §2 plus physical power
/// bounds of the board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationProblem {
    /// Expected charging schedule `c(t)`, W per slot.
    pub charging: PowerSeries,
    /// Desired (already weighted) power-usage shape; will be normalized per
    /// Eq. 8 before use. Typically [`DemandModel::wpuf`].
    pub demand: PowerSeries,
    /// Battery charge at `t = 0`.
    pub initial_charge: Joules,
    /// Battery capacity window.
    pub limits: BatteryLimits,
    /// Smallest realizable dissipation (board standby floor): the
    /// allocation can never drop below this because the hardware always
    /// draws it.
    pub p_floor: Watts,
    /// Largest realizable dissipation (every processor at `f_max`).
    pub p_ceiling: Watts,
}

/// Result of the §4.1 computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitialAllocation {
    /// Final `P_init(t)` power allocation.
    pub allocation: PowerSeries,
    /// Battery trajectory under the final allocation.
    pub trajectory: EnergyTrajectory,
    /// Every intermediate round, for the Tables 2/4 reproduction.
    pub iterations: Vec<AllocationIteration>,
    /// True when the final trajectory is inside the battery window.
    pub feasible: bool,
}

/// Iterative driver for §4.1.
///
/// Each round:
/// 1. build the trajectory `E(t) = E₀ + ∫ (c − P_init)` (Eq. 10);
/// 2. if it stays inside `[C_min, C_max]` and the allocation respects the
///    board's power range, stop;
/// 3. otherwise reshape the trajectory with Algorithm 1
///    ([`reshape_trajectory`]) and read the next allocation off its slopes
///    (`P_init = c − dE/dt`), clamped into `[p_floor, p_ceiling]` — the
///    clamping is what makes further rounds necessary, exactly as the
///    paper's Tables 2/4 show ~5 rounds to convergence.
#[derive(Debug, Clone)]
pub struct InitialAllocator {
    problem: AllocationProblem,
    max_iterations: usize,
    tolerance: f64,
    strategy: ReshapeStrategy,
}

impl InitialAllocator {
    /// Create a driver with the default iteration budget (16) and a 1 mJ
    /// feasibility tolerance.
    ///
    /// # Errors
    /// [`DpmError::SeriesMismatch`]/[`DpmError::InvalidSeries`] when the
    /// charging and demand schedules do not share slotting, and
    /// [`DpmError::InvalidParameter`] for an unusable power range.
    pub fn new(problem: AllocationProblem) -> Result<Self, DpmError> {
        problem.charging.check_aligned(&problem.demand)?;
        if problem.p_floor.value() < 0.0 {
            return Err(DpmError::InvalidParameter {
                name: "p_floor",
                reason: format!("must be non-negative, got {}", problem.p_floor),
            });
        }
        if problem.p_ceiling.value() <= problem.p_floor.value() {
            return Err(DpmError::InvalidParameter {
                name: "p_ceiling",
                reason: format!(
                    "must exceed p_floor, got {} with floor {}",
                    problem.p_ceiling, problem.p_floor
                ),
            });
        }
        Ok(Self {
            problem,
            max_iterations: 16,
            tolerance: 1e-3,
            strategy: ReshapeStrategy::ShapePreserving,
        })
    }

    /// Choose the Algorithm 1 segment-rebuild strategy (the paper's
    /// default is shape-preserving; `EvenSlope` is its stated
    /// alternative).
    #[must_use]
    pub fn with_strategy(mut self, strategy: ReshapeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the iteration budget. A budget of 0 is treated as 1 —
    /// [`Self::compute`] always runs at least one round.
    #[must_use]
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Override the feasibility tolerance (joules). Non-positive tolerances
    /// are clamped to the smallest positive value.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        debug_assert!(tol > 0.0);
        self.tolerance = tol.max(f64::MIN_POSITIVE);
        self
    }

    /// The problem being solved.
    pub fn problem(&self) -> &AllocationProblem {
        &self.problem
    }

    /// Run the computation.
    ///
    /// # Errors
    /// * [`DpmError::InfeasibleAllocation`] when the iteration reaches a
    ///   fixed point whose trajectory still violates the battery window —
    ///   the problem is over-constrained (e.g. the standby floor alone
    ///   drains below `C_min` in eclipse);
    /// * [`DpmError::ConvergenceFailure`] when the iteration budget runs out
    ///   before either feasibility or a fixed point.
    pub fn compute(&self) -> Result<InitialAllocation, DpmError> {
        self.compute_impl(true).map(|(alloc, _)| alloc)
    }

    /// [`Self::compute`] without recording the per-round history:
    /// `iterations` comes back empty and the convergence loop runs
    /// allocation-free (scratch buffers are recycled between rounds, and no
    /// per-round clones of the allocation/trajectory are made). The final
    /// allocation and trajectory are bit-identical to [`Self::compute`]'s.
    ///
    /// Use this on hot paths (campaign/sweep/fleet setup) where only the
    /// accepted result matters; the Tables 2/4 reproduction needs
    /// [`Self::compute`].
    ///
    /// # Errors
    /// Same conditions as [`Self::compute`].
    pub fn compute_lean(&self) -> Result<InitialAllocation, DpmError> {
        self.compute_impl(false).map(|(alloc, _)| alloc)
    }

    /// Shared convergence loop. Per round the Eq. 10 trajectory is built by
    /// the fused [`PowerSeries::net_cumulative_into`] kernel into a scratch
    /// buffer that round-trips through `EnergyTrajectory` (so Algorithm 1
    /// can borrow it) and back; the next allocation is written in place via
    /// [`EnergyTrajectory::residual_allocation_into`]. With
    /// `keep_history` the pre-optimization behaviour (one owned
    /// [`AllocationIteration`] per round) is preserved on top of the same
    /// arithmetic, so both modes produce identical bits.
    ///
    /// Returns the result plus the number of rounds run (needed by
    /// [`Self::compute_with`]'s telemetry when history is off).
    fn compute_impl(&self, keep_history: bool) -> Result<(InitialAllocation, usize), DpmError> {
        let p = &self.problem;
        let (floor, ceil) = (p.p_floor.value(), p.p_ceiling.value());
        // Eq. 8: scale the demand shape so dissipation balances supply over
        // the period; then the raw trajectory is periodic and reshaping is
        // well-defined cyclically.
        let mut allocation =
            normalize_to_supply(&p.demand, &p.charging).map(|v| v.clamp(floor, ceil));

        let slot = p.charging.slot_width();
        let (c_min, c_max) = (p.limits.c_min.value(), p.limits.c_max.value());
        let mut iterations = Vec::new();
        let mut rounds = 0usize;
        let mut points_scratch: Vec<f64> = Vec::new();
        let mut next_values: Vec<f64> = Vec::new();
        for _ in 0..self.max_iterations.max(1) {
            p.charging
                .net_cumulative_into(&allocation, p.initial_charge, &mut points_scratch);
            rounds += 1;
            let ok = points_scratch
                .iter()
                .all(|&pt| pt >= c_min - self.tolerance && pt <= c_max + self.tolerance);
            let trajectory = EnergyTrajectory::assemble(slot, std::mem::take(&mut points_scratch));
            if keep_history {
                iterations.push(AllocationIteration {
                    allocation: allocation.clone(),
                    trajectory: trajectory.clone(),
                    feasible: ok,
                });
            }
            if ok {
                return Ok((
                    InitialAllocation {
                        allocation,
                        trajectory,
                        feasible: true,
                        iterations,
                    },
                    rounds,
                ));
            }
            let reshaped = reshape_trajectory_with(&trajectory, p.limits, self.strategy);
            reshaped.trajectory.residual_allocation_into(
                &p.charging,
                floor,
                ceil,
                &mut next_values,
            );
            if next_values.as_slice() == allocation.values() {
                return Err(DpmError::InfeasibleAllocation { iterations: rounds });
            }
            allocation.values_mut().copy_from_slice(&next_values);
            points_scratch = trajectory.into_points();
        }
        Err(DpmError::ConvergenceFailure { iterations: rounds })
    }

    /// [`Self::compute`], with the outcome recorded into `telemetry`:
    /// counters for calls and Algorithm 1 reshape rounds, an `alloc.iterations`
    /// histogram, and a converged/infeasible/budget-exhausted event. The
    /// events carry slot `None` and time `0.0` — the allocation runs before
    /// simulated time starts.
    pub fn compute_with(&self, telemetry: &Recorder) -> Result<InitialAllocation, DpmError> {
        self.compute_with_impl(telemetry, true)
    }

    /// [`Self::compute_lean`] with the same telemetry as
    /// [`Self::compute_with`]. Convergence-round counters and events are
    /// still exact — the loop reports them directly rather than reading the
    /// (empty) history.
    ///
    /// # Errors
    /// Same conditions as [`Self::compute`].
    pub fn compute_lean_with(&self, telemetry: &Recorder) -> Result<InitialAllocation, DpmError> {
        self.compute_with_impl(telemetry, false)
    }

    fn compute_with_impl(
        &self,
        telemetry: &Recorder,
        keep_history: bool,
    ) -> Result<InitialAllocation, DpmError> {
        let _span = telemetry.span("alloc.compute");
        let result = self.compute_impl(keep_history);
        telemetry.incr("alloc.compute.calls", 1);
        match &result {
            Ok((_, rounds)) => {
                let rounds = *rounds;
                telemetry.incr("alloc.reshape.iterations", rounds as u64);
                telemetry.observe("alloc.iterations", rounds as f64);
                telemetry.event(
                    "alloc.converged",
                    None,
                    0.0,
                    &[("iterations", rounds as f64)],
                );
            }
            Err(DpmError::InfeasibleAllocation { iterations }) => telemetry.event(
                "alloc.infeasible",
                None,
                0.0,
                &[("iterations", *iterations as f64)],
            ),
            Err(DpmError::ConvergenceFailure { iterations }) => telemetry.event(
                "alloc.convergence_failure",
                None,
                0.0,
                &[("iterations", *iterations as f64)],
            ),
            Err(_) => {}
        }
        result.map(|(alloc, _)| alloc)
    }
}

/// Eq. 8: `u_new = u·w · ∫c / ∫(u·w)`. When the demand shape integrates to
/// zero (no events expected anywhere), fall back to spreading the supply
/// uniformly — the paper does not define this corner, but a zero allocation
/// would waste the whole charge.
pub fn normalize_to_supply(demand: &PowerSeries, charging: &PowerSeries) -> PowerSeries {
    let supply = charging.integral();
    let want = demand.integral();
    if want.value().abs() < f64::EPSILON {
        // A validated charging series is non-empty with a positive slot, so
        // the uniform fallback needs no re-validation.
        let uniform = supply.value() / charging.period().value();
        return charging.map(|_| uniform);
    }
    demand.scale(supply / want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{joules, seconds, watts};

    fn slot() -> crate::units::Seconds {
        seconds(4.8)
    }

    /// Scenario-I-shaped inputs: sun for half the orbit, eclipse after.
    fn scenario_like() -> AllocationProblem {
        let charging = PowerSeries::new(
            slot(),
            vec![
                2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        // Twin-peak demand shape (arbitrary units; Eq. 8 rescales).
        let demand = PowerSeries::new(
            slot(),
            vec![1.6, 1.0, 0.3, 0.3, 1.0, 1.7, 1.6, 1.0, 0.3, 0.3, 1.0, 1.7],
        )
        .unwrap();
        AllocationProblem {
            charging,
            demand,
            initial_charge: joules(8.0),
            limits: BatteryLimits::new(joules(0.5), joules(16.0)).unwrap(),
            p_floor: watts(8.0 * 0.0066),
            p_ceiling: watts(8.0 * 0.546),
        }
    }

    #[test]
    fn normalization_balances_supply() {
        let p = scenario_like();
        let u = normalize_to_supply(&p.demand, &p.charging);
        assert!(u.integral().approx_eq(p.charging.integral(), 1e-9));
    }

    #[test]
    fn normalization_of_zero_demand_spreads_supply() {
        let p = scenario_like();
        let zero = PowerSeries::constant(slot(), 12, 0.0).unwrap();
        let u = normalize_to_supply(&zero, &p.charging);
        assert!(u.integral().approx_eq(p.charging.integral(), 1e-9));
        // Uniform.
        let first = u.get(0);
        assert!(u.values().iter().all(|&v| (v - first).abs() < 1e-12));
    }

    #[test]
    fn compute_converges_to_feasible_allocation() {
        let alloc = InitialAllocator::new(scenario_like())
            .unwrap()
            .compute()
            .unwrap();
        assert!(alloc.feasible, "iterations: {}", alloc.iterations.len());
        assert!(alloc.trajectory.within(joules(0.5), joules(16.0), 1e-3));
        // Converges in a handful of rounds, like the paper's 5.
        assert!(alloc.iterations.len() <= 8, "{}", alloc.iterations.len());
    }

    #[test]
    fn allocation_respects_power_bounds() {
        let alloc = InitialAllocator::new(scenario_like())
            .unwrap()
            .compute()
            .unwrap();
        let p = scenario_like();
        for &v in alloc.allocation.values() {
            assert!(v >= p.p_floor.value() - 1e-12);
            assert!(v <= p.p_ceiling.value() + 1e-12);
        }
    }

    #[test]
    fn tight_battery_forces_multiple_iterations() {
        let mut p = scenario_like();
        p.limits = BatteryLimits::new(joules(0.5), joules(9.0)).unwrap();
        p.initial_charge = joules(5.0);
        let alloc = InitialAllocator::new(p).unwrap().compute().unwrap();
        assert!(alloc.iterations.len() > 1);
        assert!(alloc.feasible, "iters={}", alloc.iterations.len());
    }

    #[test]
    fn infeasible_problem_reports_best_effort() {
        let mut p = scenario_like();
        // A floor so high the battery must drain below C_min in eclipse.
        p.p_floor = watts(3.0);
        p.p_ceiling = watts(5.0);
        let err = InitialAllocator::new(p)
            .unwrap()
            .with_max_iterations(8)
            .compute()
            .unwrap_err();
        assert!(matches!(err, DpmError::InfeasibleAllocation { iterations } if iterations >= 1));
    }

    #[test]
    fn already_feasible_stops_after_one_round() {
        let mut p = scenario_like();
        // Huge battery: nothing to fix.
        p.limits = BatteryLimits::new(joules(0.0), joules(1e6)).unwrap();
        let alloc = InitialAllocator::new(p).unwrap().compute().unwrap();
        assert_eq!(alloc.iterations.len(), 1);
        assert!(alloc.feasible);
    }

    #[test]
    fn trajectory_is_periodic_after_normalization() {
        let alloc = InitialAllocator::new(scenario_like())
            .unwrap()
            .compute()
            .unwrap();
        let pts = alloc.iterations[0].trajectory.points();
        // Round 0 allocation is the clamped normalized demand; unless the
        // clamp bit, start and end levels coincide (Eq. 8 balance).
        assert!(
            (pts[0] - pts[pts.len() - 1]).abs() < 0.5,
            "start {} vs end {}",
            pts[0],
            pts[pts.len() - 1]
        );
    }

    #[test]
    fn even_slope_strategy_also_converges() {
        let alloc = InitialAllocator::new(scenario_like())
            .unwrap()
            .with_strategy(ReshapeStrategy::EvenSlope)
            .compute()
            .unwrap();
        assert!(alloc.feasible, "iterations: {}", alloc.iterations.len());
        assert!(alloc.trajectory.within(joules(0.5), joules(16.0), 1e-3));
    }

    #[test]
    fn even_slope_flattens_the_allocation() {
        // The even strategy yields a flatter allocation (lower variance)
        // than the shape-preserving one on a peaky demand.
        let shaped = InitialAllocator::new(scenario_like())
            .unwrap()
            .compute()
            .unwrap();
        let even = InitialAllocator::new(scenario_like())
            .unwrap()
            .with_strategy(ReshapeStrategy::EvenSlope)
            .compute()
            .unwrap();
        let variance = |s: &PowerSeries| {
            let m = s.mean().value();
            s.values().iter().map(|v| (v - m).powi(2)).sum::<f64>() / s.len() as f64
        };
        if shaped.feasible && even.feasible {
            assert!(
                variance(&even.allocation) <= variance(&shaped.allocation) + 1e-9,
                "even {} vs shaped {}",
                variance(&even.allocation),
                variance(&shaped.allocation)
            );
        }
    }

    #[test]
    fn compute_lean_is_bit_identical_to_compute() {
        for strategy in [ReshapeStrategy::ShapePreserving, ReshapeStrategy::EvenSlope] {
            let full = InitialAllocator::new(scenario_like())
                .unwrap()
                .with_strategy(strategy)
                .compute()
                .unwrap();
            let lean = InitialAllocator::new(scenario_like())
                .unwrap()
                .with_strategy(strategy)
                .compute_lean()
                .unwrap();
            assert!(lean.iterations.is_empty());
            assert_eq!(lean.feasible, full.feasible);
            for (a, b) in lean
                .allocation
                .values()
                .iter()
                .zip(full.allocation.values())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in lean
                .trajectory
                .points()
                .iter()
                .zip(full.trajectory.points())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn mismatched_schedules_rejected() {
        let p = scenario_like();
        let bad = AllocationProblem {
            demand: PowerSeries::constant(slot(), 6, 1.0).unwrap(),
            ..p
        };
        assert!(matches!(
            InitialAllocator::new(bad),
            Err(DpmError::SeriesMismatch {
                expected: 12,
                got: 6
            })
        ));
    }
}
