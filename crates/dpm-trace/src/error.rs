//! Typed errors for trace analysis, following the repo-wide convention
//! (DESIGN.md §7): analysis over possibly hostile input degrades through
//! `Result`, never a panic.

use std::fmt;

/// Why a trace or baseline document could not be analyzed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line of the document failed to deserialize.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The serde layer's message.
        message: String,
    },
    /// The trace header advertises a schema this analyzer does not speak.
    SchemaMismatch {
        /// Version found in the meta line.
        found: u32,
        /// Version this crate was built against.
        expected: u32,
    },
    /// The document's first line is not a `meta` header.
    MissingMeta,
    /// A baseline document is structurally invalid.
    InvalidBaseline(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            Self::SchemaMismatch { found, expected } => write!(
                f,
                "trace schema v{found} is not the v{expected} this analyzer understands"
            ),
            Self::MissingMeta => {
                write!(f, "the first line of a trace must be its meta header")
            }
            Self::InvalidBaseline(reason) => write!(f, "invalid baseline: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<dpm_telemetry::ParseError> for TraceError {
    fn from(e: dpm_telemetry::ParseError) -> Self {
        Self::Parse {
            line: e.line,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(TraceError, &str)> = vec![
            (
                TraceError::Parse {
                    line: 3,
                    message: "bad".into(),
                },
                "line 3",
            ),
            (
                TraceError::SchemaMismatch {
                    found: 9,
                    expected: 1,
                },
                "v9",
            ),
            (TraceError::MissingMeta, "meta"),
            (TraceError::InvalidBaseline("no spans".into()), "no spans"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn converts_from_telemetry_parse_errors() {
        let e = dpm_telemetry::ParseError {
            line: 7,
            message: "x".into(),
        };
        assert_eq!(
            TraceError::from(e),
            TraceError::Parse {
                line: 7,
                message: "x".into()
            }
        );
    }
}
