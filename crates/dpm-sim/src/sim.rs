//! The top-level simulation: environment + battery + board + governor,
//! advanced slot by slot with fluid-flow job processing inside each slot
//! and punctual disturbances from the event queue.
//!
//! Each `τ` the governor is shown what actually happened (energy used,
//! energy supplied, battery level, backlog) and commands an operating
//! point — exactly the §4.3 feedback loop. Within the slot the simulator
//! integrates supply and demand over `substeps` sub-intervals so charging
//! edges and brown-outs land at the right times.
//!
//! ## Fault injection
//!
//! [`Disturbance`]s scheduled through [`Simulation::schedule`] perturb a
//! run mid-flight: supply scaling and total charging dropouts, event
//! storms, fail-stop processor faults (and their recoveries), permanent
//! battery capacity fades, and battery-gauge sensor faults. The sensor
//! faults corrupt only what the governor *observes*
//! ([`SlotObservation::battery`] comes from the [`ChargeSensor`] gauge);
//! the physical battery keeps its true level, so a governor that trusts a
//! lying gauge mismanages a perfectly healthy pack — exactly the failure
//! class a `SafetyGovernor` guard band is designed to bound.

use crate::battery::{Battery, BatteryConfig};
use crate::board::PamaBoard;
use crate::engine::EventQueue;
use crate::error::SimError;
use crate::events::EventGenerator;
use crate::meter::{ChargeSensor, PowerMeter};
use crate::source::ChargingSource;
use crate::stats::{SimReport, SlotRecord};
use crate::topo::{TopologyMode, TopologyRuntime};
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::OperatingPoint;
use dpm_core::platform::Platform;
use dpm_core::units::{seconds, Joules, Seconds};
use dpm_telemetry::Recorder;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Punctual mid-run disturbances (failure injection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Disturbance {
    /// Scale the supply by `factor` for `duration` (cloud cover, panel
    /// fault, attitude excursion).
    SupplyScale {
        /// Multiplier applied to the source output.
        factor: f64,
        /// How long the scaling lasts.
        duration: Seconds,
    },
    /// Inject `count` extra events at once (a storm passage).
    EventBurst {
        /// Number of events injected.
        count: usize,
    },
    /// The charging path delivers nothing for `duration` (harness
    /// disconnect, eclipse excursion, blown charge regulator). Unlike
    /// `SupplyScale { factor: 0.0, .. }` it composes with an active scale
    /// — a later scale event does not cancel the dropout.
    ChargingDropout {
        /// How long the supply is fully cut.
        duration: Seconds,
    },
    /// Fail-stop fault on processor `index`: the chip drops to its standby
    /// floor, contributes no throughput, and ignores governor commands
    /// until a matching [`Disturbance::ProcessorRecover`].
    ProcessorFault {
        /// Board index of the chip (0 is the controller).
        index: usize,
    },
    /// Clear a fail-stop fault on processor `index`; the chip rejoins in
    /// standby and wakes at the next governor command.
    ProcessorRecover {
        /// Board index of the chip.
        index: usize,
    },
    /// Permanently derate the battery's usable window:
    /// `C_max ← C_min + factor·(C_max − C_min)` (see
    /// [`Battery::fade`]). Fades compose multiplicatively.
    BatteryFade {
        /// Remaining fraction of the capacity window, clamped to `[0, 1]`.
        factor: f64,
    },
    /// The battery gauge reads with ±`amplitude` relative error for
    /// `duration`, deterministically seeded — physics is untouched.
    SensorNoise {
        /// Relative error bound (0.2 = ±20%).
        amplitude: f64,
        /// How long the gauge stays noisy.
        duration: Seconds,
        /// Seed for the per-reading error hash.
        seed: u64,
    },
    /// The battery gauge freezes at its next reading for `duration`.
    SensorStuck {
        /// How long the gauge stays frozen.
        duration: Seconds,
    },
    /// Fail-stop fault on power element `element` of the attached
    /// topology (see [`crate::topo`]); a no-op when the run has none.
    /// Broker governance cascades dependents to a legal degraded
    /// configuration; flat governance keeps dependents powered (and
    /// impaired) above the dead provider.
    ElementFault {
        /// Element index in [`crate::topo::pama_topology`] order.
        element: usize,
    },
    /// Clear an element fault; the broker restores in dependency order
    /// after dwell hysteresis, flat governance repowers at the next slot.
    ElementRecover {
        /// Element index in [`crate::topo::pama_topology`] order.
        element: usize,
    },
}

/// Run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Charging periods to simulate.
    pub periods: usize,
    /// Governor slots per period (the paper: 12).
    pub slots_per_period: usize,
    /// Integration sub-steps per slot.
    pub substeps: usize,
    /// Keep the per-slot trace in the report.
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            periods: 2,
            slots_per_period: 12,
            substeps: 8,
            trace: true,
        }
    }
}

/// The assembled simulation.
pub struct Simulation {
    platform: Arc<Platform>,
    source: Box<dyn ChargingSource>,
    events: Box<dyn EventGenerator>,
    battery: Battery,
    board: PamaBoard,
    meter: PowerMeter,
    sensor: ChargeSensor,
    disturbances: EventQueue<Disturbance>,
    config: SimConfig,
    supply_scale: f64,
    supply_scale_until: Seconds,
    dropout_until: Seconds,
    /// Power-topology governance (none by default — the classic flat
    /// board with no element structure at all).
    topology: Option<TopologyRuntime>,
    /// Last battery reading the governor saw; re-served while the gauge's
    /// power-element chain is dark (stale-gauge semantics).
    last_gauge: Joules,
    /// Telemetry sink (disabled by default): per-slot battery/energy
    /// events, disturbance events, end-of-run gauges.
    telemetry: Recorder,
}

impl Simulation {
    /// Assemble a simulation with an ideal battery at `initial_charge`.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] on a degenerate run configuration,
    /// [`SimError::Core`] on an invalid platform, and any battery error
    /// from [`Battery::new`].
    pub fn new(
        platform: impl Into<Arc<Platform>>,
        source: Box<dyn ChargingSource>,
        events: Box<dyn EventGenerator>,
        initial_charge: Joules,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let platform = platform.into();
        if config.periods < 1 || config.slots_per_period < 1 || config.substeps < 1 {
            return Err(SimError::InvalidConfig(format!(
                "periods, slots_per_period and substeps must all be >= 1, \
                 got {} / {} / {}",
                config.periods, config.slots_per_period, config.substeps
            )));
        }
        platform.validate()?;
        let battery = Battery::new(BatteryConfig::ideal(platform.battery), initial_charge)?;
        // One shared platform serves both the simulation and its board —
        // no per-board deep clone of the frequency/power menus.
        let board = PamaBoard::new(Arc::clone(&platform));
        Ok(Self {
            platform,
            source,
            events,
            battery,
            board,
            meter: PowerMeter::new(),
            sensor: ChargeSensor::new(),
            disturbances: EventQueue::new(),
            config,
            supply_scale: 1.0,
            supply_scale_until: Seconds::ZERO,
            dropout_until: Seconds::ZERO,
            topology: None,
            last_gauge: initial_charge,
            telemetry: Recorder::disabled(),
        })
    }

    /// Attach a telemetry recorder. Every slot emits a `sim.slot` event
    /// (battery, energy flows, backlog, at simulated time), disturbances
    /// emit `sim.disturbance` events as they fire, and the run's closing
    /// balances land as `sim.*` gauges. All of it is stamped with
    /// simulated time only, so the trace stays deterministic.
    #[must_use = "builders return a new simulation rather than mutating in place"]
    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attach a power-element topology (see [`crate::topo`]). Worker
    /// commands are reconciled against element faults every slot; in
    /// [`TopologyMode::Broker`] a governor whose fallback budget is
    /// exhausted triggers an orderly terminal shutdown. Call *after*
    /// [`with_telemetry`](Self::with_telemetry) so the `broker.*` stream
    /// lands in the same trace.
    ///
    /// # Errors
    /// Propagates topology construction errors as [`SimError::Broker`].
    #[must_use = "builders return a new simulation rather than mutating in place"]
    pub fn with_topology(mut self, mode: TopologyMode) -> Result<Self, SimError> {
        self.topology = Some(TopologyRuntime::new(mode, self.telemetry.clone())?);
        Ok(self)
    }

    /// Use a non-ideal battery.
    ///
    /// # Errors
    /// Propagates [`Battery::new`] on a misconfigured battery.
    #[must_use = "builders return a new simulation rather than mutating in place"]
    pub fn with_battery(
        mut self,
        config: BatteryConfig,
        initial: Joules,
    ) -> Result<Self, SimError> {
        self.battery = Battery::new(config, initial)?;
        Ok(self)
    }

    /// Schedule a disturbance at absolute time `t`.
    pub fn schedule(&mut self, t: Seconds, d: Disturbance) {
        self.disturbances.schedule(t, d);
    }

    /// Start the run: emit the run-config gauges (the audit anchors) and
    /// hand back an [`ActiveRun`] that steps one τ slot at a time. The
    /// batch [`Simulation::run`] is a thin loop over this, so a stepped
    /// run produces a byte-identical trace and the same report.
    pub fn begin(self) -> ActiveRun {
        let tau = self.platform.tau;
        let total_slots = (self.config.periods * self.config.slots_per_period) as u64;
        let dt = seconds(tau.value() / self.config.substeps as f64);
        let initial_battery = self.battery.level().value();
        if self.telemetry.is_enabled() {
            // The audit anchors: the capacity window the trajectory must
            // stay inside (fades only ever *shrink* C_max below this), the
            // starting level the energy balance is taken from, and whether
            // this battery's accounting closes exactly (see
            // `Battery::conserves_energy`).
            let limits = self.battery.limits();
            self.telemetry.gauge("sim.c_min_j", limits.c_min.value());
            self.telemetry.gauge("sim.c_max_j", limits.c_max.value());
            self.telemetry
                .gauge("sim.initial_battery_j", initial_battery);
            self.telemetry.gauge(
                "sim.energy_conserving",
                if self.battery.conserves_energy() {
                    1.0
                } else {
                    0.0
                },
            );
        }
        ActiveRun {
            sim: self,
            total_slots,
            dt,
            initial_battery,
            used_last: Joules::ZERO,
            supplied_last: Joules::ZERO,
            compute_energy: 0.0,
            slots: Vec::new(),
            next_slot: 0,
            started: std::time::Instant::now(),
        }
    }

    /// Run to completion under `governor`.
    ///
    /// # Errors
    /// Propagates the governor's [`dpm_core::error::DpmError`] as
    /// [`SimError::Core`]; the report of the slots already simulated is
    /// lost (a failed run has no meaningful metrics).
    pub fn run(self, governor: &mut dyn Governor) -> Result<SimReport, SimError> {
        let mut run = self.begin();
        while run.step(governor)? {}
        Ok(run.finish(governor.name()))
    }

    /// Trace a disturbance as it fires, stamped with its scheduled time
    /// and its kind as the event detail.
    fn emit_disturbance(&self, at: Seconds, d: &Disturbance) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let (kind, fields): (&str, Vec<(&str, f64)>) = match d {
            Disturbance::SupplyScale { factor, duration } => (
                "SupplyScale",
                vec![("factor", *factor), ("duration_s", duration.value())],
            ),
            Disturbance::EventBurst { count } => ("EventBurst", vec![("count", *count as f64)]),
            Disturbance::ChargingDropout { duration } => {
                ("ChargingDropout", vec![("duration_s", duration.value())])
            }
            Disturbance::ProcessorFault { index } => {
                ("ProcessorFault", vec![("index", *index as f64)])
            }
            Disturbance::ProcessorRecover { index } => {
                ("ProcessorRecover", vec![("index", *index as f64)])
            }
            Disturbance::BatteryFade { factor } => ("BatteryFade", vec![("factor", *factor)]),
            Disturbance::SensorNoise {
                amplitude,
                duration,
                ..
            } => (
                "SensorNoise",
                vec![("amplitude", *amplitude), ("duration_s", duration.value())],
            ),
            Disturbance::SensorStuck { duration } => {
                ("SensorStuck", vec![("duration_s", duration.value())])
            }
            Disturbance::ElementFault { element } => {
                ("ElementFault", vec![("element", *element as f64)])
            }
            Disturbance::ElementRecover { element } => {
                ("ElementRecover", vec![("element", *element as f64)])
            }
        };
        self.telemetry
            .event_with_detail("sim.disturbance", None, at.value(), &fields, kind);
        self.telemetry.incr("sim.disturbances", 1);
    }

    fn apply_disturbances(&mut self, t: Seconds, dt: Seconds) {
        while let Some((at, d)) = self
            .disturbances
            .pop_before(seconds(t.value() + dt.value()))
        {
            self.emit_disturbance(at, &d);
            match d {
                Disturbance::SupplyScale { factor, duration } => {
                    self.supply_scale = factor.max(0.0);
                    self.supply_scale_until = seconds(at.value() + duration.value());
                }
                Disturbance::EventBurst { count } => {
                    self.board.enqueue(count, at);
                }
                Disturbance::ChargingDropout { duration } => {
                    let until = seconds(at.value() + duration.value());
                    self.dropout_until = self.dropout_until.max(until);
                }
                Disturbance::ProcessorFault { index } => {
                    self.board.set_fault(index, true, at);
                }
                Disturbance::ProcessorRecover { index } => {
                    self.board.set_fault(index, false, at);
                }
                Disturbance::BatteryFade { factor } => {
                    self.battery.fade(factor);
                }
                Disturbance::SensorNoise {
                    amplitude,
                    duration,
                    seed,
                } => {
                    self.sensor.inject_noise(
                        amplitude,
                        seconds(at.value() + duration.value()),
                        seed,
                    );
                }
                Disturbance::SensorStuck { duration } => {
                    self.sensor
                        .inject_stuck(seconds(at.value() + duration.value()));
                }
                Disturbance::ElementFault { element } => {
                    if let Some(tp) = self.topology.as_mut() {
                        tp.fault(element, at, &mut self.board);
                    }
                }
                Disturbance::ElementRecover { element } => {
                    if let Some(tp) = self.topology.as_mut() {
                        tp.recover(element, at);
                    }
                }
            }
        }
    }
}

/// A simulation in flight: [`Simulation::begin`] emits the run-config
/// gauges and returns this handle, [`ActiveRun::step`] advances exactly
/// one τ slot under a governor, and [`ActiveRun::finish`] closes the
/// books (end-of-run counters, gauges, [`SimReport`]).
///
/// This is the session-service face of the simulator (`dpm-serve`): a
/// long-running session holds an `ActiveRun`, advances it as requests
/// arrive, injects disturbances and event-rate changes mid-flight, and
/// answers queries from the accessors. Driving `step` to completion and
/// then `finish` is byte-identical — same trace, same report — to the
/// batch [`Simulation::run`], which is itself just this loop.
pub struct ActiveRun {
    sim: Simulation,
    total_slots: u64,
    dt: Seconds,
    initial_battery: f64,
    used_last: Joules,
    supplied_last: Joules,
    compute_energy: f64,
    slots: Vec<SlotRecord>,
    next_slot: u64,
    /// Wall clock at `begin`, closing the `sim.run` profiler span in
    /// `finish`. Never reaches the trace — only the span *count* does,
    /// which is identical however the run is driven.
    started: std::time::Instant,
}

impl ActiveRun {
    /// Advance one τ slot under `governor`. Returns `Ok(false)` once the
    /// configured horizon is exhausted (the call is then a no-op).
    ///
    /// # Errors
    /// Propagates the governor's [`dpm_core::error::DpmError`] as
    /// [`SimError::Core`] and topology errors as [`SimError::Broker`].
    pub fn step(&mut self, governor: &mut dyn Governor) -> Result<bool, SimError> {
        if self.next_slot >= self.total_slots {
            return Ok(false);
        }
        let slot = self.next_slot;
        let tau = self.sim.platform.tau;
        let dt = self.dt;
        let elastic = governor.uses_surplus_energy();
        let t_slot = seconds(slot as f64 * tau.value());
        // The governor sees the *gauge* reading, not ground truth —
        // sensor faults corrupt the observation while the battery's
        // physical level (and the report metrics) stay honest. A dark
        // gauge power-element chain is worse still: the reading
        // freezes at the last value that got through.
        let gauge_live = match &self.sim.topology {
            Some(tp) => tp.gauge_powered(),
            None => true,
        };
        let reading = if gauge_live {
            self.sim.sensor.read(t_slot, self.sim.battery.level())
        } else {
            self.sim.last_gauge
        };
        self.sim.last_gauge = reading;
        let obs = SlotObservation {
            slot,
            time: t_slot,
            battery: reading,
            used_last: self.used_last,
            supplied_last: self.supplied_last,
            backlog: self.sim.board.backlog(),
        };
        let mut point = governor.decide(&obs)?;
        if let Some(topo) = self.sim.topology.as_mut() {
            let granted = topo.begin_slot(
                slot,
                t_slot,
                point.workers,
                governor.exhausted(),
                &mut self.sim.board,
            )?;
            if granted < point.workers {
                // The topology could not power the full command: run
                // what was granted (OFF when nothing was).
                point = if granted == 0 {
                    OperatingPoint::OFF
                } else {
                    OperatingPoint::new(granted, point.frequency, point.voltage)
                };
            }
        }
        let transition = self.sim.board.apply(point, t_slot);

        let mut slot_used = Joules::ZERO;
        let mut slot_supplied = Joules::ZERO;
        let mut slot_jobs = 0u64;

        for sub in 0..self.sim.config.substeps {
            let t = seconds(t_slot.value() + sub as f64 * dt.value());
            self.sim.apply_disturbances(t, dt);

            // --- supply ------------------------------------------------
            let scale = if t.value() < self.sim.dropout_until.value() {
                // A charging dropout overrides any concurrent scaling.
                0.0
            } else if t.value() < self.sim.supply_scale_until.value() {
                self.sim.supply_scale
            } else {
                1.0
            };
            // A glitched source model (negative/NaN power) must not
            // corrupt the accounting: offer nothing instead.
            let offered = (self.sim.source.mean_power(t, dt) * dt * scale).max(Joules::ZERO);
            self.sim.battery.charge(offered);
            slot_supplied += offered;

            // --- arrivals ----------------------------------------------
            let arrivals = self.sim.events.arrivals(t, dt);
            self.sim.board.enqueue(arrivals, t);

            // --- demand & brown-out ------------------------------------
            // Race-to-idle: chips drop to standby the moment the queue
            // empties (the paper's static baseline is "turned off while
            // there is no input data"; the proposed controller's PIMs
            // likewise check for work after each computation). Demand
            // is therefore active power for the busy share of the
            // sub-step and the standby floor for the rest. The first
            // sub-step additionally loses the transition latency.
            let compute_fraction = if sub == 0 {
                (1.0 - transition.value() / dt.value()).clamp(0.0, 1.0)
            } else {
                1.0
            };
            let busy_target = self.sim.board.work_fraction(dt, elastic) * compute_fraction;
            let p_on = self.sim.board.power();
            let p_idle = self.sim.board.idle_power();
            let demand = (p_on * busy_target + p_idle * (1.0 - busy_target)) * dt;
            let delivered = self.sim.battery.draw_over(demand, dt.value());
            let availability = if demand.value() > 1e-15 {
                (delivered / demand).clamp(0.0, 1.0)
            } else {
                1.0
            };
            slot_used += delivered;
            self.sim.meter.record(t, dt, delivered / dt);

            // --- computation -------------------------------------------
            // `busy` is the share of the sub-step actually spent
            // computing (work-, transition- and energy-limited), so the
            // energy that served computation is p_on·busy·dt.
            let (done, busy) =
                self.sim
                    .board
                    .advance(t, dt, availability * compute_fraction, elastic);
            slot_jobs += done;
            self.compute_energy += (p_on * busy * dt).value().min(delivered.value());

            self.sim.battery.tick(dt.value());
        }

        self.used_last = slot_used;
        self.supplied_last = slot_supplied;
        if self.sim.telemetry.is_enabled() {
            self.sim.telemetry.event(
                "sim.slot",
                Some(slot),
                t_slot.value(),
                &[
                    ("battery_j", self.sim.battery.level().value()),
                    ("used_j", slot_used.value()),
                    ("supplied_j", slot_supplied.value()),
                    ("undersupplied_j", self.sim.battery.undersupplied().value()),
                    ("jobs", slot_jobs as f64),
                    ("backlog", self.sim.board.backlog() as f64),
                ],
            );
            self.sim
                .telemetry
                .observe("sim.battery_j", self.sim.battery.level().value());
            self.sim
                .telemetry
                .observe("sim.slot.used_j", slot_used.value());
        }
        if self.sim.config.trace {
            self.slots.push(SlotRecord {
                slot,
                time: t_slot.value(),
                workers: point.workers,
                freq_mhz: point.frequency.mhz(),
                used: slot_used.value(),
                supplied: slot_supplied.value(),
                battery: self.sim.battery.level().value(),
                undersupplied: self.sim.battery.undersupplied().value(),
                jobs: slot_jobs,
                backlog: self.sim.board.backlog(),
            });
        }
        self.next_slot += 1;
        Ok(self.next_slot < self.total_slots)
    }

    /// Close the books: end-of-run counters and gauges into the trace,
    /// and the [`SimReport`] over however many slots actually ran (a
    /// session may close early; the accounting covers what happened).
    pub fn finish(self, governor_name: &str) -> SimReport {
        let tau = self.sim.platform.tau;
        let duration = self.next_slot as f64 * tau.value();
        if self.sim.telemetry.is_enabled() {
            // Whole-run profiler span, recorded here rather than as an
            // RAII guard in `Simulation::run` so a stepped session run
            // (`begin`/`step`/`finish`) emits the byte-identical trace
            // line. The wall-clock side lands in the `.profile` only.
            let run_wall = self.started.elapsed().as_secs_f64();
            self.sim.telemetry.record_span("sim.run", run_wall);
            self.sim.telemetry.record_span_path("sim.run", run_wall);
            self.sim.telemetry.incr("sim.slots", self.next_slot);
            self.sim
                .telemetry
                .incr("sim.jobs_done", self.sim.board.jobs_done());
            self.sim
                .telemetry
                .incr("sim.jobs_dropped", self.sim.board.dropped());
            self.sim
                .telemetry
                .gauge("sim.final_battery_j", self.sim.battery.level().value());
            self.sim
                .telemetry
                .gauge("sim.wasted_j", self.sim.battery.wasted().value());
            self.sim.telemetry.gauge(
                "sim.undersupplied_j",
                self.sim.battery.undersupplied().value(),
            );
            self.sim
                .telemetry
                .gauge("sim.delivered_j", self.sim.battery.delivered().value());
            self.sim
                .telemetry
                .gauge("sim.offered_j", self.sim.battery.offered().value());
            self.sim
                .telemetry
                .gauge("sim.rate_loss_j", self.sim.battery.rate_loss().value());
        }
        let latency = self.sim.board.latency();
        SimReport {
            governor: governor_name.to_string(),
            duration,
            offered: self.sim.battery.offered().value(),
            wasted: self.sim.battery.wasted().value(),
            undersupplied: self.sim.battery.undersupplied().value(),
            delivered: self.sim.battery.delivered().value(),
            compute_energy: self.compute_energy,
            jobs_done: self.sim.board.jobs_done(),
            dropped: self.sim.board.dropped(),
            mean_latency: latency.mean(),
            max_latency: latency.max,
            initial_battery: self.initial_battery,
            final_battery: self.sim.battery.level().value(),
            slots: self.slots,
            broker: self.sim.topology.as_ref().map(TopologyRuntime::stats),
        }
    }

    /// The next slot to simulate (equals slots completed so far).
    pub fn slot(&self) -> u64 {
        self.next_slot
    }

    /// The configured horizon in slots.
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Whether the configured horizon is exhausted.
    pub fn is_done(&self) -> bool {
        self.next_slot >= self.total_slots
    }

    /// The slot length τ (s).
    pub fn tau_s(&self) -> f64 {
        self.sim.platform.tau.value()
    }

    /// The battery's true level (J) — ground truth, not the gauge.
    pub fn battery_level_j(&self) -> f64 {
        self.sim.battery.level().value()
    }

    /// The battery's current usable window `(C_min, C_max)` in J
    /// (fades shrink `C_max` mid-run).
    pub fn battery_limits_j(&self) -> (f64, f64) {
        let limits = self.sim.battery.limits();
        (limits.c_min.value(), limits.c_max.value())
    }

    /// Jobs currently queued on the board.
    pub fn backlog(&self) -> usize {
        self.sim.board.backlog()
    }

    /// Energy delivered to the board in the last completed slot (J).
    pub fn last_used_j(&self) -> f64 {
        self.used_last.value()
    }

    /// Energy offered by the source in the last completed slot (J).
    pub fn last_supplied_j(&self) -> f64 {
        self.supplied_last.value()
    }

    /// Per-slot records so far (empty when `SimConfig::trace` is off).
    pub fn slot_records(&self) -> &[SlotRecord] {
        &self.slots
    }

    /// Schedule a disturbance mid-run at absolute time `t` — the live
    /// face of [`Simulation::schedule`]. Times already in the past fire
    /// on the next sub-step.
    pub fn schedule(&mut self, t: Seconds, d: Disturbance) {
        self.sim.disturbances.schedule(t, d);
    }

    /// Replace the event generator mid-run (a pushed event-rate update);
    /// takes effect from the next sub-step.
    pub fn set_events(&mut self, events: Box<dyn EventGenerator>) {
        self.sim.events = events;
    }

    /// Deterministic battery forecast: project the level forward
    /// `horizon` slots assuming the source keeps its nominal output (no
    /// future disturbances) and the board keeps drawing what it drew in
    /// the last completed slot, clamped to the usable window. Returns one
    /// projected level per future slot.
    pub fn forecast_battery_j(&self, horizon: u64) -> Vec<f64> {
        let tau = self.sim.platform.tau;
        let (c_min, c_max) = self.battery_limits_j();
        let draw = self.used_last.value();
        let mut level = self.sim.battery.level().value();
        let mut out = Vec::with_capacity(horizon as usize);
        for ahead in 0..horizon {
            let t = seconds((self.next_slot + ahead) as f64 * tau.value());
            let offered = (self.sim.source.mean_power(t, tau) * tau)
                .max(Joules::ZERO)
                .value();
            level = (level + offered - draw).clamp(c_min, c_max);
            out.push(level);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ScheduleGenerator;
    use crate::source::TraceSource;
    use dpm_core::params::OperatingPoint;
    use dpm_core::series::PowerSeries;
    use dpm_core::units::{joules, volts, Hertz};

    /// Always-on governor at a fixed point.
    struct Pinned(OperatingPoint);
    impl Governor for Pinned {
        fn name(&self) -> &str {
            "pinned"
        }
        fn decide(
            &mut self,
            _o: &SlotObservation,
        ) -> Result<OperatingPoint, dpm_core::error::DpmError> {
            Ok(self.0)
        }
    }

    fn charging() -> PowerSeries {
        PowerSeries::new(
            seconds(4.8),
            vec![
                2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap()
    }

    fn rates(v: f64) -> PowerSeries {
        PowerSeries::constant(seconds(4.8), 12, v).unwrap()
    }

    fn sim(rate: f64) -> Simulation {
        Simulation::new(
            Platform::pama(),
            Box::new(TraceSource::new(charging())),
            Box::new(ScheduleGenerator::new(rates(rate))),
            joules(8.0),
            SimConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn degenerate_config_is_rejected() {
        let cfg = SimConfig {
            periods: 0,
            ..SimConfig::default()
        };
        assert!(matches!(
            Simulation::new(
                Platform::pama(),
                Box::new(TraceSource::new(charging())),
                Box::new(ScheduleGenerator::new(rates(0.2))),
                joules(8.0),
                cfg,
            ),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn degenerate_config_message_renders_cleanly() {
        let cfg = SimConfig {
            periods: 0,
            ..SimConfig::default()
        };
        let err = Simulation::new(
            Platform::pama(),
            Box::new(TraceSource::new(charging())),
            Box::new(ScheduleGenerator::new(rates(0.2))),
            joules(8.0),
            cfg,
        )
        .err()
        .unwrap();
        // The wrapped literal must not leak its source indentation into
        // the rendered message (a previous version embedded ~17 spaces).
        assert_eq!(
            err.to_string(),
            "invalid simulation config: periods, slots_per_period and substeps \
             must all be >= 1, got 0 / 12 / 8"
        );
    }

    #[test]
    fn broker_topology_sheds_legally_while_flat_burns_power_for_nothing() {
        use crate::topo::EL_RING_A;
        let point = OperatingPoint::new(7, Hertz::from_mhz(80.0), volts(3.3));
        let run = |mode: TopologyMode| {
            let mut s = sim(2.0).with_topology(mode).unwrap();
            s.schedule(
                seconds(10.0),
                Disturbance::ElementFault { element: EL_RING_A },
            );
            s.run(&mut Pinned(point)).unwrap()
        };
        let broker = run(TopologyMode::Broker);
        let flat = run(TopologyMode::Flat);

        let bs = broker.broker.as_ref().unwrap();
        assert_eq!(bs.mode, "broker");
        assert!(bs.cascades >= 1 && bs.revocations >= 4);
        assert_eq!(flat.broker.as_ref().unwrap().mode, "flat");

        // Both arms lose ring-A throughput and drain the same supply, but
        // the flat arm splits its energy across four orphaned chips that
        // draw active power for zero work — far fewer jobs per joule.
        assert!(broker.jobs_done > 0 && flat.jobs_done > 0);
        assert!(
            flat.jobs_done < broker.jobs_done,
            "flat {} jobs vs broker {}",
            flat.jobs_done,
            broker.jobs_done
        );
        assert!(flat.jobs_per_joule() < 0.8 * broker.jobs_per_joule());
    }

    #[test]
    fn element_recovery_restores_the_granted_workers() {
        use crate::topo::EL_RING_A;
        let point = OperatingPoint::new(7, Hertz::from_mhz(80.0), volts(3.3));
        let mut s = sim(2.0).with_topology(TopologyMode::Broker).unwrap();
        s.schedule(
            seconds(10.0),
            Disturbance::ElementFault { element: EL_RING_A },
        );
        s.schedule(
            seconds(40.0),
            Disturbance::ElementRecover { element: EL_RING_A },
        );
        let report = s.run(&mut Pinned(point)).unwrap();
        let bs = report.broker.as_ref().unwrap();
        assert!(bs.restores >= bs.revocations, "{bs:?}");
        assert_eq!(bs.terminal_shutdowns, 0);
        // Late slots run the full 7-worker command again.
        assert_eq!(report.slots.last().unwrap().workers, 7);
    }

    #[test]
    fn off_governor_wastes_most_supply() {
        let report = sim(0.2).run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        // Standby floor ≈ 0.053 W barely dents the 2.36 W supply: the
        // battery fills and most of the rest is wasted.
        assert_eq!(report.jobs_done, 0);
        assert!(report.wasted > 0.5 * report.offered, "{}", report.summary());
    }

    #[test]
    fn full_power_governor_drains_battery() {
        let point = OperatingPoint::new(7, Hertz::from_mhz(80.0), volts(3.3));
        let report = sim(2.0).run(&mut Pinned(point)).unwrap();
        // 4.37 W demand vs ≤2.36 W supply: undersupply is inevitable.
        assert!(report.undersupplied > 0.0, "{}", report.summary());
        assert!(report.jobs_done > 0);
    }

    #[test]
    fn moderate_governor_processes_all_events() {
        let point = OperatingPoint::new(3, Hertz::from_mhz(40.0), volts(3.3));
        // 0.2 events/s·4.8 s·24 slots ≈ 23 events over 2 periods. With
        // race-to-idle the mean draw is only ~0.25 W, well under supply,
        // so everything completes without brown-outs or drops.
        let report = sim(0.2).run(&mut Pinned(point)).unwrap();
        assert!(report.jobs_done >= 20, "{}", report.jobs_done);
        assert_eq!(report.undersupplied, 0.0);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn energy_conservation_holds() {
        let point = OperatingPoint::new(3, Hertz::from_mhz(40.0), volts(3.3));
        let report = sim(0.5).run(&mut Pinned(point)).unwrap();
        // offered = wasted + stored_delta + delivered (ideal battery).
        let stored_delta = report.final_battery - 8.0;
        let balance = report.offered - report.wasted - report.delivered - stored_delta;
        assert!(balance.abs() < 1e-6, "imbalance {balance}");
    }

    #[test]
    fn trace_has_one_record_per_slot() {
        let report = sim(0.2).run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        assert_eq!(report.slots.len(), 24);
        assert_eq!(report.slots[5].slot, 5);
        assert!((report.slots[5].time - 24.0).abs() < 1e-9);
    }

    #[test]
    fn supply_disturbance_cuts_offered_energy() {
        let mut with = sim(0.2);
        with.schedule(
            seconds(0.0),
            Disturbance::SupplyScale {
                factor: 0.0,
                duration: seconds(28.8),
            },
        );
        let r_with = with.run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        let r_without = sim(0.2).run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        assert!(
            r_with.offered < 0.8 * r_without.offered,
            "{} vs {}",
            r_with.offered,
            r_without.offered
        );
    }

    #[test]
    fn event_burst_creates_backlog() {
        let mut s = sim(0.0);
        s.schedule(seconds(10.0), Disturbance::EventBurst { count: 40 });
        let report = s
            .run(&mut Pinned(OperatingPoint::new(
                1,
                Hertz::from_mhz(20.0),
                volts(3.3),
            )))
            .unwrap();
        // 40 jobs at ~1 job/4.8 s with ~19 slots remaining: backlog left.
        assert!(report.jobs_done >= 15, "{}", report.jobs_done);
        let last = report.slots.last().unwrap();
        assert!(last.backlog > 0);
    }

    #[test]
    fn charging_dropout_overrides_supply_scaling() {
        let mut s = sim(0.2);
        // A generous scale-up arrives first, then a dropout cuts supply
        // entirely for the rest of the first charging phase.
        s.schedule(
            seconds(0.0),
            Disturbance::SupplyScale {
                factor: 2.0,
                duration: seconds(28.8),
            },
        );
        s.schedule(
            seconds(4.8),
            Disturbance::ChargingDropout {
                duration: seconds(24.0),
            },
        );
        let r = s.run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        // The same scale-up with no dropout: both charging phases at 2×.
        let mut only_scale = sim(0.2);
        only_scale.schedule(
            seconds(0.0),
            Disturbance::SupplyScale {
                factor: 2.0,
                duration: seconds(28.8),
            },
        );
        let r_scale = only_scale.run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        let baseline = sim(0.2).run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        // One doubled slot, five dropped slots, one untouched period:
        // below even the undisturbed supply, and far below scale-only —
        // the dropout beat the concurrent 2× scale.
        assert!(
            r.offered < baseline.offered && r.offered < 0.5 * r_scale.offered,
            "{} vs baseline {} and scale-only {}",
            r.offered,
            baseline.offered,
            r_scale.offered
        );
    }

    #[test]
    fn processor_fault_and_recovery_change_throughput() {
        // A deep backlog keeps the board capacity-limited, and commanding
        // all 7 workers leaves no healthy spares to route around faults.
        let point = OperatingPoint::new(7, Hertz::from_mhz(20.0), volts(3.3));
        let burst = Disturbance::EventBurst { count: 500 };
        let mut s = sim(0.0);
        s.schedule(seconds(0.0), burst);
        let healthy = s.run(&mut Pinned(point)).unwrap();
        // Kill every worker chip for the whole run: zero throughput.
        let mut s = sim(0.0);
        s.schedule(seconds(0.0), burst);
        for index in 1..8 {
            s.schedule(seconds(0.0), Disturbance::ProcessorFault { index });
        }
        let faulted = s.run(&mut Pinned(point)).unwrap();
        assert!(healthy.jobs_done > 0);
        assert_eq!(faulted.jobs_done, 0, "no healthy workers, no jobs");
        // Recovery part-way through restores some capacity.
        let mut s = sim(0.0);
        s.schedule(seconds(0.0), burst);
        for index in 1..8 {
            s.schedule(seconds(0.0), Disturbance::ProcessorFault { index });
            s.schedule(seconds(57.6), Disturbance::ProcessorRecover { index });
        }
        let recovered = s.run(&mut Pinned(point)).unwrap();
        assert!(
            recovered.jobs_done > faulted.jobs_done && recovered.jobs_done < healthy.jobs_done,
            "{} / {} / {}",
            faulted.jobs_done,
            recovered.jobs_done,
            healthy.jobs_done
        );
    }

    #[test]
    fn battery_fade_spills_charge_as_waste() {
        let mut s = sim(0.2);
        // Halve the window while the battery holds 8 J: the excess above
        // the new C_max spills immediately and later charging tops out low.
        s.schedule(seconds(0.1), Disturbance::BatteryFade { factor: 0.25 });
        let r = s.run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        let limits = Platform::pama().battery;
        let faded_cmax = limits.c_min.value() + 0.25 * limits.window().value();
        assert!(
            r.final_battery <= faded_cmax + 1e-9,
            "{} > {}",
            r.final_battery,
            faded_cmax
        );
        let baseline = sim(0.2).run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        assert!(r.wasted > baseline.wasted);
    }

    #[test]
    fn stuck_sensor_lies_to_the_governor_not_the_report() {
        /// Records what it was told about the battery each slot.
        struct Recorder(Vec<f64>);
        impl Governor for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn decide(
                &mut self,
                o: &SlotObservation,
            ) -> Result<OperatingPoint, dpm_core::error::DpmError> {
                self.0.push(o.battery.value());
                Ok(OperatingPoint::OFF)
            }
        }
        let mut s = sim(0.2);
        s.schedule(
            seconds(0.0),
            Disturbance::SensorStuck {
                duration: seconds(1e9),
            },
        );
        let mut g = Recorder(Vec::new());
        let r = s.run(&mut g).unwrap();
        // Slot 0's observation is taken before the event fires (the slot
        // decision precedes the sub-step loop); the stuck gauge captures
        // its next reading, so slot 1 onward repeats slot 1's value.
        let frozen = g.0[1];
        assert!(
            g.0[2..].iter().all(|b| (b - frozen).abs() < 1e-12),
            "{:?}",
            g.0
        );
        // Physics was untouched: the reported trajectory matches a run
        // with a healthy gauge, even though the governor saw a flat line.
        let clean = sim(0.2).run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        assert!((r.final_battery - clean.final_battery).abs() < 1e-9);
        assert!((r.final_battery - frozen).abs() > 0.1, "gauge really lied");
    }

    #[test]
    fn sensor_noise_is_bounded_and_report_stays_honest() {
        let mut s = sim(0.2);
        s.schedule(
            seconds(0.0),
            Disturbance::SensorNoise {
                amplitude: 0.2,
                duration: seconds(1e9),
                seed: 7,
            },
        );
        let noisy = s.run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        let clean = sim(0.2).run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        // The gauge only affects observations; a pinned governor ignores
        // them, so the physical outcome is identical.
        assert!((noisy.final_battery - clean.final_battery).abs() < 1e-9);
        assert!((noisy.offered - clean.offered).abs() < 1e-9);
    }

    #[test]
    fn trace_undersupply_is_cumulative_and_matches_report() {
        let point = OperatingPoint::new(7, Hertz::from_mhz(80.0), volts(3.3));
        let report = sim(2.0).run(&mut Pinned(point)).unwrap();
        assert!(report.undersupplied > 0.0);
        let mut prev = 0.0;
        for s in &report.slots {
            assert!(
                s.undersupplied + 1e-12 >= prev,
                "undersupply went backwards: {} < {}",
                s.undersupplied,
                prev
            );
            prev = s.undersupplied;
        }
        assert!((prev - report.undersupplied).abs() < 1e-12);
    }

    #[test]
    fn stepped_run_is_byte_identical_to_batch_run() {
        let point = OperatingPoint::new(3, Hertz::from_mhz(40.0), volts(3.3));
        let assemble = || {
            let rec = dpm_telemetry::Recorder::enabled("step-eq");
            let mut s = sim(0.5).with_telemetry(rec.clone());
            s.schedule(
                seconds(10.0),
                Disturbance::SupplyScale {
                    factor: 0.5,
                    duration: seconds(20.0),
                },
            );
            (s, rec)
        };
        let (batch_sim, batch_rec) = assemble();
        let batch_report = batch_sim.run(&mut Pinned(point)).unwrap();

        let (step_sim, step_rec) = assemble();
        let mut g = Pinned(point);
        let mut run = step_sim.begin();
        let mut steps = 0u64;
        while run.step(&mut g).unwrap() {
            steps += 1;
        }
        assert_eq!(steps + 1, run.total_slots());
        assert!(run.is_done());
        // A step past the horizon is a no-op.
        assert!(!run.step(&mut g).unwrap());
        let step_report = run.finish(g.name());

        assert_eq!(batch_rec.to_jsonl(), step_rec.to_jsonl());
        assert_eq!(batch_report.final_battery, step_report.final_battery);
        assert_eq!(batch_report.jobs_done, step_report.jobs_done);
        assert_eq!(batch_report.duration, step_report.duration);
        assert_eq!(batch_report.slots.len(), step_report.slots.len());
    }

    #[test]
    fn active_run_accepts_mid_flight_disturbances_and_rate_changes() {
        let point = OperatingPoint::new(3, Hertz::from_mhz(40.0), volts(3.3));
        let mut g = Pinned(point);
        let mut run = sim(0.0).begin();
        assert_eq!(run.slot(), 0);
        assert!((run.tau_s() - 4.8).abs() < 1e-12);
        for _ in 0..6 {
            run.step(&mut g).unwrap();
        }
        assert_eq!(run.slot(), 6);
        assert_eq!(run.backlog(), 0, "zero-rate generator queued nothing");
        // Live updates: a burst now and a faster arrival schedule.
        run.schedule(
            seconds(run.slot() as f64 * 4.8),
            Disturbance::EventBurst { count: 10 },
        );
        run.set_events(Box::new(ScheduleGenerator::new(rates(2.0))));
        run.step(&mut g).unwrap();
        assert!(run.backlog() > 0, "burst + new rate left a queue");
        assert!(run.last_used_j() > 0.0);
        let (c_min, c_max) = run.battery_limits_j();
        assert!(c_min < c_max);
        let forecast = run.forecast_battery_j(12);
        assert_eq!(forecast.len(), 12);
        assert!(
            forecast.iter().all(|b| (c_min..=c_max).contains(b)),
            "{forecast:?}"
        );
        // Early finish: the books cover the slots that actually ran.
        let completed = run.slot();
        let report = run.finish("pinned");
        assert_eq!(report.slots.len(), completed as usize);
        assert!((report.duration - completed as f64 * 4.8).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_higher_when_sized_to_supply() {
        // A point whose draw roughly matches mean supply (≈1.18 W): 2
        // workers at 80 MHz + controller ≈ 1.64 W, vs a hugely oversized
        // point that browns out, vs off.
        let sized = sim(2.0)
            .run(&mut Pinned(OperatingPoint::new(
                2,
                Hertz::from_mhz(80.0),
                volts(3.3),
            )))
            .unwrap();
        let off = sim(2.0).run(&mut Pinned(OperatingPoint::OFF)).unwrap();
        assert!(sized.utilization() > off.utilization());
        assert!(sized.utilization() > 0.3, "{}", sized.utilization());
    }
}
