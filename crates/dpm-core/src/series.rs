//! Time-series calculus for periodic power schedules.
//!
//! The paper manipulates three kinds of functions of time over one charging
//! period `T`:
//!
//! * the expected charging schedule `c(t)`, the event-rate schedule `u(t)`,
//!   the weight function `w(t)` and the power allocation `P_init(t)` — all
//!   modelled here as **piecewise-constant** [`PowerSeries`] with a uniform
//!   slot width `τ` (the paper updates parameters every `τ = 4.8 s`, giving
//!   12 slots per `T = 57.6 s` period);
//! * the battery-energy trajectory `P_original(t) = ∫ (c − u_new) dv`
//!   (Eq. 10) — the integral of a piecewise-constant function, i.e. a
//!   **piecewise-linear** [`EnergyTrajectory`] whose breakpoints sit on slot
//!   boundaries.
//!
//! Algorithm 1 needs the *stationary points* of the trajectory (times where
//! `dP/dt = 0`, lines 1–2); for a piecewise-linear function those are the
//! slot boundaries where the slope changes sign, which
//! [`EnergyTrajectory::stationary_points`] enumerates exactly.
//!
//! ## Fallibility
//!
//! Constructors that accept external data ([`PowerSeries::new`],
//! [`PowerSeries::resample`], [`EnergyTrajectory::from_points`], …) validate
//! it and return a [`DpmError`]. Combinators that only recombine
//! already-validated series (`scale`, `map`, `zip_with`, `cumulative`,
//! `derivative`) stay infallible: the constructor established the invariants,
//! so alignment inside a pipeline is checked with `debug_assert!` only.

use crate::error::DpmError;
use crate::units::{joules, seconds, watts, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A piecewise-constant function of time on `[0, T)` with uniform slots.
///
/// Values are powers in watts; the same container also represents event
/// rates and weights (dimensionless), in which case the watt interpretation
/// is ignored by callers — see [`crate::alloc`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSeries {
    slot: Seconds,
    values: Vec<f64>,
}

impl PowerSeries {
    /// Build from raw per-slot values.
    ///
    /// # Errors
    /// Returns [`DpmError::InvalidSeries`] when `slot` is non-positive or
    /// `values` is empty, and [`DpmError::NonFinite`] when any value is NaN
    /// or infinite.
    pub fn new(slot: Seconds, values: Vec<f64>) -> Result<Self, DpmError> {
        if !(slot.value() > 0.0) {
            return Err(DpmError::InvalidSeries(format!(
                "slot width must be positive (got {} s)",
                slot.value()
            )));
        }
        if values.is_empty() {
            return Err(DpmError::InvalidSeries(
                "a series needs at least one slot".into(),
            ));
        }
        if let Some(i) = values.iter().position(|v| !v.is_finite()) {
            return Err(DpmError::NonFinite(format!("series value at slot {i}")));
        }
        Ok(Self { slot, values })
    }

    /// Build from values the caller has already validated.
    ///
    /// Internal combinators use this to recombine series without re-running
    /// (or being able to fail) the public validation. Invariants are only
    /// `debug_assert!`ed.
    pub(crate) fn assemble(slot: Seconds, values: Vec<f64>) -> Self {
        debug_assert!(slot.value() > 0.0, "slot width must be positive");
        debug_assert!(!values.is_empty(), "a series needs at least one slot");
        Self { slot, values }
    }

    /// Build a constant series covering `slots` slots.
    ///
    /// # Errors
    /// Same conditions as [`PowerSeries::new`].
    pub fn constant(slot: Seconds, slots: usize, value: f64) -> Result<Self, DpmError> {
        Self::new(slot, vec![value; slots])
    }

    /// Sample a closure at the midpoint of each slot.
    ///
    /// # Errors
    /// Same conditions as [`PowerSeries::new`] (a closure returning NaN is
    /// reported as [`DpmError::NonFinite`]).
    pub fn from_fn(
        slot: Seconds,
        slots: usize,
        mut f: impl FnMut(Seconds) -> f64,
    ) -> Result<Self, DpmError> {
        let values = (0..slots)
            .map(|i| f(seconds((i as f64 + 0.5) * slot.value())))
            .collect();
        Self::new(slot, values)
    }

    /// Slot width `τ`.
    #[inline]
    pub fn slot_width(&self) -> Seconds {
        self.slot
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false by construction; present for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The period `T = len × τ` covered by the series.
    #[inline]
    pub fn period(&self) -> Seconds {
        seconds(self.slot.value() * self.values.len() as f64)
    }

    /// Raw slot values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw slot values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Value of slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Set the value of slot `i`. Finiteness is the caller's responsibility
    /// (checked under `debug_assert!` only, like [`Self::values_mut`]).
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        debug_assert!(v.is_finite());
        self.values[i] = v;
    }

    /// Index of the slot containing time `t` (periodic: `t` is wrapped into
    /// `[0, T)`).
    pub fn slot_index(&self, t: Seconds) -> usize {
        let period = self.period().value();
        let wrapped = t.value().rem_euclid(period);
        // Guard the boundary case wrapped == period after rounding.
        ((wrapped / self.slot.value()) as usize).min(self.values.len() - 1)
    }

    /// Value at time `t` (periodic extension).
    pub fn value_at(&self, t: Seconds) -> Watts {
        watts(self.values[self.slot_index(t)])
    }

    /// Start time of slot `i`.
    #[inline]
    pub fn slot_start(&self, i: usize) -> Seconds {
        seconds(self.slot.value() * i as f64)
    }

    /// Integral over the whole period, `∫₀ᵀ s(t) dt`.
    pub fn integral(&self) -> Joules {
        joules(self.values.iter().sum::<f64>() * self.slot.value())
    }

    /// Integral over `[a, b)` within one period (`a ≤ b`, both clamped to
    /// `[0, T]`). Handles partial slots at either end.
    pub fn integral_range(&self, a: Seconds, b: Seconds) -> Joules {
        let period = self.period().value();
        let (a, b) = (a.value().clamp(0.0, period), b.value().clamp(0.0, period));
        if b <= a {
            return Joules::ZERO;
        }
        let slot = self.slot.value();
        let mut total = 0.0;
        let first = (a / slot) as usize;
        let last = ((b / slot).ceil() as usize).min(self.values.len());
        for i in first..last {
            let lo = (i as f64 * slot).max(a);
            let hi = ((i + 1) as f64 * slot).min(b);
            if hi > lo {
                total += self.values[i] * (hi - lo);
            }
        }
        joules(total)
    }

    /// Integral over `[a, b)` with periodic wrap-around, so `b` may exceed
    /// `T` or precede `a` (meaning "wrap past the period end"). Algorithm 3
    /// redistributes energy over a horizon that may cross the boundary.
    ///
    /// The empty interval (`b == a`, e.g. a zero-length sub-step in the
    /// simulator) integrates to zero; an interval of exactly one period
    /// (`b == a + T`) integrates to the full-period value. The two are
    /// indistinguishable after both ends are wrapped onto `[0, T)`, so the
    /// raw endpoints are compared before wrapping.
    pub fn integral_wrapping(&self, a: Seconds, b: Seconds) -> Joules {
        if a.value() == b.value() {
            return Joules::ZERO;
        }
        let period = self.period();
        let a = seconds(a.value().rem_euclid(period.value()));
        let b = seconds(b.value().rem_euclid(period.value()));
        if b.value() > a.value() {
            self.integral_range(a, b)
        } else {
            self.integral_range(a, period) + self.integral_range(Seconds::ZERO, b)
        }
    }

    /// Mean value over the period.
    pub fn mean(&self) -> Watts {
        watts(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    /// Largest slot value.
    pub fn max_value(&self) -> Watts {
        watts(
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Smallest slot value.
    pub fn min_value(&self) -> Watts {
        watts(self.values.iter().copied().fold(f64::INFINITY, f64::min))
    }

    /// Multiply every slot by a scalar (used by the Eq. 8 normalization and
    /// Algorithm 3's proportional redistribution).
    pub fn scale(&self, k: f64) -> Self {
        Self::assemble(self.slot, self.values.iter().map(|v| v * k).collect())
    }

    /// Apply a function to every slot value.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        Self::assemble(self.slot, self.values.iter().map(|&v| f(v)).collect())
    }

    /// Pointwise product (the WPUF of Eq. 7 is `u(t)·w(t)`).
    pub fn pointwise_mul(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a * b)
    }

    /// Pointwise difference (`c(t) − u_new(t)`, Eq. 9).
    pub fn pointwise_sub(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a - b)
    }

    /// Pointwise sum.
    pub fn pointwise_add(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a + b)
    }

    /// Combine two aligned series slot-by-slot.
    ///
    /// Alignment (same length and slot width) is an entry-point invariant:
    /// every pipeline validates it once at construction (e.g.
    /// [`crate::alloc::InitialAllocator::new`]), so here it is checked under
    /// `debug_assert!` only. In release builds a mismatched pair truncates
    /// to the shorter series.
    pub fn zip_with(&self, other: &Self, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        debug_assert_eq!(
            self.values.len(),
            other.values.len(),
            "series length mismatch"
        );
        debug_assert!(
            self.slot.approx_eq(other.slot, 1e-12),
            "series slot width mismatch"
        );
        Self::assemble(
            self.slot,
            self.values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Check that `other` shares this series' slotting, for use by entry
    /// points that subsequently rely on the infallible combinators.
    ///
    /// # Errors
    /// [`DpmError::SeriesMismatch`] on a length difference,
    /// [`DpmError::InvalidSeries`] on a slot-width difference.
    pub fn check_aligned(&self, other: &Self) -> Result<(), DpmError> {
        if self.values.len() != other.values.len() {
            return Err(DpmError::SeriesMismatch {
                expected: self.values.len(),
                got: other.values.len(),
            });
        }
        if !self.slot.approx_eq(other.slot, 1e-12) {
            return Err(DpmError::InvalidSeries(format!(
                "slot width mismatch: {} s vs {} s",
                self.slot.value(),
                other.slot.value()
            )));
        }
        Ok(())
    }

    /// Running integral: the piecewise-linear trajectory
    /// `E(t) = E₀ + ∫₀ᵗ s(v) dv` evaluated at every slot boundary
    /// (`len + 1` breakpoints). This is Eq. 10 with an initial battery
    /// charge `E₀`.
    pub fn cumulative(&self, initial: Joules) -> EnergyTrajectory {
        let mut points = Vec::with_capacity(self.values.len() + 1);
        let mut acc = initial.value();
        points.push(acc);
        for &v in &self.values {
            acc += v * self.slot.value();
            points.push(acc);
        }
        EnergyTrajectory::assemble(self.slot, points)
    }

    /// Fused Eq. 10 kernel: the running integral of `self − other` written
    /// into a caller-owned breakpoint buffer, i.e.
    /// `self.pointwise_sub(other).cumulative(initial)` without the
    /// intermediate series allocation.
    ///
    /// Bit-identity contract: each breakpoint is produced by exactly the
    /// same two floating-point operations in the same order as the unfused
    /// pipeline (`acc += (c − a) × τ`), so the results agree to the last
    /// ULP. The single pass over the two contiguous value slices is also
    /// what lets the optimizer keep everything in registers — true SIMD
    /// reassociation of the prefix sum would change rounding and is
    /// deliberately *not* done.
    ///
    /// `out` is cleared and refilled with `len + 1` breakpoints; callers
    /// reuse the buffer across convergence iterations and replans.
    pub fn net_cumulative_into(&self, other: &Self, initial: Joules, out: &mut Vec<f64>) {
        debug_assert_eq!(
            self.values.len(),
            other.values.len(),
            "series length mismatch"
        );
        debug_assert!(
            self.slot.approx_eq(other.slot, 1e-12),
            "series slot width mismatch"
        );
        out.clear();
        out.reserve(self.values.len() + 1);
        let slot = self.slot.value();
        let mut acc = initial.value();
        out.push(acc);
        for (&c, &a) in self.values.iter().zip(&other.values) {
            acc += (c - a) * slot;
            out.push(acc);
        }
    }

    /// Concatenate `k` copies of the series (multi-period simulations).
    /// `k = 0` is treated as `k = 1`.
    pub fn repeat(&self, k: usize) -> Self {
        let k = k.max(1);
        let mut values = Vec::with_capacity(self.values.len() * k);
        for _ in 0..k {
            values.extend_from_slice(&self.values);
        }
        Self::assemble(self.slot, values)
    }

    /// Resample to a different slot width by averaging (downsampling) or
    /// replicating (upsampling). The new width must divide, or be divided
    /// by, the current width to an integer factor.
    ///
    /// # Errors
    /// [`DpmError::InvalidSeries`] when the widths are not integer multiples
    /// of each other or the coarser width does not divide the period.
    pub fn resample(&self, new_slot: Seconds) -> Result<Self, DpmError> {
        if !(new_slot.value() > 0.0) {
            return Err(DpmError::InvalidSeries(format!(
                "slot width must be positive (got {} s)",
                new_slot.value()
            )));
        }
        let ratio = self.slot.value() / new_slot.value();
        if (ratio - ratio.round()).abs() < 1e-9 && ratio >= 1.0 {
            // Upsample: replicate each slot `ratio` times.
            let k = ratio.round() as usize;
            let values = self
                .values
                .iter()
                .flat_map(|&v| std::iter::repeat_n(v, k))
                .collect();
            Ok(Self::assemble(new_slot, values))
        } else {
            let inv = new_slot.value() / self.slot.value();
            if (inv - inv.round()).abs() >= 1e-9 || inv < 1.0 {
                return Err(DpmError::InvalidSeries(format!(
                    "resample requires an integer slot ratio ({} s to {} s)",
                    self.slot.value(),
                    new_slot.value()
                )));
            }
            let k = inv.round() as usize;
            if !self.values.len().is_multiple_of(k) {
                return Err(DpmError::InvalidSeries(format!(
                    "resampling {} slots by a factor of {k} would not keep the period intact",
                    self.values.len()
                )));
            }
            let values = self
                .values
                .chunks(k)
                .map(|c| c.iter().sum::<f64>() / k as f64)
                .collect();
            Ok(Self::assemble(new_slot, values))
        }
    }
}

/// Kind of constraint violation at a stationary point of the battery
/// trajectory (Algorithm 1, line 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtremumKind {
    /// Local maximum of the trajectory.
    Maximum,
    /// Local minimum of the trajectory.
    Minimum,
}

/// A stationary point of the energy trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Extremum {
    /// Breakpoint index (slot boundary) where the slope changes sign.
    pub index: usize,
    /// Time of the breakpoint.
    pub time: Seconds,
    /// Trajectory value at the breakpoint.
    pub energy: Joules,
    /// Whether this is a peak or a trough.
    pub kind: ExtremumKind,
}

/// A piecewise-linear energy trajectory with breakpoints on slot boundaries.
///
/// Produced by [`PowerSeries::cumulative`]; consumed by Algorithm 1 (capacity
/// reshaping) and Algorithm 3 (horizon search).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyTrajectory {
    slot: Seconds,
    /// `len + 1` energies at slot boundaries.
    points: Vec<f64>,
}

impl EnergyTrajectory {
    /// Build from explicit breakpoint energies.
    ///
    /// # Errors
    /// Returns [`DpmError::InvalidSeries`] when `slot ≤ 0` or fewer than two
    /// breakpoints are given, and [`DpmError::NonFinite`] on NaN/infinite
    /// energies.
    pub fn from_points(slot: Seconds, points: Vec<f64>) -> Result<Self, DpmError> {
        if !(slot.value() > 0.0) {
            return Err(DpmError::InvalidSeries(format!(
                "slot width must be positive (got {} s)",
                slot.value()
            )));
        }
        if points.len() < 2 {
            return Err(DpmError::InvalidSeries(
                "a trajectory needs at least one segment".into(),
            ));
        }
        if let Some(i) = points.iter().position(|p| !p.is_finite()) {
            return Err(DpmError::NonFinite(format!(
                "trajectory energy at breakpoint {i}"
            )));
        }
        Ok(Self { slot, points })
    }

    /// Build from breakpoints the caller has already validated (internal
    /// reshaping helpers); invariants are only `debug_assert!`ed.
    pub(crate) fn assemble(slot: Seconds, points: Vec<f64>) -> Self {
        debug_assert!(slot.value() > 0.0);
        debug_assert!(points.len() >= 2, "a trajectory needs at least one segment");
        Self { slot, points }
    }

    /// Take the breakpoint buffer back out of a trajectory so callers can
    /// recycle it as scratch (the allocator's convergence loop round-trips
    /// one buffer through `assemble`/`into_points` instead of reallocating
    /// per iteration).
    pub(crate) fn into_points(self) -> Vec<f64> {
        self.points
    }

    /// Slot width.
    #[inline]
    pub fn slot_width(&self) -> Seconds {
        self.slot
    }

    /// Breakpoint energies (`segments + 1` of them).
    #[inline]
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of linear segments.
    #[inline]
    pub fn segments(&self) -> usize {
        self.points.len() - 1
    }

    /// Total time span.
    #[inline]
    pub fn span(&self) -> Seconds {
        seconds(self.slot.value() * self.segments() as f64)
    }

    /// Energy at breakpoint `i`.
    #[inline]
    pub fn point(&self, i: usize) -> Joules {
        joules(self.points[i])
    }

    /// Linear interpolation at time `t ∈ [0, span]`.
    pub fn value_at(&self, t: Seconds) -> Joules {
        let t = t.value().clamp(0.0, self.span().value());
        let x = t / self.slot.value();
        let i = (x as usize).min(self.segments() - 1);
        let frac = x - i as f64;
        joules(self.points[i] + (self.points[i + 1] - self.points[i]) * frac)
    }

    /// Slope of segment `i` — the net power during slot `i`.
    pub fn slope(&self, i: usize) -> Watts {
        watts((self.points[i + 1] - self.points[i]) / self.slot.value())
    }

    /// Recover the net-power series whose cumulative this trajectory is.
    pub fn derivative(&self) -> PowerSeries {
        PowerSeries::assemble(
            self.slot,
            (0..self.segments())
                .map(|i| self.slope(i).value())
                .collect(),
        )
    }

    /// Minimum breakpoint energy. Because the trajectory is piecewise
    /// linear, the global extrema over continuous time are attained at
    /// breakpoints.
    pub fn min_energy(&self) -> Joules {
        joules(self.points.iter().copied().fold(f64::INFINITY, f64::min))
    }

    /// Maximum breakpoint energy.
    pub fn max_energy(&self) -> Joules {
        joules(
            self.points
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// All interior stationary points: breakpoints where the slope changes
    /// sign (zero-slope plateaus report their first boundary). The two
    /// endpoints are treated as stationary as well — the paper's Algorithm 1
    /// wraps the period around (lines 19–20), so endpoint extrema matter.
    pub fn stationary_points(&self) -> Vec<Extremum> {
        let mut out = Vec::new();
        let n = self.points.len();
        let slope_sign = |i: usize| -> i8 {
            let s = self.points[i + 1] - self.points[i];
            if s > 1e-12 {
                1
            } else if s < -1e-12 {
                -1
            } else {
                0
            }
        };
        for i in 0..n {
            let before = if i == 0 { 0 } else { slope_sign(i - 1) };
            let after = if i + 1 == n { 0 } else { slope_sign(i) };
            let kind = match (before, after) {
                (1, -1) | (0, -1) | (1, 0) => Some(ExtremumKind::Maximum),
                (-1, 1) | (0, 1) | (-1, 0) => Some(ExtremumKind::Minimum),
                _ => None,
            };
            if let Some(kind) = kind {
                out.push(Extremum {
                    index: i,
                    time: seconds(i as f64 * self.slot.value()),
                    energy: joules(self.points[i]),
                    kind,
                });
            }
        }
        out
    }

    /// First breakpoint index `≥ from` at which the trajectory has reached
    /// `level`, or `None`. Algorithm 3 searches forward for the time the
    /// allocation pins at `C_max`/`C_min`.
    ///
    /// A breakpoint within `tol` of `level` matches directly. Because the
    /// trajectory is piecewise linear, it can also cross `level` *strictly
    /// between* two breakpoints (the sign of `p − level` flips across a
    /// segment without either endpoint landing within `tol`); such a
    /// crossing reports the segment's end breakpoint — the first breakpoint
    /// by which the level has been reached.
    pub fn first_reaching(&self, from: usize, level: Joules, tol: f64) -> Option<usize> {
        let pts = self.points.get(from..).unwrap_or(&[]);
        let lv = level.value();
        let mut prev = *pts.first()?;
        if (prev - lv).abs() <= tol {
            return Some(from);
        }
        for (off, &p) in pts.iter().enumerate().skip(1) {
            if (p - lv).abs() <= tol || (prev - lv) * (p - lv) < 0.0 {
                return Some(from + off);
            }
            prev = p;
        }
        None
    }

    /// Exact time `≥ from`'s breakpoint at which the trajectory first
    /// reaches `level`, linearly interpolated inside the crossing segment;
    /// `None` when the level is never reached. Companion to
    /// [`Self::first_reaching`] for callers that need the pin *time* rather
    /// than a breakpoint index.
    pub fn first_reaching_time(&self, from: usize, level: Joules, tol: f64) -> Option<Seconds> {
        let i = self.first_reaching(from, level, tol)?;
        let lv = level.value();
        let t_i = i as f64 * self.slot.value();
        if (self.points[i] - lv).abs() <= tol || i == from {
            return Some(seconds(t_i));
        }
        // Reached by an interior crossing of segment [i-1, i]: interpolate.
        let (p0, p1) = (self.points[i - 1], self.points[i]);
        let denom = p1 - p0;
        if denom.abs() <= f64::EPSILON * p0.abs().max(p1.abs()).max(1.0) {
            return Some(seconds(t_i));
        }
        let frac = ((lv - p0) / denom).clamp(0.0, 1.0);
        Some(seconds((i as f64 - 1.0 + frac) * self.slot.value()))
    }

    /// Fused Algorithm 1 back-substitution kernel: the clamped allocation
    /// implied by this (reshaped) trajectory under charging schedule `c`,
    /// written into a caller-owned buffer. Equivalent to
    /// `c.pointwise_sub(&self.derivative()).map(|v| v.clamp(floor, ceil))`
    /// without the two intermediate series.
    ///
    /// Bit-identity contract: per slot the operations are exactly
    /// `(c − (p₁ − p₀) / τ).clamp(floor, ceil)` — the same ops in the same
    /// order as the unfused pipeline, so results agree to the last ULP.
    pub fn residual_allocation_into(
        &self,
        charging: &PowerSeries,
        floor: f64,
        ceil: f64,
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(self.segments(), charging.len(), "series length mismatch");
        debug_assert!(
            self.slot.approx_eq(charging.slot_width(), 1e-12),
            "series slot width mismatch"
        );
        out.clear();
        out.reserve(self.segments());
        let slot = self.slot.value();
        for (i, &c) in charging.values().iter().enumerate() {
            let d = (self.points[i + 1] - self.points[i]) / slot;
            out.push((c - d).clamp(floor, ceil));
        }
    }

    /// True when every breakpoint lies inside `[lo, hi]` (with tolerance).
    pub fn within(&self, lo: Joules, hi: Joules, tol: f64) -> bool {
        self.points
            .iter()
            .all(|&p| p >= lo.value() - tol && p <= hi.value() + tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> PowerSeries {
        PowerSeries::new(seconds(1.0), values.to_vec()).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let s = series(&[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.period(), seconds(3.0));
        assert_eq!(s.value_at(seconds(1.5)), watts(2.0));
        assert_eq!(s.get(2), 3.0);
        assert_eq!(s.mean(), watts(2.0));
        assert_eq!(s.max_value(), watts(3.0));
        assert_eq!(s.min_value(), watts(1.0));
    }

    #[test]
    fn constructor_rejects_malformed_input() {
        assert!(matches!(
            PowerSeries::new(seconds(0.0), vec![1.0]),
            Err(DpmError::InvalidSeries(_))
        ));
        assert!(matches!(
            PowerSeries::new(seconds(1.0), vec![]),
            Err(DpmError::InvalidSeries(_))
        ));
        assert!(matches!(
            PowerSeries::new(seconds(1.0), vec![1.0, f64::NAN]),
            Err(DpmError::NonFinite(_))
        ));
        assert!(matches!(
            EnergyTrajectory::from_points(seconds(1.0), vec![1.0]),
            Err(DpmError::InvalidSeries(_))
        ));
        assert!(matches!(
            EnergyTrajectory::from_points(seconds(1.0), vec![1.0, f64::INFINITY]),
            Err(DpmError::NonFinite(_))
        ));
    }

    #[test]
    fn periodic_lookup_wraps() {
        let s = series(&[1.0, 2.0]);
        assert_eq!(s.value_at(seconds(2.5)), watts(1.0));
        assert_eq!(s.value_at(seconds(-0.5)), watts(2.0));
        assert_eq!(s.value_at(seconds(4.0)), watts(1.0));
    }

    #[test]
    fn integral_full_period() {
        let s = PowerSeries::new(
            seconds(4.8),
            vec![2.36; 6].into_iter().chain(vec![0.0; 6]).collect(),
        )
        .unwrap();
        // Scenario-I-like charging: 2.36 W for half the 57.6 s period.
        assert!(s.integral().approx_eq(joules(2.36 * 6.0 * 4.8), 1e-9));
    }

    #[test]
    fn integral_partial_slots() {
        let s = series(&[1.0, 2.0, 3.0]);
        // [0.5, 2.5): 0.5·1 + 1·2 + 0.5·3 = 4.0
        assert!(s
            .integral_range(seconds(0.5), seconds(2.5))
            .approx_eq(joules(4.0), 1e-12));
        assert_eq!(s.integral_range(seconds(2.0), seconds(1.0)), Joules::ZERO);
    }

    #[test]
    fn integral_wrapping_crosses_boundary() {
        let s = series(&[1.0, 2.0, 3.0]);
        // [2.0 .. 1.0 wrapped): slot2 (3.0) + slot0 (1.0) = 4.0
        assert!(s
            .integral_wrapping(seconds(2.0), seconds(1.0))
            .approx_eq(joules(4.0), 1e-12));
    }

    #[test]
    fn integral_wrapping_empty_interval_is_zero() {
        // Regression: `b == a` used to fall into the wrap branch and return
        // the *full-period* integral (a zero-length sub-step in the
        // simulator then double-counted a whole period of supply).
        let s = series(&[1.0, 2.0, 3.0]);
        for a in [0.0, 0.4, 1.0, 2.999, 3.0, -1.5, 7.2] {
            assert_eq!(
                s.integral_wrapping(seconds(a), seconds(a)),
                Joules::ZERO,
                "a = {a}"
            );
        }
    }

    #[test]
    fn integral_wrapping_full_period_is_total() {
        let s = series(&[1.0, 2.0, 3.0]);
        // Exactly one period still integrates to the full total (0.75 and
        // 3.75 are exactly representable, so the wrap is exact) …
        assert!(s
            .integral_wrapping(seconds(0.75), seconds(3.75))
            .approx_eq(s.integral(), 1e-12));
        // … and matches the two integral_range pieces it is built from.
        let pieces = s.integral_range(seconds(0.75), seconds(3.0))
            + s.integral_range(seconds(0.0), seconds(0.75));
        assert!(s
            .integral_wrapping(seconds(0.75), seconds(3.75))
            .approx_eq(pieces, 1e-12));
    }

    #[test]
    fn pointwise_ops() {
        let a = series(&[1.0, 2.0]);
        let b = series(&[3.0, 4.0]);
        assert_eq!(a.pointwise_mul(&b).values(), &[3.0, 8.0]);
        assert_eq!(b.pointwise_sub(&a).values(), &[2.0, 2.0]);
        assert_eq!(a.pointwise_add(&b).values(), &[4.0, 6.0]);
        assert_eq!(a.scale(2.0).values(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_rejects_mismatched_lengths() {
        // `zip_with` guards alignment with debug_assert!, so the guard is
        // active under `cargo test` (debug profile).
        series(&[1.0]).pointwise_add(&series(&[1.0, 2.0]));
    }

    #[test]
    fn check_aligned_reports_mismatch() {
        let a = series(&[1.0]);
        let b = series(&[1.0, 2.0]);
        assert_eq!(
            a.check_aligned(&b),
            Err(DpmError::SeriesMismatch {
                expected: 1,
                got: 2
            })
        );
        let c = PowerSeries::new(seconds(2.0), vec![1.0]).unwrap();
        assert!(matches!(
            a.check_aligned(&c),
            Err(DpmError::InvalidSeries(_))
        ));
        assert_eq!(a.check_aligned(&series(&[5.0])), Ok(()));
    }

    #[test]
    fn cumulative_matches_manual_integration() {
        let s = series(&[1.0, -2.0, 0.5]);
        let t = s.cumulative(joules(10.0));
        assert_eq!(t.points(), &[10.0, 11.0, 9.0, 9.5]);
        assert_eq!(t.value_at(seconds(0.5)), joules(10.5));
        assert_eq!(t.slope(1), watts(-2.0));
    }

    #[test]
    fn derivative_inverts_cumulative() {
        let s = series(&[0.3, -1.2, 2.0, 0.0]);
        let d = s.cumulative(joules(5.0)).derivative();
        for (a, b) in s.values().iter().zip(d.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn stationary_points_detects_peak_and_trough() {
        // Up, up, down, down, up: peak at index 2, trough at index 4.
        let s = series(&[1.0, 1.0, -1.0, -1.0, 1.0]);
        let t = s.cumulative(Joules::ZERO);
        let ex = t.stationary_points();
        let peak = ex
            .iter()
            .find(|e| e.kind == ExtremumKind::Maximum && e.index == 2);
        let trough = ex
            .iter()
            .find(|e| e.kind == ExtremumKind::Minimum && e.index == 4);
        assert!(peak.is_some(), "missing peak: {ex:?}");
        assert!(trough.is_some(), "missing trough: {ex:?}");
        assert_eq!(peak.unwrap().energy, joules(2.0));
        assert_eq!(trough.unwrap().energy, joules(0.0));
    }

    #[test]
    fn stationary_points_include_endpoints() {
        let s = series(&[1.0, 1.0]); // monotone rise
        let t = s.cumulative(Joules::ZERO);
        let ex = t.stationary_points();
        assert!(ex
            .iter()
            .any(|e| e.index == 0 && e.kind == ExtremumKind::Minimum));
        assert!(ex
            .iter()
            .any(|e| e.index == 2 && e.kind == ExtremumKind::Maximum));
    }

    #[test]
    fn within_bounds_check() {
        let t = EnergyTrajectory::from_points(seconds(1.0), vec![0.0, 1.0, 0.5]).unwrap();
        assert!(t.within(joules(0.0), joules(1.0), 1e-9));
        assert!(!t.within(joules(0.2), joules(1.0), 1e-9));
    }

    #[test]
    fn first_reaching_searches_forward() {
        let t = EnergyTrajectory::from_points(seconds(1.0), vec![0.0, 1.0, 2.0, 1.0]).unwrap();
        assert_eq!(t.first_reaching(0, joules(2.0), 1e-9), Some(2));
        assert_eq!(t.first_reaching(3, joules(2.0), 1e-9), None);
        assert_eq!(t.first_reaching(9, joules(2.0), 1e-9), None);
    }

    #[test]
    fn first_reaching_detects_interior_crossing() {
        // Regression: the level 2.0 is crossed strictly inside the segment
        // [0, 3] without either breakpoint lying within tol, so the old
        // breakpoint-only scan returned None and Algorithm 3's horizon
        // search skipped the true pin time.
        let t = EnergyTrajectory::from_points(seconds(1.0), vec![0.0, 3.0, 3.5]).unwrap();
        assert_eq!(t.first_reaching(0, joules(2.0), 1e-9), Some(1));
        // Downward crossings count too.
        let d = EnergyTrajectory::from_points(seconds(1.0), vec![5.0, 1.0, 0.5]).unwrap();
        assert_eq!(d.first_reaching(0, joules(2.0), 1e-9), Some(1));
        // A segment that merely touches from above without sign change
        // still requires the tol match.
        let g = EnergyTrajectory::from_points(seconds(1.0), vec![3.0, 2.5, 3.0]).unwrap();
        assert_eq!(g.first_reaching(0, joules(2.0), 1e-9), None);
    }

    #[test]
    fn first_reaching_time_interpolates_crossing() {
        let t = EnergyTrajectory::from_points(seconds(2.0), vec![0.0, 4.0, 4.5]).unwrap();
        // Level 1.0 is reached a quarter of the way through segment 0,
        // i.e. at t = 0.5 s of the 2 s slot.
        let at = t.first_reaching_time(0, joules(1.0), 1e-9).unwrap();
        assert!(at.approx_eq(seconds(0.5), 1e-12), "{at:?}");
        // A breakpoint hit reports the breakpoint's own time.
        let bp = t.first_reaching_time(0, joules(4.0), 1e-9).unwrap();
        assert!(bp.approx_eq(seconds(2.0), 1e-12), "{bp:?}");
        assert_eq!(t.first_reaching_time(0, joules(9.0), 1e-9), None);
    }

    #[test]
    fn repeat_concatenates_periods() {
        let s = series(&[1.0, 2.0]);
        let r = s.repeat(3);
        assert_eq!(r.len(), 6);
        assert_eq!(r.values(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        // k = 0 degrades to the identity instead of producing an empty series.
        assert_eq!(s.repeat(0).values(), s.values());
    }

    #[test]
    fn resample_up_and_down() {
        let s = series(&[1.0, 3.0]);
        let up = s.resample(seconds(0.5)).unwrap();
        assert_eq!(up.values(), &[1.0, 1.0, 3.0, 3.0]);
        let down = up.resample(seconds(1.0)).unwrap();
        assert_eq!(down.values(), s.values());
        // Integral is preserved by both directions.
        assert!(up.integral().approx_eq(s.integral(), 1e-12));
    }

    #[test]
    fn resample_rejects_non_integer_ratio() {
        let s = series(&[1.0, 3.0]);
        assert!(matches!(
            s.resample(seconds(0.7)),
            Err(DpmError::InvalidSeries(_))
        ));
        // 2 slots cannot be averaged down by a factor that splits the period.
        let three = series(&[1.0, 2.0, 3.0]);
        assert!(matches!(
            three.resample(seconds(2.0)),
            Err(DpmError::InvalidSeries(_))
        ));
    }

    #[test]
    fn from_fn_samples_midpoints() {
        let s = PowerSeries::from_fn(seconds(2.0), 3, |t| t.value()).unwrap();
        assert_eq!(s.values(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn net_cumulative_into_is_bit_identical_to_unfused_pipeline() {
        let c = series(&[2.36, 0.7, 0.0, 1.9, 0.33]);
        let a = series(&[1.1, 0.9, 0.4, 2.0, 0.0]);
        let reference = c.pointwise_sub(&a).cumulative(joules(14.849));
        let mut out = vec![999.0; 2]; // stale scratch must be cleared
        c.net_cumulative_into(&a, joules(14.849), &mut out);
        assert_eq!(out.len(), reference.points().len());
        for (f, r) in out.iter().zip(reference.points()) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn residual_allocation_into_is_bit_identical_to_unfused_pipeline() {
        let c = series(&[2.36, 0.7, 0.0, 1.9]);
        let t =
            EnergyTrajectory::from_points(seconds(1.0), vec![10.0, 11.3, 9.05, 9.5, 12.0]).unwrap();
        let (floor, ceil) = (0.2, 1.5);
        let reference = c
            .pointwise_sub(&t.derivative())
            .map(|v| v.clamp(floor, ceil));
        let mut out = vec![999.0; 9];
        t.residual_allocation_into(&c, floor, ceil, &mut out);
        assert_eq!(out.len(), reference.len());
        for (f, r) in out.iter().zip(reference.values()) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn slot_index_boundary() {
        let s = series(&[1.0, 2.0, 3.0]);
        assert_eq!(s.slot_index(seconds(0.0)), 0);
        assert_eq!(s.slot_index(seconds(2.999)), 2);
        assert_eq!(s.slot_index(seconds(3.0)), 0); // wraps
    }
}
