//! The experiment library: one function per paper artifact.
//!
//! Everything here is deterministic (schedule-driven arrivals, trace
//! charging) so the repro binary, the integration tests and the criterion
//! benches all see identical numbers.

use crate::runner;
use dpm_baselines::{
    AnalyticGovernor, GreedyGovernor, OracleGovernor, StaticGovernor, TimeoutGovernor,
};
use dpm_core::alloc::{AllocationIteration, InitialAllocation, InitialAllocator};
use dpm_core::error::DpmError;
use dpm_core::governor::Governor;
use dpm_core::params::{ParameterScheduler, ParetoTable};
use dpm_core::platform::Platform;
use dpm_core::runtime::{ControllerRecord, DpmController};
use dpm_core::units::Joules;
use dpm_sim::prelude::*;
use dpm_telemetry::Recorder;
use dpm_workloads::Scenario;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default simulated horizon: the paper's runtime tables cover two periods
/// (t = 0 … 110.4 s).
pub const DEFAULT_PERIODS: usize = 2;

/// Compute the §4.1 initial allocation for a scenario (Tables 2 & 4).
///
/// # Errors
/// Propagates [`DpmError`] when the scenario is infeasible for the
/// platform.
pub fn initial_allocation(
    platform: &Platform,
    scenario: &Scenario,
) -> Result<InitialAllocation, DpmError> {
    InitialAllocator::new(scenario.allocation_problem(platform))?.compute()
}

/// Build the proposed controller for a scenario.
///
/// # Errors
/// Propagates [`DpmError`] from the allocation or the controller.
pub fn proposed_controller(
    platform: &Platform,
    scenario: &Scenario,
) -> Result<DpmController, DpmError> {
    let alloc = initial_allocation(platform, scenario)?;
    DpmController::new(platform.clone(), &alloc, scenario.charging.clone())
}

/// Assemble the standard simulation for a scenario.
///
/// # Errors
/// Propagates [`SimError`] on a degenerate platform or scenario.
pub fn simulation(
    platform: &Platform,
    scenario: &Scenario,
    periods: usize,
) -> Result<Simulation, SimError> {
    Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(scenario.charging.clone())),
        Box::new(ScheduleGenerator::new(scenario.event_rates(platform))),
        scenario.initial_charge,
        SimConfig {
            periods,
            slots_per_period: scenario.charging.len(),
            substeps: 8,
            trace: true,
        },
    )
}

/// Run one governor through a scenario and report.
///
/// # Errors
/// Propagates [`SimError`] from assembly or the run itself.
pub fn run_governor(
    platform: &Platform,
    scenario: &Scenario,
    governor: &mut dyn Governor,
    periods: usize,
) -> Result<SimReport, SimError> {
    simulation(platform, scenario, periods)?.run(governor)
}

/// [`run_governor`] with the simulation's telemetry wired to `telemetry`
/// (per-slot events, disturbance events, end-of-run gauges).
///
/// # Errors
/// Propagates [`SimError`] from assembly or the run itself.
pub fn run_governor_with(
    platform: &Platform,
    scenario: &Scenario,
    governor: &mut dyn Governor,
    periods: usize,
    telemetry: &Recorder,
) -> Result<SimReport, SimError> {
    simulation(platform, scenario, periods)?
        .with_telemetry(telemetry.clone())
        .run(governor)
}

/// One cached platform entry: the shared platform handle and its rated
/// frontier.
type PlatformEntry = (Arc<Platform>, Arc<ParetoTable>);

/// Memoized §4.1 initial allocations and rated Pareto frontiers.
///
/// Every governor that needs `P_init` (proposed, analytic, oracle) used to
/// recompute the full iterative allocation per run; a sweep revisiting the
/// same `(platform, scenario)` pair with different seeds recomputed it per
/// point. This cache computes each distinct pair once and shares the
/// result via [`Arc`]. The same pattern covers the [`ParetoTable`]: rating
/// and pruning the operating-point frontier is pure in the platform, so a
/// matrix of N proposed-controller cells shares one table instead of
/// rebuilding it N times. Keys are the exact serialized inputs, so two
/// scenarios that differ in any slot value never collide; lookups from
/// concurrent worker threads are safe (the maps sit behind [`Mutex`]es).
#[derive(Debug, Default)]
pub struct AllocCache {
    inner: Mutex<HashMap<String, Arc<InitialAllocation>>>,
    pareto: Mutex<HashMap<String, PlatformEntry>>,
}

impl AllocCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The allocation for `(platform, scenario)`, computed at most once.
    ///
    /// # Errors
    /// Propagates [`DpmError`] when the scenario is infeasible for the
    /// platform. Errors are not cached: an infeasible pair stays cheap to
    /// re-ask and never poisons the map.
    pub fn allocation(
        &self,
        platform: &Platform,
        scenario: &Scenario,
    ) -> Result<Arc<InitialAllocation>, DpmError> {
        let key = match serde_json::to_string(&(platform, scenario)) {
            Ok(k) => k,
            // Unserializable inputs cannot happen for these plain-data
            // types; degrade to uncached computation rather than failing.
            Err(_) => return initial_allocation(platform, scenario).map(Arc::new),
        };
        // A poisoned lock only means another worker panicked mid-insert;
        // the map itself is still coherent, so keep serving.
        let hit = {
            let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            map.get(&key).cloned()
        };
        if let Some(found) = hit {
            return Ok(found);
        }
        let computed = Arc::new(initial_allocation(platform, scenario)?);
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Ok(map.entry(key).or_insert(computed).clone())
    }

    /// The shared platform handle and rated Pareto frontier for
    /// `platform`, built at most once per distinct platform.
    ///
    /// Returning the [`Arc<Platform>`] alongside the table lets callers
    /// hand every controller the *same* platform allocation instead of
    /// deep-cloning the frequency ladder and power model per cell.
    ///
    /// # Errors
    /// Propagates [`DpmError`] when the platform is invalid or rates a
    /// non-finite operating point. Errors are not cached.
    pub fn pareto(&self, platform: &Platform) -> Result<PlatformEntry, DpmError> {
        let key = match serde_json::to_string(platform) {
            Ok(k) => k,
            // Unserializable platforms cannot happen for this plain-data
            // type; degrade to uncached computation rather than failing.
            Err(_) => {
                let shared = Arc::new(platform.clone());
                let table = Arc::new(ParetoTable::build(&shared)?);
                return Ok((shared, table));
            }
        };
        let hit = {
            let map = self.pareto.lock().unwrap_or_else(|e| e.into_inner());
            map.get(&key).cloned()
        };
        if let Some(found) = hit {
            return Ok(found);
        }
        let shared = Arc::new(platform.clone());
        let table = Arc::new(ParetoTable::build(&shared)?);
        let mut map = self.pareto.lock().unwrap_or_else(|e| e.into_inner());
        Ok(map.entry(key).or_insert((shared, table)).clone())
    }

    /// Number of distinct allocations currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The governors the experiment matrix knows how to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GovernorSpec {
    /// The paper's §4 controller (initial allocation + Algorithm 3).
    Proposed,
    /// Always-full-power comparator (the paper's "static").
    Static,
    /// Timeout-based reactive baseline.
    Timeout,
    /// Battery-aware myopic baseline.
    Greedy,
    /// Eq. 18 closed form on the initial allocation, no feedback.
    Analytic,
    /// Offline Algorithm 2 plan on the exact schedules.
    Oracle,
}

impl GovernorSpec {
    /// Every spec, in the Table 1 row order.
    pub const ALL: [Self; 6] = [
        Self::Proposed,
        Self::Static,
        Self::Timeout,
        Self::Greedy,
        Self::Analytic,
        Self::Oracle,
    ];

    /// The row label used in tables and CSV.
    pub fn label(self) -> &'static str {
        match self {
            Self::Proposed => "proposed",
            Self::Static => "static",
            Self::Timeout => "timeout",
            Self::Greedy => "greedy",
            Self::Analytic => "analytic",
            Self::Oracle => "oracle",
        }
    }

    /// Construct the governor for a `(platform, scenario)` pair, drawing
    /// any needed initial allocation from `cache`.
    ///
    /// # Errors
    /// Propagates [`DpmError`] from allocation or governor construction.
    pub fn build(
        self,
        platform: &Platform,
        scenario: &Scenario,
        cache: &AllocCache,
    ) -> Result<Box<dyn Governor>, DpmError> {
        self.build_with(platform, scenario, cache, &Recorder::disabled())
    }

    /// [`Self::build`], wiring `telemetry` into governors that support it
    /// (currently the proposed controller's per-decide instrumentation).
    /// The [`AllocCache`] itself stays uninstrumented: which worker takes
    /// a cache miss is scheduling-dependent, and attributing it would
    /// break the trace's `--jobs` independence.
    ///
    /// # Errors
    /// Propagates [`DpmError`] from allocation or governor construction.
    pub fn build_with(
        self,
        platform: &Platform,
        scenario: &Scenario,
        cache: &AllocCache,
        telemetry: &Recorder,
    ) -> Result<Box<dyn Governor>, DpmError> {
        Ok(match self {
            Self::Proposed => {
                let alloc = cache.allocation(platform, scenario)?;
                let (shared, pareto) = cache.pareto(platform)?;
                // Matrix paths never read the controller trace (only
                // `table3_5_with` does, and it builds its own controller),
                // so skip the per-decide record accumulation.
                Box::new(
                    DpmController::with_table(shared, &alloc, scenario.charging.clone(), pareto)?
                        .without_trace()
                        .with_telemetry(telemetry.clone()),
                )
            }
            Self::Static => Box::new(StaticGovernor::full_power(platform)?),
            Self::Timeout => {
                let f = platform.f_max();
                let v = platform.voltage_for(f).ok_or_else(|| {
                    DpmError::NoOperatingPoint(format!("no supply voltage for f_max = {f}"))
                })?;
                let point = dpm_core::params::OperatingPoint::new(platform.workers(), f, v);
                Box::new(TimeoutGovernor::new(point, 2)?)
            }
            Self::Greedy => Box::new(GreedyGovernor::new(platform.clone(), 4.0)?),
            Self::Analytic => {
                let alloc = cache.allocation(platform, scenario)?;
                Box::new(AnalyticGovernor::new(
                    platform.clone(),
                    alloc.allocation.clone(),
                )?)
            }
            Self::Oracle => {
                let alloc = cache.allocation(platform, scenario)?;
                let plan = ParameterScheduler::new(platform.clone())?
                    .with_telemetry(telemetry.clone())
                    .plan(
                        &alloc.allocation,
                        &scenario.charging,
                        scenario.initial_charge,
                    )?;
                Box::new(OracleGovernor::from_schedule(&plan)?)
            }
        })
    }
}

/// One cell of an experiment matrix: run `governor` on `scenario` for
/// `periods` periods. Platform and scenario are [`Arc`]-shared so a matrix
/// of N cells over the same inputs clones pointers, not schedules.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The board model.
    pub platform: Arc<Platform>,
    /// The workload.
    pub scenario: Arc<Scenario>,
    /// Which governor to run.
    pub governor: GovernorSpec,
    /// Simulated horizon in charging periods.
    pub periods: usize,
}

/// Run every cell of an experiment matrix, fanning independent cells
/// across up to `jobs` worker threads.
///
/// Results come back in cell order regardless of the worker count
/// (deterministic ordering — see [`runner::run_indexed`]); a cell that
/// fails, or whose worker panics, reports its [`SimError`] in its own
/// result slot without aborting sibling cells. Initial allocations are
/// computed once per distinct `(platform, scenario)` pair via
/// [`AllocCache`] and shared across cells.
pub fn run_matrix(
    cells: &[MatrixCell],
    jobs: usize,
) -> (Vec<Result<SimReport, SimError>>, runner::RunStats) {
    run_matrix_with(cells, jobs, &Recorder::disabled(), "matrix")
}

/// [`run_matrix`] with telemetry: each cell records into its own sibling
/// recorder (governor decide counters, per-slot simulator events), and the
/// siblings are absorbed into `telemetry` **in cell order** on the calling
/// thread under `{scope}/{governor}/{cell_index}` — so the merged trace is
/// byte-identical for any `jobs` value. Wall-clock job timings land in the
/// `{scope}.job`/`{scope}.run` spans (profile only).
pub fn run_matrix_with(
    cells: &[MatrixCell],
    jobs: usize,
    telemetry: &Recorder,
    scope: &str,
) -> (Vec<Result<SimReport, SimError>>, runner::RunStats) {
    let cache = AllocCache::new();
    let siblings: Vec<Recorder> = cells.iter().map(|_| telemetry.sibling()).collect();
    let (results, stats) =
        runner::run_indexed(cells, jobs, |i, cell| -> Result<SimReport, SimError> {
            let rec = &siblings[i];
            let mut governor =
                cell.governor
                    .build_with(&cell.platform, &cell.scenario, &cache, rec)?;
            run_governor_with(
                &cell.platform,
                &cell.scenario,
                governor.as_mut(),
                cell.periods,
                rec,
            )
        });
    for (i, (cell, sibling)) in cells.iter().zip(&siblings).enumerate() {
        telemetry.absorb(&format!("{scope}/{}/{i}", cell.governor.label()), sibling);
    }
    stats.record_into(telemetry, scope);
    let results = results
        .into_iter()
        .map(|slot| match slot {
            Ok(cell_result) => cell_result,
            Err(panic) => Err(SimError::WorkerPanic(panic.to_string())),
        })
        .collect();
    (results, stats)
}

/// One Table 1 row: a governor's waste/shortfall on both scenarios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Governor name.
    pub governor: String,
    /// Wasted energy per scenario (J).
    pub wasted: Vec<f64>,
    /// Undersupplied energy per scenario (J).
    pub undersupplied: Vec<f64>,
    /// Jobs completed per scenario (context beyond the paper's table).
    pub jobs: Vec<u64>,
    /// Energy utilization per scenario.
    pub utilization: Vec<f64>,
}

/// Table 1: proposed vs. static (plus the extra baselines) on both
/// scenarios, computed serially.
///
/// # Errors
/// Propagates the first [`SimError`] from any governor/scenario pair.
pub fn table1(
    platform: &Platform,
    scenarios: &[Scenario],
    periods: usize,
) -> Result<Vec<Table1Row>, SimError> {
    table1_jobs(platform, scenarios, periods, 1)
}

/// Table 1 with the governor×scenario matrix fanned across up to `jobs`
/// worker threads. Results are identical to [`table1`] for any `jobs`.
///
/// # Errors
/// Propagates the first (in row order) [`SimError`] from any cell.
pub fn table1_jobs(
    platform: &Platform,
    scenarios: &[Scenario],
    periods: usize,
    jobs: usize,
) -> Result<Vec<Table1Row>, SimError> {
    table1_jobs_with(platform, scenarios, periods, jobs, &Recorder::disabled())
}

/// [`table1_jobs`] with the matrix recorded into `telemetry` under the
/// `table1` scope (see [`run_matrix_with`] for the determinism contract).
///
/// # Errors
/// Propagates the first (in row order) [`SimError`] from any cell.
pub fn table1_jobs_with(
    platform: &Platform,
    scenarios: &[Scenario],
    periods: usize,
    jobs: usize,
    telemetry: &Recorder,
) -> Result<Vec<Table1Row>, SimError> {
    let platform = Arc::new(platform.clone());
    let scenarios: Vec<Arc<Scenario>> = scenarios.iter().cloned().map(Arc::new).collect();
    let mut cells: Vec<MatrixCell> = Vec::with_capacity(GovernorSpec::ALL.len() * scenarios.len());
    for governor in GovernorSpec::ALL {
        for s in &scenarios {
            cells.push(MatrixCell {
                platform: Arc::clone(&platform),
                scenario: Arc::clone(s),
                governor,
                periods,
            });
        }
    }
    let (results, _stats) = run_matrix_with(&cells, jobs, telemetry, "table1");

    let mut rows = Vec::with_capacity(GovernorSpec::ALL.len());
    let mut it = results.into_iter();
    for spec in GovernorSpec::ALL {
        let reports: Vec<SimReport> = it
            .by_ref()
            .take(scenarios.len())
            .collect::<Result<_, _>>()?;
        rows.push(Table1Row {
            governor: spec.label().to_string(),
            wasted: reports.iter().map(|r| r.wasted).collect(),
            undersupplied: reports.iter().map(|r| r.undersupplied).collect(),
            jobs: reports.iter().map(|r| r.jobs_done).collect(),
            utilization: reports.iter().map(|r| r.utilization()).collect(),
        });
    }
    Ok(rows)
}

/// Tables 2/4: the initial-allocation iterations.
///
/// # Errors
/// Propagates [`DpmError`] when the allocation cannot be computed.
pub fn table2_4(
    platform: &Platform,
    scenario: &Scenario,
) -> Result<Vec<AllocationIteration>, DpmError> {
    Ok(initial_allocation(platform, scenario)?.iterations)
}

/// [`table2_4`] with the Algorithm 1 run recorded into `telemetry`
/// (`alloc.compute.calls`/`alloc.reshape.iterations` counters, an
/// `alloc.iterations` histogram, and a convergence event).
///
/// # Errors
/// Propagates [`DpmError`] when the allocation cannot be computed.
pub fn table2_4_with(
    platform: &Platform,
    scenario: &Scenario,
    telemetry: &Recorder,
) -> Result<Vec<AllocationIteration>, DpmError> {
    Ok(
        InitialAllocator::new(scenario.allocation_problem(platform))?
            .compute_with(telemetry)?
            .iterations,
    )
}

/// Tables 3/5: the runtime controller trace over `periods` periods, with
/// the simulator supplying the "actual" energies.
///
/// # Errors
/// Propagates [`SimError`] from the controller or the run.
pub fn table3_5(
    platform: &Platform,
    scenario: &Scenario,
    periods: usize,
) -> Result<(Vec<ControllerRecord>, SimReport), SimError> {
    table3_5_with(platform, scenario, periods, &Recorder::disabled())
}

/// [`table3_5`] with the allocation, controller, and simulation all
/// recording into `telemetry` (this path is serial, so one shared recorder
/// is deterministic as-is — no sibling/absorb dance needed).
///
/// # Errors
/// Propagates [`SimError`] from the controller or the run.
pub fn table3_5_with(
    platform: &Platform,
    scenario: &Scenario,
    periods: usize,
    telemetry: &Recorder,
) -> Result<(Vec<ControllerRecord>, SimReport), SimError> {
    let alloc = InitialAllocator::new(scenario.allocation_problem(platform))?
        .compute_with(telemetry)
        .map_err(SimError::from)?;
    let mut governor = DpmController::new(platform.clone(), &alloc, scenario.charging.clone())?
        .with_telemetry(telemetry.clone());
    let report = run_governor_with(platform, scenario, &mut governor, periods, telemetry)?;
    Ok((governor.take_trace(), report))
}

/// Figures 3/4: the charging and use schedules as plottable series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Scenario name.
    pub scenario: String,
    /// Slot start times (s).
    pub time: Vec<f64>,
    /// Charging schedule (W).
    pub charging: Vec<f64>,
    /// Use schedule (W).
    pub use_power: Vec<f64>,
}

/// Extract a figure's data series.
pub fn figure(scenario: &Scenario) -> FigureSeries {
    let n = scenario.charging.len();
    let tau = scenario.charging.slot_width().value();
    FigureSeries {
        scenario: scenario.name.clone(),
        time: (0..n).map(|i| i as f64 * tau).collect(),
        charging: scenario.charging.values().to_vec(),
        use_power: scenario.use_power.values().to_vec(),
    }
}

/// Total initially-stored + offered energy for utilization denominators.
pub fn energy_available(scenario: &Scenario, periods: usize) -> Joules {
    scenario.charging.integral() * periods as f64 + scenario.initial_charge
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_workloads::scenarios;

    #[test]
    fn table1_proposed_beats_static_on_waste() {
        let platform = Platform::pama();
        let rows = table1(&platform, &scenarios::all(), DEFAULT_PERIODS).unwrap();
        let proposed = rows.iter().find(|r| r.governor == "proposed").unwrap();
        let statik = rows.iter().find(|r| r.governor == "static").unwrap();
        for i in 0..2 {
            assert!(
                proposed.wasted[i] < statik.wasted[i],
                "scenario {i}: proposed {} vs static {}",
                proposed.wasted[i],
                statik.wasted[i]
            );
        }
    }

    #[test]
    fn table1_proposed_reduces_undersupply() {
        let platform = Platform::pama();
        let rows = table1(&platform, &scenarios::all(), DEFAULT_PERIODS).unwrap();
        let proposed = rows.iter().find(|r| r.governor == "proposed").unwrap();
        let statik = rows.iter().find(|r| r.governor == "static").unwrap();
        for i in 0..2 {
            assert!(
                proposed.undersupplied[i] <= statik.undersupplied[i] + 1e-9,
                "scenario {i}: proposed {} vs static {}",
                proposed.undersupplied[i],
                statik.undersupplied[i]
            );
        }
    }

    #[test]
    fn table2_converges_like_the_paper() {
        let platform = Platform::pama();
        for s in scenarios::all() {
            let iters = table2_4(&platform, &s).unwrap();
            assert!(!iters.is_empty());
            // The paper's Tables 2/4 converge in 5 rounds; our clamped
            // reshape needs a few more on scenario II (9) but stays within
            // the same order.
            assert!(iters.len() <= 12, "{}: {} iterations", s.name, iters.len());
            assert!(iters.last().unwrap().feasible, "{} infeasible", s.name);
        }
    }

    #[test]
    fn table3_trace_covers_two_periods() {
        let platform = Platform::pama();
        let (trace, report) = table3_5(&platform, &scenarios::scenario_one(), 2).unwrap();
        assert_eq!(trace.len(), 24);
        assert!(report.jobs_done > 0);
        // Every record's plan snapshot spans one period.
        assert!(trace.iter().all(|r| r.plan.len() == 12));
    }

    #[test]
    fn figure_series_match_scenarios() {
        let f = figure(&scenarios::scenario_two());
        assert_eq!(f.time.len(), 12);
        assert_eq!(f.charging[1], 3.54);
        assert_eq!(f.use_power[7], 0.0);
    }
}
