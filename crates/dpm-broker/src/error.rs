//! Typed errors for topology construction and broker operations.
//!
//! The crate is gated by `ci/forbid_panics.sh`: every misuse surfaces as a
//! [`BrokerError`] instead of a panic, so a malformed topology config or a
//! stale lease id degrades a run into an error row, never an abort.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong building a topology or driving a broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// An element index does not exist in the topology.
    UnknownElement {
        /// The out-of-range element index.
        element: usize,
    },
    /// A requested level is zero or above the element's `max_level`.
    LevelOutOfRange {
        /// The element the level was requested for.
        element: usize,
        /// The rejected level.
        level: u8,
        /// The element's maximum level.
        max: u8,
    },
    /// An element spec is internally inconsistent (e.g. `floor > max_level`).
    InvalidElement {
        /// The offending element index.
        element: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A dependency edge is malformed (self-edge, bad requirement, or a
    /// floor the provider's floor cannot support).
    InvalidEdge {
        /// The dependent element.
        child: usize,
        /// The provider element.
        provider: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The dependency graph contains a cycle through this element.
    DependencyCycle {
        /// An element on the cycle (lowest index of the unplaceable set).
        element: usize,
    },
    /// A lease id was never granted or has already been dropped.
    UnknownLease {
        /// The stale lease id.
        lease: usize,
    },
    /// The broker has executed its terminal shutdown; no new demand is
    /// accepted (terminal shutdown is final).
    Terminal,
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownElement { element } => {
                write!(f, "unknown power element {element}")
            }
            Self::LevelOutOfRange {
                element,
                level,
                max,
            } => write!(
                f,
                "level {level} out of range for element {element} (valid: 1..={max})"
            ),
            Self::InvalidElement { element, reason } => {
                write!(f, "invalid element {element}: {reason}")
            }
            Self::InvalidEdge {
                child,
                provider,
                reason,
            } => write!(f, "invalid edge {child} -> {provider}: {reason}"),
            Self::DependencyCycle { element } => {
                write!(f, "dependency cycle through element {element}")
            }
            Self::UnknownLease { lease } => write!(f, "unknown or dropped lease {lease}"),
            Self::Terminal => write!(f, "broker is terminally shut down"),
        }
    }
}

impl Error for BrokerError {}
